"""Shared scenario-building helpers for trap-level tests."""

from __future__ import annotations

from repro.core import make_scheme
from repro.core.invariants import check_invariants
from repro.windows.cpu import WindowCPU
from repro.windows.thread_windows import ThreadWindows


def make_machine(n_windows: int, scheme_name: str, **kwargs):
    """A CPU with a bound scheme, ready for manual trap-level driving."""
    cpu = WindowCPU(n_windows)
    scheme = make_scheme(scheme_name, cpu, **kwargs)
    return cpu, scheme


def new_thread(scheme, tid: int) -> ThreadWindows:
    tw = ThreadWindows(tid)
    scheme.register(tw)
    return tw


def dispatch(cpu, scheme, out_tw, in_tw):
    scheme.context_switch(out_tw, in_tw)
    return in_tw


def call(cpu, tw, tag=None):
    """Simulate one procedure call: write a tag through the out/in
    overlap and a signature into a local register."""
    if tag is None:
        tag = ("arg", tw.tid, tw.depth + 1)
    cpu.write_out(0, tag)
    cpu.save(tw)
    assert cpu.read_in(0) == tag, "argument lost across save"
    cpu.write_local(0, ("sig", tw.tid, tw.depth))
    return tag


def ret(cpu, tw, value=None):
    """Simulate one procedure return: pass a value back through the
    overlap and verify the frame signature first."""
    sig = cpu.read_local(0)
    assert sig == ("sig", tw.tid, tw.depth), (
        "frame signature corrupted: %r at depth %d" % (sig, tw.depth))
    if value is None:
        value = ("ret", tw.tid, tw.depth)
    cpu.write_in(0, value)
    cpu.restore(tw)
    got = cpu.read_out(0)
    assert got == value, "return value lost across restore"
    return got


def call_to_depth(cpu, tw, depth: int):
    """Issue calls until the thread is at the given logical depth."""
    while tw.depth < depth:
        call(cpu, tw)


def ret_to_depth(cpu, tw, depth: int):
    while tw.depth > depth:
        ret(cpu, tw)


def verify(cpu, scheme):
    check_invariants(cpu, scheme, scheme.threads.values())
