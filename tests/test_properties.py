"""Property-based tests (hypothesis): random trap-level operation
sequences and random thread programs must preserve every invariant, on
every scheme, at every window count."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.core.invariants import check_invariants
from tests.helpers import (
    call,
    call_to_depth,
    make_machine,
    new_thread,
    ret,
    ret_to_depth,
)

SCHEMES = ("NS", "SNP", "SP")

# an op is (thread_index 0..2, action 0=call 1=ret 2=switch)
ops_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    min_size=1, max_size=120)


@settings(max_examples=60, deadline=None)
@given(
    ops=ops_strategy,
    n_windows=st.integers(4, 9),
    scheme_idx=st.integers(0, 2),
)
def test_random_trap_sequences_preserve_invariants(ops, n_windows,
                                                   scheme_idx):
    """Drive calls, returns and context switches in random order; the
    helpers verify arguments, return values and frame signatures, and
    the invariant checker runs after every operation."""
    scheme_name = SCHEMES[scheme_idx]
    cpu, scheme = make_machine(n_windows, scheme_name)
    threads = [new_thread(scheme, i) for i in range(3)]
    current = threads[0]
    scheme.context_switch(None, current)
    for tid, action in ops:
        target = threads[tid]
        if action == 2 or target is not current:
            if target is current:
                continue
            scheme.context_switch(current, target)
            current = target
            if action == 2:
                check_invariants(cpu, scheme, threads)
                continue
        if action == 0:
            call(cpu, current)
        elif action == 1 and current.depth > 1:
            ret(cpu, current)
        check_invariants(cpu, scheme, threads)
    # unwind everything; every signature must still verify
    for thread in threads:
        if thread is not current and thread.started:
            scheme.context_switch(current, thread)
            current = thread
        while current.depth > 1:
            ret(cpu, current)
        check_invariants(cpu, scheme, threads)


@settings(max_examples=30, deadline=None)
@given(
    depths=st.lists(st.integers(1, 12), min_size=1, max_size=6),
    payload=st.integers(0, 2 ** 20),
    n_windows=st.integers(4, 8),
    scheme_idx=st.integers(0, 2),
)
def test_random_call_trees_compute_correctly(depths, payload, n_windows,
                                             scheme_idx):
    """A chain of nested calls of random depth must thread the payload
    down and back up intact, under window pressure."""

    def nested(depth, value):
        yield Tick(1)
        if depth == 0:
            return value + 1
        result = yield Call(nested, depth - 1, value + 1)
        return result

    def root():
        total = 0
        for depth in depths:
            total += yield Call(nested, depth, payload)
        return total

    kernel = Kernel(n_windows=n_windows, scheme=SCHEMES[scheme_idx])
    kernel.spawn(root, name="root")
    result = kernel.run(max_steps=200_000)
    expected = sum(payload + depth + 1 for depth in depths)
    assert result.result_of("root") == expected


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=9),
                    min_size=1, max_size=24),
    capacity=st.integers(1, 8),
    n_windows=st.integers(4, 8),
)
def test_stream_transfer_is_lossless(chunks, capacity, n_windows):
    """Arbitrary chunk sequences through a tiny bounded stream arrive
    intact and in order, for every scheme, with identical save counts
    across schemes."""
    expected = b"".join(chunks)
    saves_by_scheme = {}
    for scheme in SCHEMES:
        def producer(s):
            for chunk in chunks:
                yield Write(s, chunk)
            yield CloseStream(s)
            return None

        def consumer(s):
            got = bytearray()
            while True:
                data = yield Read(s, 5)
                if not data:
                    return bytes(got)
                got.extend(data)
                yield Call(_touch, len(data))

        def _touch(n):
            yield Tick(n)
            return n

        kernel = Kernel(n_windows=n_windows, scheme=scheme)
        stream = kernel.stream(capacity, "s")
        kernel.spawn(producer, stream, name="p")
        kernel.spawn(consumer, stream, name="c")
        result = kernel.run(max_steps=500_000)
        assert result.result_of("c") == expected
        saves_by_scheme[scheme] = result.counters.saves
    assert len(set(saves_by_scheme.values())) == 1


def _assert_no_spill_on_underflow(counters):
    """§4's point: the in-place restore services every underflow
    without moving any *other* window out — an underflow trap must
    never spill."""
    underflows = [t for t in counters.trap_trace if t.kind == "underflow"]
    spilled = [t for t in underflows if t.spilled]
    assert not spilled, (
        "%d underflow trap(s) spilled a window: %r"
        % (len(spilled), spilled[:3]))
    for trap in underflows:
        assert trap.restored, "underflow serviced without a restore"


@settings(max_examples=50, deadline=None)
@given(
    ops=ops_strategy,
    n_windows=st.integers(4, 7),
    scheme_idx=st.integers(0, 1),
)
def test_underflow_inplace_restore_never_spills(ops, n_windows,
                                                scheme_idx):
    """Random call/switch interleavings under the sharing schemes (SNP
    and SP): every underflow is serviced by the in-place restore, so
    the spill-on-underflow count stays at zero and all invariants hold.
    The small window files make the threads evict each other, which is
    exactly what produces underflows on the way back down."""
    scheme_name = ("SNP", "SP")[scheme_idx]
    cpu, scheme = make_machine(n_windows, scheme_name)
    cpu.counters.keep_trace = True
    threads = [new_thread(scheme, i) for i in range(3)]
    current = threads[0]
    scheme.context_switch(None, current)
    for tid, action in ops:
        target = threads[tid]
        if target is not current:
            scheme.context_switch(current, target)
            current = target
        if action == 0:
            call(cpu, current)
        elif action == 1 and current.depth > 1:
            ret(cpu, current)
        _assert_no_spill_on_underflow(cpu.counters)
        check_invariants(cpu, scheme, threads)
    for thread in threads:
        if thread is not current and thread.started:
            scheme.context_switch(current, thread)
            current = thread
        while current.depth > 1:
            ret(cpu, current)
            _assert_no_spill_on_underflow(cpu.counters)
        check_invariants(cpu, scheme, threads)


@pytest.mark.parametrize("scheme_name", ("SNP", "SP"))
def test_forced_underflows_restore_in_place(scheme_name):
    """Deterministic companion to the property above: force the
    underflow path (deep call stacks, interleaved eviction, full
    unwind) and require that underflows actually happened — and that
    none of them spilled."""
    n_windows = 5
    cpu, scheme = make_machine(n_windows, scheme_name)
    cpu.counters.keep_trace = True
    threads = [new_thread(scheme, i) for i in range(2)]
    current = threads[0]
    scheme.context_switch(None, current)
    for __ in range(2):
        for thread in threads:
            if thread is not current:
                scheme.context_switch(current, thread)
                current = thread
            call_to_depth(cpu, current, current.depth + n_windows + 2)
            check_invariants(cpu, scheme, threads)
    for thread in threads:
        if thread is not current:
            scheme.context_switch(current, thread)
            current = thread
        ret_to_depth(cpu, current, 1)
        check_invariants(cpu, scheme, threads)
    assert cpu.counters.underflow_traps > 0, (
        "scenario failed to underflow — deepen the call stacks")
    _assert_no_spill_on_underflow(cpu.counters)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), n_windows=st.integers(3, 10))
def test_window_overlap_identity(data, n_windows):
    """outs_of(w) is physically ins_of(above(w)), for every w."""
    from repro.windows.window_file import WindowFile

    wf = WindowFile(n_windows)
    writes = data.draw(st.lists(
        st.tuples(st.integers(0, n_windows - 1), st.integers(0, 7),
                  st.integers(0, 255)),
        max_size=32))
    for w, i, v in writes:
        wf.outs_of(w)[i] = v
        assert wf.ins_of(wf.above(w))[i] == v
    for w in range(n_windows):
        assert wf.outs_of(w) is wf.ins_of(wf.above(w))
