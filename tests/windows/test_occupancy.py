"""Unit tests for the window-ownership map."""

import pytest

from repro.windows.errors import WindowGeometryError
from repro.windows.occupancy import FRAME, FREE, RESERVED, WindowMap


class TestWindowMap:
    def test_starts_all_free(self):
        wmap = WindowMap(6)
        assert wmap.free_count() == 6
        assert all(wmap.is_free(w) for w in range(6))

    def test_set_frame(self):
        wmap = WindowMap(6)
        wmap.set_frame(2, tid=5)
        assert wmap.is_frame(2)
        assert wmap.frame_tid(2) == 5
        assert wmap.kind(2) == FRAME

    def test_set_reserved_global_and_private(self):
        wmap = WindowMap(6)
        wmap.set_reserved(0)
        wmap.set_reserved(1, tid=3)
        assert wmap.is_reserved(0) and wmap.tid(0) is None
        assert wmap.is_reserved(1) and wmap.tid(1) == 3

    def test_set_free_clears_tid(self):
        wmap = WindowMap(6)
        wmap.set_frame(2, tid=5)
        wmap.set_free(2)
        assert wmap.is_free(2)
        assert wmap.tid(2) is None
        assert wmap.kind(2) == FREE

    def test_frame_tid_on_non_frame_raises(self):
        wmap = WindowMap(6)
        wmap.set_reserved(2)
        with pytest.raises(WindowGeometryError):
            wmap.frame_tid(2)

    def test_frames_of(self):
        wmap = WindowMap(6)
        wmap.set_frame(1, tid=7)
        wmap.set_frame(4, tid=7)
        wmap.set_frame(2, tid=8)
        assert wmap.frames_of(7) == [1, 4]

    def test_reserved_windows(self):
        wmap = WindowMap(6)
        wmap.set_reserved(3)
        wmap.set_reserved(5, tid=1)
        assert wmap.reserved_windows() == [3, 5]
        assert RESERVED == wmap.kind(3)

    def test_free_run_above(self):
        wmap = WindowMap(8)
        wmap.set_frame(4, tid=0)
        wmap.set_frame(1, tid=1)
        # above 4: windows 3, 2 free, then 1 occupied
        assert wmap.free_run_above(4) == 2

    def test_free_run_above_full_circle(self):
        wmap = WindowMap(4)
        assert wmap.free_run_above(0) == 3  # stops before wrapping onto 0

    def test_find_free(self):
        wmap = WindowMap(3)
        wmap.set_frame(0, tid=0)
        wmap.set_reserved(1)
        assert wmap.find_free() == 2
        wmap.set_frame(2, tid=0)
        assert wmap.find_free() is None

    def test_repr_readable(self):
        wmap = WindowMap(4)
        wmap.set_frame(0, tid=2)
        wmap.set_reserved(1)
        wmap.set_reserved(2, tid=3)
        text = repr(wmap)
        assert "T2" in text and "R" in text and "P3" in text
