"""ThreadWindows bookkeeping."""

import pytest

from repro.windows.errors import WindowGeometryError
from repro.windows.thread_windows import ThreadWindows


class TestResidency:
    def test_fresh_thread_has_nothing(self):
        tw = ThreadWindows(1)
        assert not tw.has_windows
        assert tw.resident_windows(8) == []
        assert tw.depth == 0

    def test_resident_windows_cyclic(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 6, 1, 4, 4
        assert tw.resident_windows(8) == [6, 7, 0, 1]

    def test_shrink_bottom(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 2, 4, 3, 3
        assert tw.shrink_bottom(8) == 4
        assert tw.bottom == 3
        assert tw.resident == 2

    def test_shrink_to_empty_clears_pointers(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 2, 2, 1, 1
        tw.shrink_bottom(8)
        assert tw.cwp is None and tw.bottom is None

    def test_shrink_without_windows_rejected(self):
        with pytest.raises(WindowGeometryError):
            ThreadWindows(1).shrink_bottom(8)

    def test_drop_windows(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.prw = 2, 3, 2, 1
        tw.drop_windows()
        assert tw.cwp is None and tw.prw is None and tw.resident == 0


class TestConsistency:
    def test_valid_state_passes(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 5, 7, 3, 3
        tw.check_consistency(8)

    def test_span_mismatch_detected(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 5, 7, 2, 2
        with pytest.raises(WindowGeometryError):
            tw.check_consistency(8)

    def test_phantom_pointers_detected(self):
        tw = ThreadWindows(1)
        tw.cwp = 3
        with pytest.raises(WindowGeometryError):
            tw.check_consistency(8)

    def test_depth_mismatch_detected(self):
        tw = ThreadWindows(1)
        tw.cwp, tw.bottom, tw.resident, tw.depth = 5, 5, 1, 7
        with pytest.raises(WindowGeometryError):
            tw.check_consistency(8)

    def test_repr(self):
        assert "tid=4" in repr(ThreadWindows(4))
