"""Unit tests for the physical window file: geometry, overlap, WIM."""

import pytest

from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError
from repro.windows.window_file import MIN_WINDOWS, WindowFile


class TestGeometry:
    def test_above_decrements_cyclically(self):
        wf = WindowFile(8)
        assert wf.above(3) == 2
        assert wf.above(0) == 7

    def test_below_increments_cyclically(self):
        wf = WindowFile(8)
        assert wf.below(3) == 4
        assert wf.below(7) == 0

    def test_above_below_inverse(self):
        wf = WindowFile(5)
        for w in range(5):
            assert wf.below(wf.above(w)) == w
            assert wf.above(wf.below(w)) == w

    def test_distance_above(self):
        wf = WindowFile(8)
        assert wf.distance_above(3, 1) == 2
        assert wf.distance_above(1, 3) == 6
        assert wf.distance_above(4, 4) == 0

    def test_windows_from_goes_downward(self):
        wf = WindowFile(6)
        assert wf.windows_from(4, 3) == [4, 5, 0]

    def test_minimum_size_enforced(self):
        with pytest.raises(WindowGeometryError):
            WindowFile(MIN_WINDOWS - 1)

    def test_index_bounds_checked(self):
        wf = WindowFile(4)
        with pytest.raises(WindowGeometryError):
            wf.ins_of(4)
        with pytest.raises(WindowGeometryError):
            wf.locals_of(-1)


class TestOverlap:
    """The in/out register overlap is the heart of SPARC windows."""

    def test_outs_are_ins_of_window_above(self):
        wf = WindowFile(8)
        wf.cwp = 5
        wf.write_out(3, 99)
        assert wf.ins_of(4)[3] == 99

    def test_callee_sees_caller_outs_as_ins(self):
        wf = WindowFile(8)
        wf.cwp = 5
        for i in range(8):
            wf.write_out(i, 100 + i)
        wf.cwp = 4  # what a save does
        for i in range(8):
            assert wf.read_in(i) == 100 + i

    def test_locals_are_private(self):
        wf = WindowFile(8)
        wf.cwp = 5
        wf.write_local(2, 7)
        wf.cwp = 4
        assert wf.read_local(2) == 0
        wf.cwp = 6
        assert wf.read_local(2) == 0

    def test_outs_of_matches_write_out(self):
        wf = WindowFile(6)
        wf.cwp = 2
        wf.write_out(0, 11)
        assert wf.outs_of(2)[0] == 11

    def test_overlap_wraps_cyclically(self):
        wf = WindowFile(4)
        wf.cwp = 0
        wf.write_out(1, 42)
        assert wf.ins_of(3)[1] == 42


class TestGlobals:
    def test_globals_shared_across_windows(self):
        wf = WindowFile(8)
        wf.write_global(3, 5)
        wf.cwp = 2
        assert wf.read_global(3) == 5

    def test_g0_hardwired_to_zero(self):
        wf = WindowFile(8)
        wf.write_global(0, 123)
        assert wf.read_global(0) == 0


class TestWIM:
    def test_set_and_query(self):
        wf = WindowFile(8)
        wf.set_wim({2, 5})
        assert wf.is_invalid(2)
        assert wf.is_invalid(5)
        assert not wf.is_invalid(3)

    def test_mark_valid_invalid(self):
        wf = WindowFile(8)
        wf.mark_invalid(1)
        assert wf.is_invalid(1)
        wf.mark_valid(1)
        assert not wf.is_invalid(1)

    def test_set_wim_checks_range(self):
        wf = WindowFile(4)
        with pytest.raises(WindowGeometryError):
            wf.set_wim({9})


class TestFrames:
    def test_capture_and_load_roundtrip(self):
        wf = WindowFile(6)
        wf.cwp = 3
        for i in range(8):
            wf.write_in(i, i * 2)
            wf.write_local(i, i * 3)
        frame = wf.capture(3, depth=7)
        wf.clear_window(3)
        assert wf.read_in(0) == 0
        wf.load(3, frame)
        for i in range(8):
            assert wf.read_in(i) == i * 2
            assert wf.read_local(i) == i * 3
        assert frame.depth == 7

    def test_capture_copies_not_aliases(self):
        wf = WindowFile(6)
        wf.cwp = 1
        wf.write_in(0, 10)
        frame = wf.capture(1)
        wf.write_in(0, 20)
        assert frame.ins[0] == 10

    def test_copy_ins_to_outs_is_the_inplace_shuffle(self):
        """§3.2: callee's ins (return values) must land in its outs."""
        wf = WindowFile(8)
        wf.cwp = 3
        for i in range(8):
            wf.write_in(i, 50 + i)
        wf.copy_ins_to_outs(3)
        for i in range(8):
            assert wf.read_out(i) == 50 + i
        # Loading a different frame over window 3 must not lose them.
        wf.load(3, Frame([0] * 8, [0] * 8, 0))
        for i in range(8):
            assert wf.read_out(i) == 50 + i
