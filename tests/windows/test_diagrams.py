"""The reenacted paper figures must exhibit exactly the facts their
captions state."""

import pytest

from repro.windows.diagrams import (
    reenact_all,
    reenact_figure3,
    reenact_figure4,
    reenact_figure8,
    render_window_file,
)
from tests.helpers import call_to_depth, dispatch, make_machine, new_thread


class TestFigure3:
    def test_caption_facts(self):
        r = reenact_figure3()
        assert r.facts["reserved_is_old_bottom"]
        assert r.facts["save_claimed_old_reserved"]
        assert r.facts["frames_in_memory"] == 1
        assert r.facts["overflow_traps"] == 1

    def test_renderings_differ(self):
        r = reenact_figure3()
        assert r.before != r.after
        assert "reserved" in r.before
        assert "CWP" in r.before and "CWP" in r.after

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_any_file_size(self, n):
        assert reenact_figure3(n).facts["reserved_is_old_bottom"]


class TestFigure4:
    def test_caption_facts(self):
        r = reenact_figure4()
        assert r.facts["cwp_moved_below"]
        assert r.facts["restored_into_old_reserved"]
        assert r.facts["reserved_moved_down"]
        assert r.facts["underflow_traps"] == 1


class TestFigure8:
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_caption_facts(self, scheme):
        r = reenact_figure8(scheme)
        assert r.facts["cwp_did_not_move"]
        assert r.facts["return_value_in_outs"]
        assert r.facts["windows_spilled_by_trap"] == 0

    def test_contrast_with_figure4(self):
        """The whole point: conventional underflow moves the CWP, the
        proposed one does not."""
        conventional = reenact_figure4()
        inplace = reenact_figure8("SP")
        assert conventional.facts["cwp_moved_below"]
        assert inplace.facts["cwp_did_not_move"]


class TestRendering:
    def test_render_marks_everything(self):
        cpu, scheme = make_machine(6, "SP")
        t1 = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        text = render_window_file(cpu)
        assert text.count("W") >= 6
        assert "CWP" in text
        assert "PRW of thread 0" in text
        assert "frame of thread 0" in text
        assert "(free)" in text

    def test_reenact_all_returns_four(self):
        items = reenact_all()
        assert len(items) == 4
        for item in items:
            assert str(item)
