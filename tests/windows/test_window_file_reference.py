"""Differential property test: the flat fast-path ``WindowFile`` must
match the retained nested-list :class:`ReferenceWindowFile` across
randomized save/restore/spill sequences, including WIM and register
traffic that wraps around window 0."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.windows.backing_store import Frame
from repro.windows.reference import ReferenceWindowFile
from repro.windows.window_file import REGS_PER_BANK, WindowFile

# ops: (kind, window-ish, reg, value) — window/reg are reduced mod the
# actual geometry inside the interpreter so every op is always legal
op_strategy = st.tuples(st.integers(0, 12), st.integers(0, 63),
                        st.integers(0, REGS_PER_BANK - 1),
                        st.integers(-(2 ** 40), 2 ** 40))


def _same_state(wf: WindowFile, ref: ReferenceWindowFile) -> None:
    assert wf.n_windows == ref.n_windows
    assert wf.cwp == ref.cwp
    assert wf.wim == ref.wim
    assert wf.global_regs == ref.global_regs
    for w in range(wf.n_windows):
        assert list(wf.ins_of(w)) == ref.ins_of(w), "ins of %d" % w
        assert list(wf.locals_of(w)) == ref.locals_of(w), "locals of %d" % w
        assert list(wf.outs_of(w)) == ref.outs_of(w), "outs of %d" % w
        assert wf.is_invalid(w) == ref.is_invalid(w)
        assert wf.above(w) == ref.above(w)
        assert wf.below(w) == ref.below(w)


def _apply(wf, ref, op, counter: int, stacks) -> None:
    kind, wsel, reg, value = op
    n = wf.n_windows
    w = wsel % n
    if kind == 0:  # save: CWP moves up, possibly wrapping past 0
        target = wf.above(wf.cwp)
        wf.cwp = target
        ref.cwp = target
    elif kind == 1:  # restore: CWP moves down
        target = wf.below(wf.cwp)
        wf.cwp = target
        ref.cwp = target
    elif kind == 2:
        wf.write_in(reg, value)
        ref.write_in(reg, value)
    elif kind == 3:
        wf.write_local(reg, value)
        ref.write_local(reg, value)
    elif kind == 4:  # out writes land in the window above (aliasing)
        wf.write_out(reg, value)
        ref.write_out(reg, value)
    elif kind == 5:
        wf.write_global(reg, value)
        ref.write_global(reg, value)
    elif kind == 6:  # spill window w to the store
        stacks.append((wf.capture(w, depth=counter),
                       ref.capture(w, depth=counter)))
    elif kind == 7:  # restore the innermost stored frame into window w
        if stacks:
            fast_frame, ref_frame = stacks.pop()
            wf.load(w, fast_frame)
            ref.load(w, ref_frame)
            wf.release_frame(fast_frame)  # exercises the frame pool
            assert fast_frame.depth == ref_frame.depth
    elif kind == 8:  # the in-place underflow shuffle (§3.2)
        wf.copy_ins_to_outs(w)
        ref.copy_ins_to_outs(w)
    elif kind == 9:
        wf.clear_window(w, fill=value)
        ref.clear_window(w, fill=value)
    elif kind == 10:  # WIM rebuild from a valid set (wraps freely)
        valid = {(w + i) % n for i in range(wsel % (n + 1))}
        wf.set_wim_except(valid)
        ref.set_wim_except(valid)
    elif kind == 11:
        wf.set_wim_only(w)
        ref.set_wim_only(w)
    elif kind == 12:
        if value % 2:
            wf.mark_invalid(w)
            ref.mark_invalid(w)
        else:
            wf.mark_valid(w)
            ref.mark_valid(w)


@settings(max_examples=120, deadline=None)
@given(n=st.integers(3, 34), ops=st.lists(op_strategy, min_size=1,
                                          max_size=80))
def test_flat_file_matches_reference(n, ops):
    wf = WindowFile(n)
    ref = ReferenceWindowFile(n)
    stacks = []
    for counter, op in enumerate(ops):
        _apply(wf, ref, op, counter, stacks)
        _same_state(wf, ref)


def test_wim_wraparound_save_chain():
    """A save chain longer than the file wraps the CWP (and the single
    invalid window) cyclically past window 0 without state divergence."""
    n = 5
    wf = WindowFile(n)
    ref = ReferenceWindowFile(n)
    wf.set_wim_only(n - 1)
    ref.set_wim_only(n - 1)
    for step in range(2 * n + 3):
        wf.write_local(0, ("frame", step))
        ref.write_local(0, ("frame", step))
        nxt = wf.above(wf.cwp)
        wf.set_wim_only(wf.above(nxt))
        ref.set_wim_only(ref.above(nxt))
        wf.cwp = nxt
        ref.cwp = nxt
        _same_state(wf, ref)
    assert wf.cwp == (0 - (2 * n + 3)) % n


def test_out_in_aliasing_is_physical():
    """outs_of(w) is the same storage as ins_of(above(w)) — in the flat
    file it is literally the same view object."""
    wf = WindowFile(8)
    for w in range(8):
        assert wf.outs_of(w) is wf.ins_of(wf.above(w))
    wf.cwp = 0
    wf.write_out(3, 99)
    assert wf.ins_of(7)[3] == 99


def test_frame_pool_reuses_released_frames():
    wf = WindowFile(4)
    wf.write_in(0, 11)
    frame = wf.capture(0, depth=2)
    assert frame.ins[0] == 11 and frame.depth == 2
    wf.release_frame(frame)
    wf.write_in(0, 22)
    again = wf.capture(0, depth=5)
    assert again is frame  # pooled buffer, not a new allocation
    assert again.ins[0] == 22 and again.depth == 5
    # a foreign-sized frame is never pooled
    wf.release_frame(Frame([0] * 3, [0] * 3, -1))
    third = wf.capture(0)
    assert len(third.ins) == REGS_PER_BANK


def test_capture_copies_rather_than_aliases():
    wf = WindowFile(4)
    wf.write_local(1, 7)
    frame = wf.capture(0)
    wf.write_local(1, 8)
    assert frame.local_regs[1] == 7
