"""Unit tests for the per-thread backing store."""

import pytest

from repro.windows.backing_store import BackingStore, Frame
from repro.windows.errors import WindowIntegrityError


def frame(depth):
    return Frame([depth] * 8, [depth * 10] * 8, depth)


class TestBackingStore:
    def test_push_pop_lifo(self):
        store = BackingStore()
        store.push(frame(1))
        store.push(frame(2))
        assert store.pop().depth == 2
        assert store.pop().depth == 1

    def test_len_and_bool(self):
        store = BackingStore()
        assert not store
        assert len(store) == 0
        store.push(frame(1))
        assert store
        assert len(store) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(WindowIntegrityError):
            BackingStore().pop()

    def test_peek(self):
        store = BackingStore()
        store.push(frame(1))
        assert store.peek().depth == 1
        assert len(store) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(WindowIntegrityError):
            BackingStore().peek()

    def test_non_contiguous_spill_rejected(self):
        store = BackingStore()
        store.push(frame(1))
        with pytest.raises(WindowIntegrityError):
            store.push(frame(3))

    def test_contiguous_spill_accepted(self):
        store = BackingStore()
        for d in range(1, 6):
            store.push(frame(d))
        assert len(store) == 5

    def test_unknown_depth_frames_skip_check(self):
        store = BackingStore()
        store.push(Frame([0] * 8, [0] * 8, -1))
        store.push(Frame([1] * 8, [1] * 8, -1))
        assert len(store) == 2
