"""WindowCPU guard rails and accessors."""

import pytest

from repro.windows.cpu import WindowCPU
from repro.windows.errors import WindowGeometryError
from repro.windows.thread_windows import ThreadWindows
from tests.helpers import dispatch, make_machine, new_thread


class TestGuards:
    def test_save_without_scheme_rejected(self):
        cpu = WindowCPU(4)
        tw = ThreadWindows(0)
        with pytest.raises(WindowGeometryError):
            cpu.save(tw)

    def test_save_by_non_running_thread_rejected(self):
        cpu, scheme = make_machine(6, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        with pytest.raises(WindowGeometryError):
            cpu.save(t2)

    def test_restore_at_root_depth_rejected(self):
        cpu, scheme = make_machine(6, "SP")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        with pytest.raises(WindowGeometryError):
            cpu.restore(tw)

    def test_desynchronised_cwp_detected(self):
        cpu, scheme = make_machine(6, "SNP")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        tw.cwp = cpu.wf.below(tw.cwp)  # corrupt on purpose
        with pytest.raises(WindowGeometryError):
            cpu.save(tw)

    def test_double_scheme_binding_rejected(self):
        from repro.core import make_scheme

        cpu = WindowCPU(6)
        make_scheme("SNP", cpu)
        with pytest.raises(WindowGeometryError):
            make_scheme("SP", cpu)

    def test_unknown_scheme_name(self):
        from repro.core import make_scheme

        cpu = WindowCPU(6)
        with pytest.raises(ValueError):
            make_scheme("BOGUS", cpu)


class TestAccessors:
    def test_register_accessors_track_cwp(self):
        cpu, scheme = make_machine(6, "SP")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        cpu.write_local(3, "L")
        cpu.write_in(2, "I")
        cpu.write_out(1, "O")
        assert cpu.read_local(3) == "L"
        assert cpu.read_in(2) == "I"
        assert cpu.read_out(1) == "O"

    def test_tick_accumulates(self):
        cpu, scheme = make_machine(6, "SP")
        cpu.tick(5)
        cpu.tick(7)
        assert cpu.counters.compute_cycles == 12

    def test_n_windows_property(self):
        assert WindowCPU(9).n_windows == 9

    def test_default_counters_and_cost(self):
        cpu = WindowCPU(5)
        assert cpu.counters.saves == 0
        assert cpu.cost.save_instr == 1
