"""The opt-in pre-run gates: ``Machine(analyze=True)``,
``Kernel(analyze=True)``, the harness pass-through, and the fuzzer's
static pre-validation of drawn plans."""

import pytest

from repro.analysis import AnalysisError
from repro.faults.fuzz import run_fuzz
from repro.faults.workloads import (
    WORKLOADS,
    WorkloadDef,
    register_workload,
)
from repro.isa import Machine, assemble
from repro.runtime.kernel import Kernel
from repro.runtime.ops import Read, Write

FACTORIAL_LIKE = """
start:
    call fn
    nop
    halt
fn:
    save
    mov  %i0, %i0
    ret
"""

FALLS_OFF = """
start:
    nop
"""


class TestMachineGate:
    def test_rejects_bad_program_before_running(self):
        with pytest.raises(AnalysisError) as info:
            Machine(assemble(FALLS_OFF), analyze=True)
        assert "fall-off-end" in [f.rule for f in info.value.report.errors]

    def test_passes_clean_program(self):
        machine = Machine(assemble(FACTORIAL_LIKE), analyze=True)
        machine.add_thread("start")
        assert list(machine.run().values()) == [0]

    def test_off_by_default(self):
        Machine(assemble(FALLS_OFF))  # no gate, no raise


def _lonely_reader(stream):
    data = yield Read(stream, 8)
    assert data  # pragma: no cover


def _writer(stream):
    yield Write(stream, b"ok")


def _reader(stream):
    yield Read(stream, 2)


class TestKernelGate:
    def test_rejects_guaranteed_deadlock(self):
        kernel = Kernel(n_windows=8, scheme="SP", analyze=True)
        stream = kernel.stream(16, name="orphan")
        kernel.spawn(_lonely_reader, stream, name="r")
        with pytest.raises(AnalysisError) as info:
            kernel.run()
        assert [f.rule for f in info.value.report.errors] == [
            "stream-never-written"]

    def test_passes_clean_topology(self):
        kernel = Kernel(n_windows=8, scheme="SP", analyze=True)
        stream = kernel.stream(8, name="pipe")
        kernel.spawn(_writer, stream, name="w")
        kernel.spawn(_reader, stream, name="r")
        kernel.run()  # completes

    def test_harness_pass_through(self):
        from repro.experiments.harness import run_point

        point = run_point("SP", 8, "high", "coarse", scale=0.02,
                          analyze=True)
        assert point.total_cycles > 0


def _build_doomed(kernel, config):
    stream = kernel.stream(int(config.get("capacity", 16)), name="void")
    kernel.spawn(_lonely_reader, stream, name="r")


@pytest.fixture
def doomed_workload():
    register_workload(WorkloadDef(name="test-doomed", build=_build_doomed))
    yield "test-doomed"
    del WORKLOADS["test-doomed"]


class TestFuzzPrevalidation:
    def test_known_bad_plan_is_rejected(self, tmp_path, doomed_workload):
        report = run_fuzz(trials=2, seed=7, out_dir=tmp_path,
                          workloads=[doomed_workload], minimize=False)
        assert report.rejected == 2
        for trial in report.trials:
            assert trial.outcome == "rejected"
            assert trial.config["static_verdict"] == "rejected"
            assert "stream-never-written" in trial.detail

    def test_clean_plan_records_verdict(self, tmp_path):
        report = run_fuzz(trials=1, seed=7, out_dir=tmp_path,
                          workloads=["synthetic-ping-pong"],
                          minimize=False)
        trial = report.trials[0]
        assert trial.outcome != "rejected"
        assert trial.config["static_verdict"] == "clean"
