"""Verifier front-end: CFG structure, depth facts, def-use hazards,
and the exact/bounded/fault prediction ladder."""

import pytest

from repro.analysis import (
    UNBOUNDED,
    AnalysisError,
    build_cfg,
    check_program,
    compute_bounds,
    verify_corpus,
    verify_program,
)
from repro.analysis.verifier import ThreadSpec
from repro.isa import assemble

BALANCED = """
start:
    call fn
    nop
    halt
fn:
    save
    mov  %i0, %i0
    ret
dead:
    nop
    halt
"""


class TestCFG:
    def test_functions_and_unreachable(self):
        cfg = build_cfg(assemble(BALANCED))
        names = sorted(fn.name for fn in cfg.functions.values())
        assert names == ["fn", "start"]
        assert cfg.unreachable  # the `dead` block
        assert not cfg.recursive_entries()

    def test_recursion_detected(self):
        source = """
        start:
            call fn
            nop
            halt
        fn:
            save
            call fn
            nop
            ret
        """
        cfg = build_cfg(assemble(source))
        program = assemble(source)
        entry = program.labels["fn"]
        assert cfg.recursive_entries() == {entry}
        bounds = compute_bounds(cfg)
        assert bounds.thread_bound(program.labels["start"]) is UNBOUNDED

    def test_depth_bound_composes_through_calls(self):
        source = """
        start:
            call outer
            nop
            halt
        outer:
            save
            call inner
            nop
            ret
        inner:
            save
            mov %i0, %i0
            ret
        """
        program = assemble(source)
        bounds = compute_bounds(build_cfg(program))
        # start (1) -> outer save (2) -> inner save (3)
        assert bounds.thread_bound(program.labels["start"]) == 3


class TestFindings:
    def test_fall_off_end(self):
        report = verify_program("start:\n    nop\n", name="p")
        assert [f.rule for f in report.errors] == ["fall-off-end"]

    def test_depth_underflow_at_entry(self):
        report = verify_program("start:\n    restore\n    halt\n",
                                name="p")
        assert "depth-underflow" in [f.rule for f in report.errors]

    def test_unbalanced_return(self):
        source = """
        start:
            call fn
            nop
            halt
        fn:
            save
            save
            ret
        """
        report = verify_program(source, name="p")
        assert "unbalanced-return" in [f.rule for f in report.findings]

    def test_stale_read_after_save(self):
        source = """
        start:
            call fn
            nop
            halt
        fn:
            save
            add  %l2, 1, %o0
            ret
        """
        report = verify_program(source, name="p")
        stale = [f for f in report.findings if f.rule == "stale-read"]
        assert stale and "%l2" in stale[0].message

    def test_entry_outs_are_residue(self):
        report = verify_program("start:\n    add %o3, 1, %o0\n    halt\n",
                                name="p")
        assert [f.rule for f in report.warnings] == ["stale-read"]

    def test_missing_entry_label(self):
        report = verify_program("start:\n    halt\n", name="p",
                                threads=[ThreadSpec("absent")])
        assert "missing-entry" in [f.rule for f in report.errors]

    def test_check_program_raises(self):
        with pytest.raises(AnalysisError) as info:
            check_program("start:\n    nop\n", name="p")
        assert info.value.report.errors


class TestPredictions:
    def test_exact_mode_on_clean_program(self):
        report = verify_program(BALANCED, name="p",
                                threads=[ThreadSpec()])
        prediction = report.meta["prediction"]
        assert prediction["mode"] == "exact"
        assert prediction["counters"]["saves"] == 1
        assert prediction["threads"][0]["max_depth"] == 2

    def test_bounded_mode_when_control_depends_on_residue(self):
        source = """
        start:
            call fn
            nop
            halt
        fn:
            save
            cmp  %l0, 0
            be   out
            nop
        out:
            ret
        """
        report = verify_program(source, name="p",
                                threads=[ThreadSpec()])
        assert report.meta["prediction"]["mode"] == "bounded"
        assert report.meta["thread_depth_bounds"]["start"] == 2

    def test_fault_mode_is_an_error(self):
        """A structurally-clean livelock exhausts the abstract step
        budget — a guaranteed dynamic fault, reported as an error."""
        source = """
        start:
            ba   start
            nop
        """
        report = verify_program(source, name="p",
                                threads=[ThreadSpec()], max_steps=1_000)
        assert report.meta["prediction"]["mode"] == "fault"
        assert "guest-fault" in [f.rule for f in report.errors]

    def test_wraparound_predicted(self):
        """DEEP_SUM on 8 windows forces saves into window 7 — the WIM
        wraparound the paper's Figure 4 describes."""
        from repro.analysis.verifier import corpus_cases
        case = next(c for c in corpus_cases() if c.name == "deep_sum")
        report = verify_program(case.source, name=case.name,
                                threads=case.threads, pokes=case.pokes,
                                n_windows=8, scheme="SP")
        assert report.meta["prediction"]["wraparounds"] > 0


def test_corpus_is_clean_everywhere():
    for scheme in ("NS", "SNP", "SP"):
        report = verify_corpus(n_windows=8, scheme=scheme)
        assert report.clean, [f.describe() for f in report.findings]
        modes = {name: info["prediction_mode"]
                 for name, info in report.meta["programs"].items()}
        assert set(modes.values()) == {"exact"}, modes
