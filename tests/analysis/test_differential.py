"""The exactness contract: static predictions == dynamic counters.

For every committed program under its canonical launch, across all
three schemes and two window-file sizes, the abstract interpreter's
predicted counters must match the real machine's ``Counters``
attribute-for-attribute (including the switch-transfer histogram and
every cycle category), the predicted WIM wraparounds must match the
dynamic count of saves landing in window ``n-1``, and the per-thread
maximum depth must match the dynamic trace.  The stream-topology
verdicts get the same treatment against both execution cores.
"""

import pytest

from repro.analysis import AbstractMachine, ProbeKernel, analyze_kernel
from repro.analysis.verifier import corpus_cases
from repro.isa import Machine, assemble
from repro.runtime.errors import DeadlockError
from repro.runtime.ops import Read, Write
from tests.support.trampoline import make_kernel

SCHEMES = ("NS", "SNP", "SP")
WINDOW_COUNTS = (8, 32)
CORES = ("batched", "generator")


def _dynamic_comparable(counters):
    return {
        "saves": counters.saves,
        "restores": counters.restores,
        "overflow_traps": counters.overflow_traps,
        "underflow_traps": counters.underflow_traps,
        "windows_spilled": counters.windows_spilled,
        "windows_restored": counters.windows_restored,
        "context_switches": counters.context_switches,
        "switch_transfer_hist": dict(counters.switch_transfer_hist),
        "compute_cycles": counters.compute_cycles,
        "call_cycles": counters.call_cycles,
        "trap_cycles": counters.trap_cycles,
        "switch_cycles": counters.switch_cycles,
        "total_cycles": counters.total_cycles,
    }


def _run_dynamic(case, scheme, n_windows):
    machine = Machine(assemble(case.source), n_windows=n_windows,
                      scheme=scheme)
    wraparounds = 0
    max_depth = {}

    def watch(event):
        nonlocal wraparounds
        if event.kind == "save":
            if event.get("window") == n_windows - 1:
                wraparounds += 1
            depth = event.get("depth", 0)
            if depth > max_depth.get(event.tid, 0):
                max_depth[event.tid] = depth

    machine.cpu.events.subscribe(watch)
    for addr, value in case.pokes:
        machine.poke(addr, value)
    threads = [machine.add_thread(spec.entry, args=spec.args,
                                  name=spec.name)
               for spec in case.threads]
    exits = machine.run(max_steps=case.max_steps)
    # initial depth-1 frames never pass through a save event
    for thread in threads:
        max_depth.setdefault(thread.tid, 1)
    return exits, machine.counters, wraparounds, max_depth


def _run_static(case, scheme, n_windows):
    machine = AbstractMachine(assemble(case.source), n_windows=n_windows,
                              scheme=scheme)
    for addr, value in case.pokes:
        machine.poke(addr, value)
    threads = [machine.add_thread(spec.entry, args=spec.args,
                                  name=spec.name)
               for spec in case.threads]
    exits = machine.run(max_steps=case.max_steps)
    return exits, machine.counters, threads


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("n_windows", WINDOW_COUNTS)
def test_corpus_counters_exact(scheme, n_windows):
    for case in corpus_cases():
        exits_d, counters_d, wraps_d, depth_d = _run_dynamic(
            case, scheme, n_windows)
        exits_s, counters_s, threads_s = _run_static(
            case, scheme, n_windows)
        label = "%s/%s/w%d" % (case.name, scheme, n_windows)
        assert exits_s == exits_d, label
        static = counters_s.as_comparable()
        dynamic = _dynamic_comparable(counters_d)
        for key in dynamic:
            assert static[key] == dynamic[key], "%s: %s" % (label, key)
        assert counters_s.wraparounds == wraps_d, label
        for thread in threads_s:
            assert thread.mt.max_depth == depth_d[thread.tid], (
                "%s: tid %d max depth" % (label, thread.tid))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_per_thread_stats_exact(scheme):
    """The model's per-thread save/restore attribution matches the
    dynamic ``ThreadWindows`` stats (two-thread interleaved case)."""
    case = next(c for c in corpus_cases() if c.name == "two_counters")
    machine = Machine(assemble(case.source), n_windows=6, scheme=scheme)
    for s in case.threads:
        machine.add_thread(s.entry, args=s.args, name=s.name)
    machine.run(max_steps=case.max_steps)
    amachine = AbstractMachine(assemble(case.source), n_windows=6,
                               scheme=scheme)
    for s in case.threads:
        amachine.add_thread(s.entry, args=s.args, name=s.name)
    amachine.run(max_steps=case.max_steps)
    predicted = amachine.model.fold_thread_stats()
    counters = machine.counters
    assert predicted["per_thread_saves"] == dict(counters.per_thread_saves)
    assert predicted["per_thread_restores"] == dict(
        counters.per_thread_restores)
    assert predicted["per_thread_switches"] == dict(
        counters.per_thread_switches)


# -- stream-topology verdicts against both execution cores ---------------


def _lonely_reader(stream):
    data = yield Read(stream, 16)
    assert data  # pragma: no cover - never reached


def _build_deadlocked(kernel):
    stream = kernel.stream(64, name="orphan")
    kernel.spawn(_lonely_reader, stream, name="reader")


def _source(stream):
    yield Write(stream, b"payload")


def _sink(stream):
    yield Read(stream, 7)


def _build_clean(kernel):
    stream = kernel.stream(8, name="pipe")
    kernel.spawn(_source, stream, name="src")
    kernel.spawn(_sink, stream, name="dst")


@pytest.mark.parametrize("core", CORES)
def test_static_deadlock_verdict_matches_dynamic(core):
    """A statically-guaranteed deadlock really deadlocks — on both
    execution cores — and a statically-clean chain really completes."""
    probe = ProbeKernel()
    _build_deadlocked(probe)
    report = analyze_kernel(probe)
    assert [f.rule for f in report.errors] == ["stream-never-written"]

    kernel = make_kernel(core=core, n_windows=8, scheme="SP")
    _build_deadlocked(kernel)
    with pytest.raises(DeadlockError):
        kernel.run()

    probe = ProbeKernel()
    _build_clean(probe)
    assert analyze_kernel(probe).ok

    kernel = make_kernel(core=core, n_windows=8, scheme="SP")
    _build_clean(kernel)
    kernel.run()  # completes


@pytest.mark.parametrize("core", CORES)
def test_cycle_candidates_are_candidates_not_errors(core):
    """Ping-pong is a static cycle *candidate* that dynamically
    completes on both cores — the verdicts must agree: reported as a
    candidate (meta), not as a guaranteed deadlock (error)."""
    from repro.apps.synthetic import spawn_ping_pong

    probe = ProbeKernel()
    spawn_ping_pong(probe, rounds=4)
    report = analyze_kernel(probe)
    assert report.ok
    assert report.meta["cycles"], "the write/read cycle must be seen"

    kernel = make_kernel(core=core, n_windows=8, scheme="SNP")
    spawn_ping_pong(kernel, rounds=4)
    kernel.run()  # completes despite the cycle


@pytest.mark.parametrize("core", CORES)
def test_committed_workloads_clean_and_complete(core):
    """Every registered workload is statically clean and dynamically
    completes under its default parameters on both cores."""
    from repro.analysis import analyze_workload_config
    from repro.faults.workloads import WORKLOADS, run_workload

    for name in sorted(WORKLOADS):
        report = analyze_workload_config({"workload": name})
        assert report.clean, (name, [f.describe() for f in report.findings])
        run_workload({"workload": name, "core": core,
                      "scale": 0.05, "max_steps": 2_000_000})
