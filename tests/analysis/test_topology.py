"""Stream-topology analysis: graph extraction (including the
interprocedural and collection-binding cases the committed workloads
use), verdict rules, and the workload-config entry point."""

from repro.analysis import (
    ProbeKernel,
    analyze_kernel,
    analyze_threads,
    analyze_workload_config,
)
from repro.runtime.ops import Call, CloseStream, Read, ReadLine, Write


# module-level factories: the walker reads their source


def _writer(stream, count):
    for __ in range(count):
        yield Write(stream, b"x")
    yield CloseStream(stream)


def _reader(stream):
    while True:
        data = yield Read(stream, 4)
        if not data:
            break


def _helper_write(stream, payload):
    yield Write(stream, payload)


def _via_call(stream):
    yield Call(_helper_write, stream, b"indirect")
    yield CloseStream(stream)


def _finish(stream):
    yield Write(stream, b"!")


def _via_yield_from(stream):
    yield from _finish(stream)
    yield CloseStream(stream)


def _fanout(streams, items):
    for index in range(items):
        stream = streams[index % len(streams)]
        yield Write(stream, b"w")
    for stream in streams:
        yield CloseStream(stream)


def _line_reader(stream):
    line = yield ReadLine(stream)
    assert line is not None


class TestGraph:
    def test_direct_ops(self):
        probe = ProbeKernel()
        stream = probe.stream(8, name="s")
        probe.spawn(_writer, stream, 3, name="w")
        probe.spawn(_reader, stream, name="r")
        graph = analyze_threads(probe.threads)
        node = graph.streams[id(stream)]
        assert node.writers == {"w"} and node.closers == {"w"}
        assert node.readers == {"r"}
        assert not graph.partial

    def test_interprocedural_call_and_yield_from(self):
        probe = ProbeKernel()
        s1 = probe.stream(8, name="s1")
        s2 = probe.stream(8, name="s2")
        probe.spawn(_via_call, s1, name="caller")
        probe.spawn(_via_yield_from, s2, name="delegator")
        graph = analyze_threads(probe.threads)
        assert graph.streams[id(s1)].writers == {"caller"}
        assert graph.streams[id(s2)].writers == {"delegator"}
        assert not graph.partial

    def test_subscript_and_loop_bind_all_members(self):
        probe = ProbeKernel()
        streams = [probe.stream(4, name="w%d" % i) for i in range(3)]
        probe.spawn(_fanout, streams, 7, name="parent")
        graph = analyze_threads(probe.threads)
        for stream in streams:
            assert graph.streams[id(stream)].writers == {"parent"}
            assert graph.streams[id(stream)].closers == {"parent"}

    def test_readline_counts_as_read(self):
        probe = ProbeKernel()
        stream = probe.stream(8, name="s")
        probe.spawn(_line_reader, stream, name="r")
        graph = analyze_threads(probe.threads)
        assert graph.streams[id(stream)].readers == {"r"}

    def test_cycle_detection(self):
        probe = ProbeKernel()
        a = probe.stream(1, name="a")
        b = probe.stream(1, name="b")

        probe.spawn(_relay, a, b, name="t1")
        probe.spawn(_relay, b, a, name="t2")
        graph = analyze_threads(probe.threads)
        assert graph.cycles()


def _relay(src, dst):
    data = yield Read(src, 4)
    yield Write(dst, data or b"")


class TestVerdicts:
    def test_never_written_is_error(self):
        probe = ProbeKernel()
        stream = probe.stream(8, name="orphan")
        probe.spawn(_reader, stream, name="r")
        report = analyze_kernel(probe)
        assert [f.rule for f in report.errors] == ["stream-never-written"]

    def test_pedantic_candidates(self):
        probe = ProbeKernel()
        stream = probe.stream(8, name="sink")
        probe.spawn(_writer, stream, 2, name="w")
        report = analyze_kernel(probe, pedantic=True)
        assert "stream-never-read" in [f.rule for f in report.findings]
        # default mode keeps candidates out of the findings
        assert analyze_kernel(probe).clean

    def test_unresolvable_degrades_to_warning(self):
        # a factory whose source cannot be read (builtin) -> partial
        probe = ProbeKernel()
        stream = probe.stream(8, name="s")
        probe.spawn(_reader, stream, name="r")
        probe.spawn(len, stream, name="opaque")
        report = analyze_kernel(probe)
        assert report.meta["partial"]
        assert not report.errors  # degraded: warning, not error
        assert [f.rule for f in report.warnings] == [
            "stream-never-written"]


class TestWorkloadConfig:
    def test_known_workloads_clean(self):
        for name in ("synthetic-ping-pong", "synthetic-fork-join",
                     "spellcheck"):
            report = analyze_workload_config(
                {"workload": name, "scale": 0.05})
            assert report.clean, (name, report.findings)

    def test_unknown_workload_is_an_error(self):
        report = analyze_workload_config({"workload": "no-such"})
        assert [f.rule for f in report.errors] == ["workload-build-error"]

    def test_ping_pong_cycle_is_reported_in_meta(self):
        report = analyze_workload_config(
            {"workload": "synthetic-ping-pong"})
        assert report.meta["cycles"]
        pedantic = analyze_workload_config(
            {"workload": "synthetic-ping-pong"}, pedantic=True)
        assert "stream-cycle" in [f.rule for f in pedantic.findings]
