"""Hot-path invariant linter: the booby-trap suite.

Each test plants a deliberate violation in a synthetic tree shaped
like ``src/repro`` and proves the linter catches it — and that the
idiomatic guarded/slotted/deterministic variant passes.  The final
test is the acceptance gate: the real tree must lint clean.
"""

import pathlib

import pytest

from repro.analysis import lint_paths, lint_source

REPO_SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _lint(tmp_path, rel, source):
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path], root=tmp_path / "repro")


UNGUARDED_EMIT = """\
class Dispatcher:
    __slots__ = ("events", "_tracing")

    def step(self):
        self.events.emit("step", cycle=0)
"""

GUARDED_EMIT = """\
class Dispatcher:
    __slots__ = ("events", "_tracing")

    def step(self):
        if self._tracing:
            self.events.emit("step", cycle=0)
"""


class TestEmitGuard:
    def test_unguarded_emit_is_caught(self, tmp_path):
        report = _lint(tmp_path, "runtime/disp.py", UNGUARDED_EMIT)
        assert [f.rule for f in report.errors] == ["unguarded-emit"]

    def test_guarded_emit_passes(self, tmp_path):
        assert _lint(tmp_path, "runtime/disp.py", GUARDED_EMIT).clean

    def test_else_branch_is_not_guarded(self, tmp_path):
        source = GUARDED_EMIT + """\
        else:
            self.events.emit("quiet", cycle=0)
"""
        report = _lint(tmp_path, "runtime/disp.py", source)
        assert [f.rule for f in report.errors] == ["unguarded-emit"]


class TestTelemetryGuard:
    def test_unguarded_buffer_append(self, tmp_path):
        source = """\
class Probe:
    __slots__ = ("_tel_buf",)

    def sample(self, v):
        self._tel_buf.append(v)
"""
        report = _lint(tmp_path, "runtime/probe.py", source)
        assert [f.rule for f in report.errors] == ["unguarded-telemetry"]

    def test_none_guarded_buffer_passes(self, tmp_path):
        source = """\
class Probe:
    __slots__ = ("_tel_buf",)

    def sample(self, v):
        if self._tel_buf is not None:
            self._tel_buf.append(v)
"""
        assert _lint(tmp_path, "runtime/probe.py", source).clean


class TestSlots:
    def test_missing_slots_in_hot_module(self, tmp_path):
        source = "class ThreadWindows:\n    def __init__(self):\n        self.depth = 0\n"
        report = _lint(tmp_path, "windows/thread_windows.py", source)
        assert [f.rule for f in report.findings] == ["missing-slots"]

    def test_slots_present_passes(self, tmp_path):
        source = ("class ThreadWindows:\n"
                  "    __slots__ = (\"depth\",)\n"
                  "    def __init__(self):\n"
                  "        self.depth = 0\n")
        assert _lint(tmp_path, "windows/thread_windows.py", source).clean

    def test_dataclass_slots_passes(self, tmp_path):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass(slots=True)\n"
                  "class BackingStore:\n"
                  "    depth: int = 0\n")
        assert _lint(tmp_path, "windows/backing_store.py", source).clean

    def test_exceptions_exempt(self, tmp_path):
        source = "class SpillError(Exception):\n    pass\n"
        assert _lint(tmp_path, "windows/thread_windows.py", source).clean

    def test_cold_modules_exempt(self, tmp_path):
        source = "class Report:\n    def __init__(self):\n        self.rows = []\n"
        assert _lint(tmp_path, "metrics/report.py", source).clean


class TestDeterminism:
    @pytest.mark.parametrize("stmt", [
        "import time\n\ndef stamp():\n    return time.time()\n",
        "from time import monotonic\n\ndef stamp():\n    return monotonic()\n",
        "import random\n\ndef pick():\n    return random.randint(0, 7)\n",
        "from random import random\n",
    ])
    def test_wallclock_in_runtime_is_caught(self, tmp_path, stmt):
        report = _lint(tmp_path, "runtime/clock.py", stmt)
        assert "wallclock-call" in [f.rule for f in report.findings]
        assert report.errors

    def test_seeded_random_instance_passes(self, tmp_path):
        source = ("import random\n\n"
                  "def make_rng(seed):\n"
                  "    return random.Random(seed)\n")
        assert _lint(tmp_path, "runtime/rng.py", source).clean

    def test_wallclock_outside_deterministic_dirs_passes(self, tmp_path):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        assert _lint(tmp_path, "metrics/wall.py", source).clean


def test_syntax_error_is_a_finding():
    findings = lint_source("def broken(:\n", "runtime/x.py", "x.py")
    assert [f.rule for f in findings] == ["syntax-error"]


def test_real_tree_is_clean():
    """Acceptance: ``python -m repro.analysis lint src/repro`` exits 0."""
    report = lint_paths([REPO_SRC], root=REPO_SRC)
    assert report.meta["files_checked"] > 40
    assert report.clean, [f.describe() for f in report.findings]
