"""The calibrated cost model must reproduce Table 2 and keep the cost
relations the paper's arguments depend on."""

import pytest

from repro.core.costs import CostModel, PAPER_TABLE2


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestTable2Calibration:
    def test_every_row_in_paper_range(self, model):
        for row, value, ok in model.table2_check():
            assert ok, (
                "%s (%d,%d): model %d outside paper range %d-%d"
                % (row.scheme, row.saves, row.restores, value,
                   row.lo, row.hi))

    def test_ns_cost_exactly_linear(self, model):
        costs = [model.ns_switch_cost(s, 1) for s in range(1, 7)]
        deltas = {b - a for a, b in zip(costs, costs[1:])}
        assert deltas == {model.ns_per_save}

    def test_best_case_ordering(self, model):
        """SP best < SNP best < NS best (Table 2's headline)."""
        sp = model.sp_switch_cost(0, 0, False)
        snp = model.snp_switch_cost(0, 0)
        ns = model.ns_switch_cost(1, 1)
        assert sp < snp < ns

    def test_sp_worst_beats_ns_with_four_active_windows(self, model):
        """SP's worst case (2 saves + restore) is still cheaper than an
        NS switch flushing four windows (as in the paper's Table 2,
        229-ish vs 255-ish)."""
        assert model.sp_switch_cost(2, 1, True) < model.ns_switch_cost(4, 1)


class TestTrapCosts:
    def test_overflow_spill_costs_more_than_claim(self, model):
        assert model.overflow_cost(True) > model.overflow_cost(False)

    def test_flush_cheaper_than_trap_spill(self, model):
        """§4.4: flushing at switch time avoids trap entry/exit."""
        assert model.flush_cost(1) < model.overflow_cost(True)

    def test_inplace_underflow_has_copy_and_emulation_overhead(self, model):
        """§3.2/§4.3: the in-place restore pays for the ins->outs copy
        and the emulated restore instruction, but stays the same order
        as the conventional handler."""
        inplace = model.underflow_inplace_cost()
        conventional = model.underflow_conventional_cost()
        assert inplace > conventional - model.wim_update
        assert inplace < 2 * conventional

    def test_trap_costs_positive(self, model):
        assert model.overflow_cost(False) > 0
        assert model.underflow_conventional_cost() > 0
        assert model.underflow_inplace_cost() > 0


class TestSwitchCostDispatch:
    def test_switch_cost_by_name(self, model):
        assert model.switch_cost("ns", 2, 1) == model.ns_switch_cost(2, 1)
        assert model.switch_cost("SNP", 1, 0) == model.snp_switch_cost(1, 0)
        assert (model.switch_cost("SP", 0, 1)
                == model.sp_switch_cost(0, 1, True))

    def test_unknown_scheme_rejected(self, model):
        with pytest.raises(ValueError):
            model.switch_cost("XYZ", 0, 0)

    def test_paper_table_structure(self):
        schemes = {row.scheme for row in PAPER_TABLE2}
        assert schemes == {"NS", "SNP", "SP"}
        assert len(PAPER_TABLE2) == 14
        for row in PAPER_TABLE2:
            assert row.lo < row.hi
            assert row.contains(int(row.mid))
