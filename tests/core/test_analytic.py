"""The analytic bounding model must bracket the simulation."""

import pytest

from repro.core.analytic import AnalyticModel, WorkloadStats, stats_from_run
from repro.apps.spellcheck import SpellConfig, build_spellchecker
from repro.metrics.behavior import BehaviorTracker
from repro.runtime.kernel import Kernel

SCALE = 0.03


def _instrumented_run(scheme, n_windows):
    kernel = Kernel(n_windows=n_windows, scheme=scheme,
                    verify_registers=False)
    kernel.tracker = BehaviorTracker()
    build_spellchecker(kernel, SpellConfig.named("high", "medium",
                                                 scale=SCALE))
    result = kernel.run()
    return result, kernel.tracker


@pytest.fixture(scope="module")
def model():
    result, tracker = _instrumented_run("SP", 32)
    return AnalyticModel(stats_from_run(result.counters, tracker))


class TestStats:
    def test_total_window_activity_is_the_product(self):
        stats = WorkloadStats(1, 1, 1, 1,
                              window_activity_per_thread=2.5,
                              concurrency=4.0)
        assert stats.total_window_activity == 10.0

    def test_stats_from_run_sane(self, model):
        s = model.stats
        assert s.context_switches > 50
        assert s.saves == s.restores
        assert 1.0 <= s.window_activity_per_thread <= 6.0
        assert 1.0 <= s.concurrency <= 7.0


class TestBounds:
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_floor_below_ceiling(self, model, scheme):
        assert (model.sharing_floor_cycles(scheme)
                < model.sharing_ceiling_cycles(scheme))

    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_simulation_between_bounds_when_plentiful(self, model,
                                                      scheme):
        result, __ = _instrumented_run(scheme, 32)
        measured = result.counters.total_cycles
        assert model.sharing_floor_cycles(scheme) * 0.95 <= measured
        assert measured <= model.sharing_ceiling_cycles(scheme)

    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_simulation_approaches_floor_with_many_windows(self, model,
                                                           scheme):
        result, __ = _instrumented_run(scheme, 32)
        floor = model.sharing_floor_cycles(scheme)
        assert result.counters.total_cycles <= floor * 1.25

    def test_ns_prediction_close_to_simulation(self, model):
        result, __ = _instrumented_run("NS", 16)
        measured = result.counters.total_cycles
        predicted = model.ns_cycles()
        assert 0.5 <= predicted / measured <= 2.0

    def test_headline_claim(self, model):
        """With windows plentiful the sharing schemes must beat NS —
        the whole point of the paper, in closed form."""
        assert model.sharing_beats_ns_when_plentiful("SP")
        assert model.sharing_beats_ns_when_plentiful("SNP")

    def test_plentiful_criterion(self, model):
        activity = model.stats.total_window_activity
        assert model.windows_plentiful(int(activity) + 2)
        assert not model.windows_plentiful(max(1, int(activity) - 3))
