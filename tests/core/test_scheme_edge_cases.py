"""Edge-case geometry: tiny files, saturation, retire-under-pressure,
and the free-run grant machinery."""

import pytest

from repro.windows.errors import WindowGeometryError
from tests.helpers import (
    call,
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    ret,
    ret_to_depth,
    verify,
)


class TestTinyFiles:
    def test_snp_minimum_three_windows(self):
        cpu, scheme = make_machine(3, "SNP")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 10)
        ret_to_depth(cpu, tw, 1)
        assert tw.depth == 1
        verify(cpu, scheme)

    def test_sp_rejects_three_windows(self):
        with pytest.raises(WindowGeometryError):
            make_machine(3, "SP")

    def test_sp_minimum_four_windows_two_threads(self):
        cpu, scheme = make_machine(4, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 4)
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 4)
        dispatch(cpu, scheme, t2, t1)
        ret_to_depth(cpu, t1, 1)
        dispatch(cpu, scheme, t1, t2)
        ret_to_depth(cpu, t2, 1)
        verify(cpu, scheme)

    def test_ns_three_windows_deep(self):
        cpu, scheme = make_machine(3, "NS")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 25)
        ret_to_depth(cpu, tw, 1)
        assert tw.depth == 1
        verify(cpu, scheme)


class TestManyThreads:
    @pytest.mark.parametrize("scheme_name", ["SNP", "SP"])
    def test_more_threads_than_windows(self, scheme_name):
        """8 threads on a 5-window file: constant eviction, no
        corruption (helpers verify all register traffic)."""
        cpu, scheme = make_machine(5, scheme_name)
        threads = [new_thread(scheme, i) for i in range(8)]
        current = None
        for round_no in range(4):
            for thread in threads:
                dispatch(cpu, scheme, current, thread)
                current = thread
                call(cpu, thread)
                if thread.depth > 2:
                    ret(cpu, thread)
                verify(cpu, scheme)
        for thread in threads:
            if thread is not current:
                dispatch(cpu, scheme, current, thread)
                current = thread
            ret_to_depth(cpu, thread, 1)
        verify(cpu, scheme)


class TestRetireUnderPressure:
    @pytest.mark.parametrize("scheme_name", ["NS", "SNP", "SP"])
    def test_retire_all_then_reuse(self, scheme_name):
        cpu, scheme = make_machine(6, scheme_name)
        threads = [new_thread(scheme, i) for i in range(3)]
        current = None
        for thread in threads:
            dispatch(cpu, scheme, current, thread)
            current = thread
            call_to_depth(cpu, thread, 3)
        for thread in threads:
            scheme.retire(thread)
        assert cpu.map.free_count() >= 5
        late = new_thread(scheme, 99)
        scheme.context_switch(None, late)
        call_to_depth(cpu, late, 8)
        ret_to_depth(cpu, late, 1)
        verify(cpu, scheme)


class TestGrantMachinery:
    @pytest.mark.parametrize("scheme_name", ["SNP", "SP"])
    def test_regrowth_after_dispatch_is_trap_free(self, scheme_name):
        """The granted headroom lets a resumed thread re-descend a few
        frames without any traps (the Figure 13 fix)."""
        cpu, scheme = make_machine(12, scheme_name)
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        # t2 takes residence first, so switching back to it never
        # allocates into t1's vacated space.
        dispatch(cpu, scheme, None, t2)
        call_to_depth(cpu, t2, 2)
        dispatch(cpu, scheme, t2, t1)
        call_to_depth(cpu, t1, 5)
        ret_to_depth(cpu, t1, 2)      # vacate three windows above
        dispatch(cpu, scheme, t1, t2)
        dispatch(cpu, scheme, t2, t1)
        traps_before = cpu.counters.overflow_traps
        call_to_depth(cpu, t1, 5)     # re-descend into the granted run
        assert cpu.counters.overflow_traps == traps_before
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", ["SNP", "SP"])
    def test_grant_is_capped(self, scheme_name):
        """Headroom beyond grant_headroom still traps (cheaply)."""
        cpu, scheme = make_machine(16, scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        cap = scheme.grant_headroom
        traps_before = cpu.counters.overflow_traps
        call_to_depth(cpu, tw, 1 + cap)   # within the grant
        assert cpu.counters.overflow_traps == traps_before
        call(cpu, tw)                      # one beyond: boundary trap
        assert cpu.counters.overflow_traps == traps_before + 1
        verify(cpu, scheme)
