"""The Tamir & Sequin transfer-depth knob on the NS scheme (§2): how
many windows each trap moves."""

import pytest

from repro import Call, Kernel, Tick
from repro.windows.errors import WindowGeometryError
from tests.helpers import (
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    ret,
    ret_to_depth,
    verify,
)


def deep(n):
    yield Tick(1)
    if n == 0:
        return 0
    below = yield Call(deep, n - 1)
    return below + 1


class TestTransferDepthTraps:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_overflow_spills_depth_windows(self, depth):
        cpu, scheme = make_machine(8, "NS", transfer_depth=depth)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 7)  # fills the n-1 usable windows
        call_to_depth(cpu, tw, 8)  # one overflow
        assert cpu.counters.overflow_traps == 1
        assert len(tw.store) == depth
        verify(cpu, scheme)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_underflow_restores_depth_windows(self, depth):
        cpu, scheme = make_machine(8, "NS", transfer_depth=depth)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 12)
        ret_to_depth(cpu, tw, tw.depth - tw.resident + 1)
        traps_before = cpu.counters.underflow_traps
        ret(cpu, tw)  # underflow
        assert cpu.counters.underflow_traps == traps_before + 1
        assert tw.resident == depth
        verify(cpu, scheme)

    def test_depth_reduces_trap_count_for_deep_unwinds(self):
        traps = {}
        for depth in (1, 4):
            cpu, scheme = make_machine(8, "NS", transfer_depth=depth)
            tw = new_thread(scheme, 0)
            dispatch(cpu, scheme, None, tw)
            call_to_depth(cpu, tw, 30)
            ret_to_depth(cpu, tw, 1)
            traps[depth] = cpu.counters.underflow_traps
        assert traps[4] < traps[1]

    def test_invalid_depth_rejected(self):
        with pytest.raises(WindowGeometryError):
            make_machine(8, "NS", transfer_depth=0)

    def test_depth_capped_by_file_size(self):
        """A huge transfer depth must not wrap the window file."""
        cpu, scheme = make_machine(4, "NS", transfer_depth=16)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 10)
        ret_to_depth(cpu, tw, 1)
        assert tw.depth == 1
        verify(cpu, scheme)


class TestTransferDepthKernel:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_results_independent_of_depth(self, depth):
        kernel = Kernel(n_windows=6, scheme="NS",
                        scheme_kwargs={"transfer_depth": depth})
        kernel.spawn(deep, 20, name="d")
        result = kernel.run(max_steps=100_000)
        assert result.result_of("d") == 20

    def test_save_counts_independent_of_depth(self):
        saves = set()
        for depth in (1, 2, 4):
            kernel = Kernel(n_windows=6, scheme="NS",
                            scheme_kwargs={"transfer_depth": depth})
            kernel.spawn(deep, 20, name="d")
            result = kernel.run(max_steps=100_000)
            saves.add(result.counters.saves)
        assert len(saves) == 1
