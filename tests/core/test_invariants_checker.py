"""The invariant checker itself must catch planted corruption."""

import pytest

from repro.core.invariants import check_invariants
from repro.windows.errors import WindowGeometryError
from tests.helpers import call_to_depth, dispatch, make_machine, new_thread


def build(scheme_name="SP", n=8, depth=3):
    cpu, scheme = make_machine(n, scheme_name)
    tw = new_thread(scheme, 0)
    dispatch(cpu, scheme, None, tw)
    call_to_depth(cpu, tw, depth)
    return cpu, scheme, tw


def check(cpu, scheme):
    check_invariants(cpu, scheme, scheme.threads.values())


class TestDetectsCorruption:
    def test_clean_state_passes(self):
        cpu, scheme, tw = build()
        check(cpu, scheme)

    def test_map_frame_mismatch(self):
        cpu, scheme, tw = build()
        cpu.map.set_free(tw.cwp)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_prw_map_mismatch(self):
        cpu, scheme, tw = build("SP")
        cpu.map.set_reserved(tw.prw, tid=99)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_prw_without_frames(self):
        cpu, scheme, tw = build("SP")
        tw.resident = 0
        tw.cwp = tw.bottom = None
        tw.depth = len(tw.store)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_double_claim(self):
        cpu, scheme, t1 = build("SNP")
        t2 = new_thread(scheme, 1)
        t2.cwp = t1.cwp
        t2.bottom = t1.cwp
        t2.resident = 1
        t2.depth = 1
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_unclaimed_occupied_window(self):
        cpu, scheme, tw = build("SNP")
        free = cpu.map.find_free()
        cpu.map.set_frame(free, 42)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_hardware_cwp_desync(self):
        cpu, scheme, tw = build("SP")
        cpu.wf.cwp = cpu.wf.below(cpu.wf.cwp)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_wim_corruption_on_running_thread(self):
        cpu, scheme, tw = build("SNP")
        cpu.wf.mark_invalid(tw.cwp)
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)

    def test_stored_depth_gap(self):
        cpu, scheme, tw = build("SP", n=5, depth=8)
        assert tw.store
        tw.store.frames[0].depth = 5
        with pytest.raises(WindowGeometryError):
            check(cpu, scheme)


class TestFailureContext:
    """Every violation carries machine-readable context (the crash
    bundle serialises it, the CLI renders it as a [k=v] suffix)."""

    def test_map_frame_mismatch_context(self):
        cpu, scheme, tw = build()
        cpu.map.set_free(tw.cwp)
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        err = info.value
        assert err.context["window"] == tw.cwp
        assert err.context["thread"] == tw.tid
        assert err.context["map_kind"] == "free"

    def test_double_claim_context(self):
        cpu, scheme, t1 = build("SNP")
        t2 = new_thread(scheme, 1)
        t2.cwp = t1.cwp
        t2.bottom = t1.cwp
        t2.resident = 1
        t2.depth = 1
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        err = info.value
        assert err.context["window"] == t1.cwp
        assert "thread" in err.context
        assert "claimed_by" in err.context

    def test_hardware_cwp_desync_context(self):
        cpu, scheme, tw = build("SP")
        cpu.wf.cwp = cpu.wf.below(cpu.wf.cwp)
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        err = info.value
        assert err.context["thread"] == tw.tid
        assert err.context["hardware_cwp"] == cpu.wf.cwp
        assert err.context["thread_cwp"] == tw.cwp

    def test_wim_corruption_context(self):
        cpu, scheme, tw = build("SNP")
        cpu.wf.mark_invalid(tw.cwp)
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        err = info.value
        assert err.context == {"thread": tw.tid, "window": tw.cwp}

    def test_stored_depth_gap_context(self):
        cpu, scheme, tw = build("SP", n=5, depth=8)
        tw.store.frames[0].depth = 5
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        err = info.value
        assert err.context["thread"] == tw.tid
        assert err.context["frame"] == 0
        assert err.context["depth"] == 5
        assert err.context["expected_depth"] == 1

    def test_context_is_rendered_in_str(self):
        cpu, scheme, tw = build("SP")
        cpu.wf.cwp = cpu.wf.below(cpu.wf.cwp)
        with pytest.raises(WindowGeometryError) as info:
            check(cpu, scheme)
        text = str(info.value)
        assert text.endswith("]") and "[" in text
        assert "hardware_cwp=" in text
        assert "thread=%d" % tw.tid in text
