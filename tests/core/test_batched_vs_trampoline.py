"""Differential equivalence harness: batched core vs the reference loop.

The run-until-event core (``core="batched"``) must be *bit-identical*
to the step-granular reference trampoline (the retired "generator"
core, reachable only through ``tests.support.trampoline``): same step
counts, same counters (including the switch/trap cycle sums and
transfer histograms), same per-thread statistics, same trace record
sequences, same thread results — across every scheme and window-file
size.  The batched core itself has two *backends* — the pure-Python
loop and the optional compiled twin (:mod:`repro._fast`) — and every
comparison here runs on each backend that is built, so the compiled
path is pinned against the same reference.  This suite drives every
(core, backend) variant over the same workloads and compares full run
snapshots:

* deterministic synthetic apps (stream pipeline, spawn/join tree,
  line-oriented protocol) over NS/SNP/SP x {8, 32} windows;
* hypothesis-generated random programs (random thread counts, stream
  topologies, call depths, chunk sizes) — deadlocks count as agreement
  when both cores report the identical deadlock;
* golden pins for the spellchecker and a synthetic app, so a
  regression that changes *both* cores in lockstep still trips.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Call,
    CloseStream,
    Join,
    Read,
    ReadLine,
    Spawn,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.backend import compiled_available
from tests.support.trampoline import force_trampoline, make_kernel

SCHEMES = ("NS", "SNP", "SP")
WINDOW_SIZES = (8, 32)
#: execution backends of the batched core to pin against the reference
BACKENDS = ("pure",) + (("compiled",) if compiled_available() else ())
#: every (core, backend) execution variant under test
VARIANTS = (("generator", "pure"),) + tuple(
    ("batched", backend) for backend in BACKENDS)

COUNTER_FIELDS = (
    "saves", "restores", "overflow_traps", "underflow_traps",
    "windows_spilled", "windows_restored", "context_switches",
    "compute_cycles", "call_cycles", "trap_cycles", "switch_cycles",
)


def snapshot(kernel, result, error):
    """Everything observable about a finished (or crashed) run."""
    c = kernel.counters
    snap = {
        "error": (type(error).__name__, str(error)) if error else None,
        "steps": kernel._steps,
        "counters": {f: getattr(c, f) for f in COUNTER_FIELDS},
        "transfer_hist": dict(c.switch_transfer_hist),
        "switch_trace": list(c.switch_trace),
        "trap_trace": list(c.trap_trace),
        "per_thread": [
            (t.name, t.state, t.calls, t.returns, t.blocks,
             t.windows.stat_saves, t.windows.stat_restores,
             t.windows.stat_switches, t.result)
            for t in kernel.threads
        ],
    }
    if result is not None:
        snap["result_steps"] = result.steps
        snap["slackness"] = list(result.slackness_samples)
    return snap


def run_core(core, build, scheme, n_windows, keep_trace=True,
             backend="pure", **kw):
    """Build a workload on a fresh kernel and run it to the end."""
    kernel = make_kernel(core=core, n_windows=n_windows, scheme=scheme,
                         backend=backend, **kw)
    kernel.counters.keep_trace = keep_trace
    build(kernel)
    result = error = None
    try:
        result = kernel.run()
    except Exception as exc:
        # Deadlocks and runtime faults (e.g. a random program writing
        # to a stream a peer closed) are legal outcomes — both cores
        # must fail at the same point with the same enriched message.
        error = exc
    return snapshot(kernel, result, error)


def assert_equivalent(build, scheme, n_windows, **kw):
    gen = run_core("generator", build, scheme, n_windows, **kw)
    for backend in BACKENDS:
        bat = run_core("batched", build, scheme, n_windows,
                       backend=backend, **kw)
        assert gen == bat, _diff(gen, bat, backend)


def _diff(gen, bat, backend):
    lines = ["cores diverged (batched backend: %s):" % backend]
    for key in gen:
        if gen[key] != bat[key]:
            lines.append("  %s:" % key)
            lines.append("    reference: %r" % (gen[key],))
            lines.append("    batched:   %r" % (bat[key],))
    return "\n".join(lines)


# -- deterministic synthetic workloads -----------------------------------


def depth_calls(depth):
    if depth <= 0:
        yield Tick(1)
        return 0
    below = yield Call(depth_calls, depth - 1)
    yield Tick(1)
    return below + 1


def build_pipeline(kernel):
    """producer -> filter -> consumer over two bounded streams, with
    call-depth excursions deep enough to trap on an 8-window file."""
    raw = kernel.stream(16, "raw")
    cooked = kernel.stream(8, "cooked")

    def producer():
        rng = random.Random(1234)
        for i in range(40):
            chunk = bytes(rng.randrange(256) for __ in range(
                rng.randrange(1, 24)))
            yield Write(raw, chunk)
            if i % 7 == 0:
                yield Call(depth_calls, 6)
        yield CloseStream(raw)
        return "produced"

    def filt():
        total = 0
        while True:
            data = yield Read(raw, 13)
            if not data:
                break
            total += len(data)
            yield Write(cooked, bytes(b ^ 0x5A for b in data))
            yield Tick(2)
        yield CloseStream(cooked)
        return total

    def consumer():
        seen = bytearray()
        while True:
            data = yield Read(cooked, 5)
            if not data:
                break
            seen.extend(data)
            yield Call(depth_calls, 4)
        return bytes(seen)

    kernel.spawn(producer, name="producer")
    kernel.spawn(filt, name="filter")
    kernel.spawn(consumer, name="consumer")


def build_spawn_tree(kernel):
    """A root that spawns workers mid-run and joins them in order."""

    def worker(tag, rounds):
        acc = 0
        for i in range(rounds):
            acc += yield Call(depth_calls, 3 + (i % 3))
            yield YieldCPU()
        return (tag, acc)

    def root():
        kids = []
        for i in range(4):
            kid = yield Spawn(worker, i, 3 + i, name="kid-%d" % i)
            kids.append(kid)
            yield Tick(1)
        results = []
        for kid in kids:
            results.append((yield Join(kid)))
        return results

    kernel.spawn(root, name="root")


def build_line_protocol(kernel):
    """readline-driven request/response with a close mid-stream."""
    req = kernel.stream(12, "req")
    rsp = kernel.stream(12, "rsp")

    def client():
        for i in range(9):
            yield Write(req, b"req-%d\n" % i)
            line = yield ReadLine(rsp)
            assert line == b"ok-%d\n" % i
        yield CloseStream(req)
        tail = yield ReadLine(rsp)
        return tail

    def server():
        n = 0
        while True:
            line = yield ReadLine(req)
            if not line:
                break
            yield Call(depth_calls, 5)
            yield Write(rsp, b"ok-%d\n" % n)
            n += 1
        yield Write(rsp, b"bye\n")
        yield CloseStream(rsp)
        return n

    kernel.spawn(client, name="client")
    kernel.spawn(server, name="server")


WORKLOADS = {
    "pipeline": build_pipeline,
    "spawn_tree": build_spawn_tree,
    "line_protocol": build_line_protocol,
}


@pytest.mark.parametrize("n_windows", WINDOW_SIZES)
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_synthetic_workloads_bit_identical(workload, scheme, n_windows):
    assert_equivalent(WORKLOADS[workload], scheme, n_windows)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_register_verification_on(scheme):
    """verify_registers exercises the save/restore data paths too."""
    assert_equivalent(build_pipeline, scheme, 8, verify_registers=True)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_event_bus_traces_identical(scheme):
    """With a live event-bus subscriber both cores take the
    step-granular path; the recorded event streams must still match
    exactly under ``core="batched"`` on every backend."""

    def run_traced(core, backend="pure"):
        kernel = make_kernel(core=core, n_windows=8, scheme=scheme,
                             backend=backend)
        recorder = kernel.enable_tracing()
        build_pipeline(kernel)
        kernel.run()
        return [(e.kind, e.cycle, e.tid, e.attrs) for e in recorder]

    reference = run_traced("generator")
    for backend in BACKENDS:
        assert reference == run_traced("batched", backend)


# -- hypothesis-driven random programs -----------------------------------


ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.integers(1, 4)),
        st.tuples(st.just("call"), st.integers(1, 9)),
        st.tuples(st.just("write"), st.integers(0, 2), st.integers(1, 20)),
        st.tuples(st.just("read"), st.integers(0, 2), st.integers(1, 20)),
        st.tuples(st.just("readline"), st.integers(0, 2)),
        st.tuples(st.just("close"), st.integers(0, 2)),
        st.tuples(st.just("yield")),
    ),
    min_size=1, max_size=12,
)

PROGRAMS = st.lists(ACTIONS, min_size=1, max_size=4)


def build_random(threads_spec, close_all):
    """A builder closure for one drawn program."""

    def build(kernel):
        streams = [kernel.stream(cap, "s%d" % i)
                   for i, cap in enumerate((6, 16, 3))]

        def run_actions(actions, tag):
            def body():
                out = []
                for step, action in enumerate(actions):
                    kind = action[0]
                    if kind == "tick":
                        yield Tick(action[1])
                    elif kind == "call":
                        out.append((yield Call(depth_calls, action[1])))
                    elif kind == "write":
                        payload = (b"%d:%d;" % (tag, step)) * (
                            1 + action[2] // 8)
                        yield Write(streams[action[1]], payload)
                    elif kind == "read":
                        out.append((yield Read(streams[action[1]],
                                               action[2])))
                    elif kind == "readline":
                        out.append((yield ReadLine(streams[action[1]])))
                    elif kind == "close":
                        yield CloseStream(streams[action[1]])
                    elif kind == "yield":
                        yield YieldCPU()
                if close_all:
                    for stream in streams:
                        if not stream.closed:
                            yield CloseStream(stream)
                return out

            return body

        for i, actions in enumerate(threads_spec):
            kernel.spawn(run_actions(actions, i), name="t%d" % i)

    return build


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(threads_spec=PROGRAMS, scheme=st.sampled_from(SCHEMES),
       n_windows=st.sampled_from(WINDOW_SIZES),
       close_all=st.booleans())
def test_random_programs_bit_identical(threads_spec, scheme, n_windows,
                                       close_all):
    assert_equivalent(build_random(threads_spec, close_all),
                      scheme, n_windows)


# -- golden pins ---------------------------------------------------------
#
# These freeze absolute numbers, not just cross-core agreement: a
# change that alters the simulation semantics of *both* cores in
# lockstep (so the differential comparison stays green) still fails
# here.  Regenerate deliberately if the cost model or workloads change.


GOLDEN_PIPELINE = {
    # scheme -> (steps, context_switches, saves, restores, total_cycles)
    "NS": (2232, 149, 607, 607, 24268),
    "SNP": (2232, 149, 607, 607, 31328),
    "SP": (2232, 149, 607, 607, 30196),
}


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("core,backend", VARIANTS)
def test_golden_pipeline_pins(scheme, core, backend):
    snap = run_core(core, build_pipeline, scheme, 8, backend=backend)
    counters = snap["counters"]
    total = (counters["compute_cycles"] + counters["call_cycles"]
             + counters["trap_cycles"] + counters["switch_cycles"])
    observed = (snap["steps"], counters["context_switches"],
                counters["saves"], counters["restores"], total)
    assert observed == GOLDEN_PIPELINE[scheme]


GOLDEN_SPELLCHECK = {
    # scheme -> (steps, context_switches)
    "NS": (15644, 1631),
    "SNP": (15644, 1631),
    "SP": (15644, 1631),
}


def run_spell(scheme, n_windows, config, core, backend):
    """``run_spellchecker`` on one (core, backend) execution variant.

    The reference variant rides the ``instrument`` hook: the pipeline
    builds a batched kernel and the hook pins it to the step-granular
    trampoline before any thread spawns.
    """
    from repro.apps.spellcheck.pipeline import run_spellchecker

    instrument = force_trampoline if core == "generator" else None
    return run_spellchecker(
        n_windows, scheme, config, backend=backend,
        instrument=instrument)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("core,backend", VARIANTS)
def test_golden_spellcheck_pins(scheme, core, backend):
    from repro.apps.spellcheck.pipeline import SpellConfig

    config = SpellConfig.named("low", "medium", scale=0.05)
    result, output = run_spell(scheme, 8, config, core, backend)
    assert (result.steps,
            result.counters.context_switches) == GOLDEN_SPELLCHECK[scheme]
    assert output  # the pipeline actually produced corrections


@pytest.mark.parametrize("n_windows", WINDOW_SIZES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_spellcheck_bit_identical(scheme, n_windows):
    from repro.apps.spellcheck.pipeline import SpellConfig

    config = SpellConfig.named("high", "medium", scale=0.05)
    runs = {}
    for core, backend in VARIANTS:
        result, output = run_spell(scheme, n_windows, config, core, backend)
        c = result.counters
        runs[core, backend] = (
            result.steps, output,
            {f: getattr(c, f) for f in COUNTER_FIELDS},
            dict(c.switch_transfer_hist),
            sorted((t.name, t.windows.stat_saves, t.windows.stat_restores,
                    t.windows.stat_switches) for t in result.threads),
        )
    reference = runs["generator", "pure"]
    for backend in BACKENDS:
        assert runs["batched", backend] == reference, backend
