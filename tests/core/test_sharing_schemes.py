"""Trap-level tests of the SNP and SP sharing schemes: the in-place
underflow restore (§3.2, Figure 8), bottom-only spilling (§3.1), PRW
handling (§4.1) and windowless allocation (§4.2)."""

import pytest

from tests.helpers import (
    call,
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    ret,
    ret_to_depth,
    verify,
)

SHARING = ["SNP", "SP"]


class TestInPlaceUnderflow:
    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_cwp_does_not_move(self, scheme_name):
        """§3.2: the caller is restored into the callee's window; the
        CWP virtually moves down without physical motion."""
        cpu, scheme = make_machine(5, scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 8)  # forces spills
        ret_to_depth(cpu, tw, tw.depth - tw.resident + 1)  # plain rets
        assert tw.resident == 1
        cwp_before = cpu.wf.cwp
        ret(cpu, tw)  # must underflow
        assert cpu.counters.underflow_traps >= 1
        assert cpu.wf.cwp == cwp_before
        assert tw.bottom == cwp_before
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_underflow_never_spills(self, scheme_name):
        """The whole point of the algorithm: no spillage at underflow,
        so other threads' windows are never disturbed (§3.1)."""
        cpu, scheme = make_machine(6, scheme_name)
        cpu.counters.keep_trace = True
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 10)
        ret_to_depth(cpu, t2, 1)
        spilled_by_underflow = [
            rec for rec in cpu.counters.trap_trace
            if rec.kind == "underflow" and rec.spilled]
        assert spilled_by_underflow == []
        # t1's store gained nothing from t2's underflows (only from
        # t2's growth overflows, which spill from the bottom).
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_return_values_cross_inplace_restore(self, scheme_name):
        cpu, scheme = make_machine(4 if scheme_name == "SNP" else 5,
                                   scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 10)
        for d in range(10, 1, -1):
            got = ret(cpu, tw, value=("ret", d))
            assert got == ("ret", d)
        assert tw.depth == 1
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_deep_oscillation(self, scheme_name):
        """Repeated call/return across the residency boundary."""
        cpu, scheme = make_machine(5, scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 6)
        for __ in range(10):
            ret(cpu, tw)
            call(cpu, tw)
        ret_to_depth(cpu, tw, 1)
        assert tw.depth == 1
        verify(cpu, scheme)


class TestOverflowSpillsBottoms:
    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_victim_is_other_threads_bottom(self, scheme_name):
        cpu, scheme = make_machine(8, scheme_name)
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 3)
        t1_bottom = t1.bottom
        t1_top = t1.cwp
        dispatch(cpu, scheme, t1, t2)
        # grow t2 until it steals a window from t1
        while t1.resident == 3:
            call(cpu, t2)
        assert t1.resident == 2
        assert len(t1.store) == 1
        assert t1.store.peek().depth == 1      # the OUTERMOST frame
        assert t1.cwp == t1_top                # top untouched (§3.1 #2)
        assert t1.bottom == cpu.wf.above(t1_bottom)
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_own_bottom_spills_when_alone(self, scheme_name):
        cpu, scheme = make_machine(5, scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 12)
        assert len(tw.store) == 12 - tw.resident
        assert cpu.counters.overflow_traps >= 12 - tw.resident
        verify(cpu, scheme)

    @pytest.mark.parametrize("scheme_name", SHARING)
    def test_overflow_into_free_window_transfers_nothing(self, scheme_name):
        """A freed window above the boundary is claimed without a
        spill (only WIM bookkeeping)."""
        cpu, scheme = make_machine(8, scheme_name)
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 4)
        dispatch(cpu, scheme, tw, tw2 := new_thread(scheme, 1))
        dispatch(cpu, scheme, tw2, tw)
        spills_before = cpu.counters.windows_spilled
        # tw returns twice (vacating windows) then calls again: the
        # vacated windows are re-entered without any trap at all.
        ret_to_depth(cpu, tw, 2)
        traps_before = cpu.counters.overflow_traps
        call_to_depth(cpu, tw, 4)
        assert cpu.counters.overflow_traps == traps_before
        assert cpu.counters.windows_spilled == spills_before
        verify(cpu, scheme)


class TestSNPSwitches:
    def test_resident_switch_costs_no_transfer(self):
        """Switching between threads whose windows are resident settles
        into the (0, 0) best case — after one adjustment switch that
        spills a single bottom window to re-site the global reserved
        window (the cost of not having PRWs, §4.1)."""
        cpu, scheme = make_machine(8, "SNP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 2)
        # warm-up switch (may or may not need a boundary re-site spill
        # depending on how the regions packed)
        dispatch(cpu, scheme, t2, t1)
        hist_before = dict(cpu.counters.transfer_histogram())
        dispatch(cpu, scheme, t1, t2)
        dispatch(cpu, scheme, t2, t1)
        dispatch(cpu, scheme, t1, t2)
        hist_after = cpu.counters.transfer_histogram()
        gained = {k: hist_after.get(k, 0) - hist_before.get(k, 0)
                  for k in hist_after
                  if hist_after.get(k, 0) != hist_before.get(k, 0)}
        assert gained == {(0, 0): 3}
        verify(cpu, scheme)

    def test_outs_saved_and_restored_across_switch(self):
        """§4.1: without a PRW, the stack-top outs must travel through
        the thread context."""
        cpu, scheme = make_machine(6, "SNP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        cpu.write_out(4, "keep-me")
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 3)
        cpu.write_out(4, "clobber")
        dispatch(cpu, scheme, t2, t1)
        assert cpu.read_out(4) == "keep-me"
        verify(cpu, scheme)

    def test_windowless_dispatch_uses_old_reserved(self):
        """§4.1: "only one window may have to be saved, because the
        old reserved window is available"."""
        cpu, scheme = make_machine(4, "SNP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 3)       # t1 fills all but the reserved
        old_reserved = scheme.reserved
        dispatch(cpu, scheme, t1, t2)   # t2 is windowless
        assert t2.cwp == old_reserved
        hist = cpu.counters.transfer_histogram()
        assert hist.get((1, 0)) == 1    # one spill for the new reserved
        verify(cpu, scheme)


class TestSPSwitches:
    def test_resident_switch_transfers_nothing_at_all(self):
        cpu, scheme = make_machine(10, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        cpu.write_out(3, "in-prw")
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 2)
        cost_before = cpu.counters.switch_cycles
        dispatch(cpu, scheme, t2, t1)
        cost = cpu.counters.switch_cycles - cost_before
        assert cost == cpu.cost.sp_switch_cost(0, 0, False)
        # the outs survived *physically*, inside the PRW
        assert cpu.read_out(3) == "in-prw"
        assert t1.saved_outs is None
        verify(cpu, scheme)

    def test_prw_snug_after_returns(self):
        """§4.1: on suspension, free windows above the stack-top are
        reclaimed by moving the PRW down (no data copied)."""
        cpu, scheme = make_machine(10, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 4)
        ret_to_depth(cpu, t1, 2)  # two vacated windows above the top
        old_prw = t1.prw
        dispatch(cpu, scheme, t1, t2)
        assert t1.prw == cpu.wf.above(t1.cwp)
        assert t1.prw != old_prw
        # the old PRW slot no longer belongs to t1 (it may already have
        # been reused for the incoming thread's allocation)
        assert cpu.map.tid(old_prw) != t1.tid
        verify(cpu, scheme)

    def test_windowless_dispatch_worst_case_two_saves(self):
        """Table 2's SP (2, 1) row: a windowless thread needs a frame
        window plus a PRW, each possibly requiring a spill."""
        cpu, scheme = make_machine(5, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 6)       # t1 owns every frame window
        dispatch(cpu, scheme, t1, t2)   # t2 fresh: needs 2 windows
        hist = cpu.counters.transfer_histogram()
        assert hist.get((2, 0)) == 1    # fresh thread: 2 saves, 0 restores
        call_to_depth(cpu, t2, 2)
        dispatch(cpu, scheme, t2, t1)   # t1 lost windows: restore case
        assert (t1.resident, len(t1.store) + t1.resident) == (1, 6)
        verify(cpu, scheme)

    def test_prw_freed_with_last_frame_and_outs_stashed(self):
        cpu, scheme = make_machine(5, "SP")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        cpu.write_out(2, "stash")
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 8)       # evicts every t1 window
        assert t1.resident == 0
        assert t1.prw is None
        assert t1.saved_outs is not None
        dispatch(cpu, scheme, t2, t1)
        assert cpu.read_out(2) == "stash"
        verify(cpu, scheme)


class TestRetire:
    @pytest.mark.parametrize("scheme_name", ["NS"] + SHARING)
    def test_retire_frees_everything(self, scheme_name):
        cpu, scheme = make_machine(8, scheme_name)
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 3)
        scheme.retire(t1)
        assert t1.resident == 0 and t1.prw is None and t1.depth == 0
        dispatch(cpu, scheme, None, t2)
        call_to_depth(cpu, t2, 5)
        verify(cpu, scheme)
