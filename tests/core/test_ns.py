"""Trap-level tests of the NS scheme: the basic algorithm of §2
(Figures 3 and 4) plus flush-everything context switches."""

import pytest

from tests.helpers import (
    call,
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    ret,
    ret_to_depth,
    verify,
)


class TestBasicTraps:
    def test_overflow_spills_own_bottom(self):
        """Figure 3: the stack-bottom window is saved and becomes the
        new reserved window."""
        cpu, scheme = make_machine(4, "NS")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 3)  # fills the n-1 usable windows
        assert cpu.counters.overflow_traps == 0
        old_bottom = tw.bottom
        call(cpu, tw)  # depth 4: must overflow
        assert cpu.counters.overflow_traps == 1
        assert cpu.counters.windows_spilled == 1
        assert len(tw.store) == 1
        assert tw.store.peek().depth == 1
        assert scheme.reserved == old_bottom
        assert tw.resident == 3
        verify(cpu, scheme)

    def test_underflow_restores_below_and_moves_reserved(self):
        """Figure 4: the missing window is restored below the CWP and
        the reserved window moves one further down."""
        cpu, scheme = make_machine(4, "NS")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 5)  # two frames spilled
        ret_to_depth(cpu, tw, 3)   # plain restores
        assert cpu.counters.underflow_traps == 0
        cwp_before = cpu.wf.cwp
        ret(cpu, tw)               # depth 2: must underflow
        assert cpu.counters.underflow_traps == 1
        # conventional restore physically moves the CWP downward
        assert cpu.wf.cwp == cpu.wf.below(cwp_before)
        assert scheme.reserved == cpu.wf.below(cpu.wf.cwp)
        assert tw.resident == 1
        verify(cpu, scheme)

    def test_deep_recursion_roundtrip_preserves_every_frame(self):
        cpu, scheme = make_machine(5, "NS")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 20)
        ret_to_depth(cpu, tw, 1)  # helpers assert signatures throughout
        assert tw.depth == 1
        assert cpu.counters.overflow_traps == 16
        assert cpu.counters.underflow_traps == 16
        verify(cpu, scheme)


class TestContextSwitch:
    def test_switch_flushes_all_active_windows(self):
        cpu, scheme = make_machine(8, "NS")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 4)
        dispatch(cpu, scheme, t1, t2)
        assert t1.resident == 0
        assert len(t1.store) == 4
        record = cpu.counters.switch_trace  # not kept by default
        hist = cpu.counters.transfer_histogram()
        assert hist.get((4, 0)) == 1  # t2 is fresh: 4 saves, no restore
        del record
        verify(cpu, scheme)

    def test_resume_restores_only_the_top_window(self):
        """§6.2: "more precisely the stack-top window is restored on
        the context switch" — deeper frames come back via underflow."""
        cpu, scheme = make_machine(8, "NS")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 4)
        dispatch(cpu, scheme, t1, t2)
        dispatch(cpu, scheme, t2, t1)
        assert t1.resident == 1
        assert t1.depth == 4
        assert len(t1.store) == 3
        traps_before = cpu.counters.underflow_traps
        ret(cpu, t1)  # hidden underflow cost of the NS scheme
        assert cpu.counters.underflow_traps == traps_before + 1
        verify(cpu, scheme)

    def test_outs_survive_switch_via_thread_context(self):
        cpu, scheme = make_machine(6, "NS")
        t1 = new_thread(scheme, 0)
        t2 = new_thread(scheme, 1)
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 2)
        cpu.write_out(5, "precious")
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 3)
        cpu.write_out(5, "other")
        dispatch(cpu, scheme, t2, t1)
        assert cpu.read_out(5) == "precious"
        verify(cpu, scheme)

    def test_switch_cost_grows_linearly_with_active_windows(self):
        costs = {}
        for depth in (1, 2, 3, 4, 5):
            cpu, scheme = make_machine(8, "NS")
            t1 = new_thread(scheme, 0)
            t2 = new_thread(scheme, 1)
            dispatch(cpu, scheme, None, t1)
            call_to_depth(cpu, t1, depth)
            before = cpu.counters.switch_cycles
            dispatch(cpu, scheme, t1, t2)
            costs[depth] = cpu.counters.switch_cycles - before
        deltas = [costs[d + 1] - costs[d] for d in (1, 2, 3, 4)]
        assert len(set(deltas)) == 1  # exactly linear
        assert deltas[0] == cpu.cost.ns_per_save

    def test_return_values_cross_conventional_underflow(self):
        cpu, scheme = make_machine(4, "NS")
        tw = new_thread(scheme, 0)
        dispatch(cpu, scheme, None, tw)
        call_to_depth(cpu, tw, 6)
        for expected_depth in (6, 5, 4, 3, 2):
            got = ret(cpu, tw, value=("v", expected_depth))
            assert got == ("v", expected_depth)
        verify(cpu, scheme)
