"""Unit tests for the free-run scanner behind the allocation policies."""

from repro.core.allocation import _longest_free_run
from repro.windows.occupancy import WindowMap


def make_map(n, frames=(), reserved=()):
    wmap = WindowMap(n)
    for w in frames:
        wmap.set_frame(w, tid=0)
    for w in reserved:
        wmap.set_reserved(w)
    return wmap


class TestLongestFreeRun:
    def test_all_free(self):
        end, length = _longest_free_run(make_map(6))
        assert length == 6

    def test_single_occupied_window(self):
        wmap = make_map(6, frames=[2])
        end, length = _longest_free_run(wmap)
        assert length == 5
        # the run's lower end is just above the occupied window,
        # wrapping: 1, 0, 5, 4, 3
        assert end == 1

    def test_two_runs_picks_longer(self):
        wmap = make_map(8, frames=[0, 5])
        # runs: 4..1 upward from 4 (length 4): 4,3,2,1 ; 7,6 (length 2)
        end, length = _longest_free_run(wmap)
        assert (end, length) == (4, 4)

    def test_no_free_windows(self):
        wmap = make_map(4, frames=[0, 1, 2], reserved=[3])
        end, length = _longest_free_run(wmap)
        assert length == 0

    def test_reserved_blocks_runs(self):
        wmap = make_map(6, frames=[0], reserved=[3])
        # free: 1, 2 and 4, 5 -> two runs of length 2; either is fine
        end, length = _longest_free_run(wmap)
        assert length == 2
        assert end in (2, 5)

    def test_lower_end_has_occupied_below(self):
        wmap = make_map(8, frames=[3])
        end, length = _longest_free_run(wmap)
        assert not wmap.is_free((end + 1) % 8) or length == 8
