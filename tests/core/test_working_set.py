"""The working-set scheduling policy (§4.6)."""

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.core.working_set import BACK, FIFOPolicy, FRONT, WorkingSetPolicy
from repro.windows.thread_windows import ThreadWindows


class TestPolicyUnit:
    def test_fifo_always_back(self):
        policy = FIFOPolicy()
        tw = ThreadWindows(0)
        assert policy.enqueue_position(tw) == BACK
        tw.cwp = tw.bottom = 2
        tw.resident = 1
        assert policy.enqueue_position(tw) == BACK

    def test_working_set_front_iff_windows_resident(self):
        policy = WorkingSetPolicy()
        tw = ThreadWindows(0)
        assert policy.enqueue_position(tw) == BACK
        tw.cwp = tw.bottom = 2
        tw.resident = 1
        assert policy.enqueue_position(tw) == FRONT

    def test_yield_position_stays_back(self):
        assert WorkingSetPolicy().yield_position(ThreadWindows(0)) == BACK


def _pipeline(policy, n_windows=6):
    """Three-stage pipeline with byte-sized buffers: plenty of wakeups."""
    k = Kernel(n_windows=n_windows, scheme="SP", queue_policy=policy)
    s1 = k.stream(1, "s1")
    s2 = k.stream(1, "s2")

    def source(s):
        for i in range(120):
            yield Write(s, bytes([i % 256]))
        yield CloseStream(s)
        return None

    def middle(a, b):
        while True:
            data = yield Read(a, 8)
            if not data:
                yield CloseStream(b)
                return None
            yield Call(_relay, b, data)

    def _relay(b, data):
        yield Tick(2)
        yield Write(b, data)
        return None

    def sink(s):
        total = 0
        while True:
            data = yield Read(s, 8)
            if not data:
                return total
            total += sum(data)

    k.spawn(source, s1, name="src")
    k.spawn(middle, s1, s2, name="mid")
    k.spawn(sink, s2, name="snk")
    return k


class TestPolicyIntegration:
    def test_same_results_either_policy(self):
        expected = sum(i % 256 for i in range(120))
        for policy in (FIFOPolicy(), WorkingSetPolicy()):
            result = _pipeline(policy).run()
            assert result.result_of("snk") == expected

    def test_working_set_reduces_transfers_when_windows_scarce(self):
        """With few windows the working-set queue keeps resident
        threads running, cutting window traffic (Figure 15)."""
        fifo = _pipeline(FIFOPolicy(), n_windows=5).run()
        wset = _pipeline(WorkingSetPolicy(), n_windows=5).run()
        fifo_moved = (fifo.counters.windows_spilled
                      + fifo.counters.windows_restored)
        wset_moved = (wset.counters.windows_spilled
                      + wset.counters.windows_restored)
        assert wset_moved <= fifo_moved

    def test_no_penalty_with_plentiful_windows(self):
        fifo = _pipeline(FIFOPolicy(), n_windows=16).run()
        wset = _pipeline(WorkingSetPolicy(), n_windows=16).run()
        assert (wset.counters.total_cycles
                <= fifo.counters.total_cycles * 1.05)
