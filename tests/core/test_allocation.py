"""Window-allocation policies (§4.2): simple, free-search, LRU-bottom."""

import pytest

from repro.core.allocation import (
    FreeSearchAllocation,
    LRUBottomAllocation,
    SimpleAllocation,
)
from tests.helpers import (
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    verify,
)


def _build_three_threads(scheme_name, n_windows, allocation):
    cpu, scheme = make_machine(n_windows, scheme_name,
                               allocation=allocation)
    threads = [new_thread(scheme, i) for i in range(3)]
    return cpu, scheme, threads


@pytest.mark.parametrize("scheme_name", ["SNP", "SP"])
class TestFreeSearch:
    def test_avoids_spilling_when_free_run_exists(self, scheme_name):
        """With plenty of free windows, a windowless dispatch must not
        evict anyone."""
        cpu, scheme, (t1, t2, t3) = _build_three_threads(
            scheme_name, 16, FreeSearchAllocation())
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 3)
        spilled_before = cpu.counters.windows_spilled
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 2)
        dispatch(cpu, scheme, t2, t3)
        assert cpu.counters.windows_spilled == spilled_before
        verify(cpu, scheme)

    def test_falls_back_to_simple_when_full(self, scheme_name):
        cpu, scheme, (t1, t2, t3) = _build_three_threads(
            scheme_name, 5, FreeSearchAllocation())
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 8)  # t1 owns all frame windows
        dispatch(cpu, scheme, t1, t2)
        assert t2.has_windows  # allocation still succeeded, via spills
        verify(cpu, scheme)


@pytest.mark.parametrize("scheme_name", ["SNP", "SP"])
class TestLRUBottom:
    def test_evicts_least_recently_dispatched(self, scheme_name):
        cpu, scheme, (t1, t2, t3) = _build_three_threads(
            scheme_name, 8, LRUBottomAllocation())
        dispatch(cpu, scheme, None, t1)
        call_to_depth(cpu, t1, 3)
        dispatch(cpu, scheme, t1, t2)
        call_to_depth(cpu, t2, 3)
        # File is now crowded; t3 must evict from t1 (the LRU), not t2.
        t2_store_before = len(t2.store)
        dispatch(cpu, scheme, t2, t3)
        assert len(t2.store) == t2_store_before
        verify(cpu, scheme)


class TestSimpleDefault:
    def test_simple_is_the_default(self):
        cpu, scheme = make_machine(6, "SNP")
        assert isinstance(scheme.allocation, SimpleAllocation)

    def test_policy_names(self):
        assert SimpleAllocation().name == "simple"
        assert FreeSearchAllocation().name == "free-search"
        assert LRUBottomAllocation().name == "lru-bottom"
