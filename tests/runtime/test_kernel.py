"""Kernel semantics: call/return through registers, blocking, yield,
deadlock detection, flush hints, readline, error cases."""

import pytest

from repro import (
    Call,
    CloseStream,
    DeadlockError,
    FlushHint,
    Kernel,
    Read,
    ReadLine,
    Tick,
    Write,
    YieldCPU,
)
from repro.runtime.errors import RuntimeFault


def test_return_value_travels_through_registers():
    def leaf():
        yield Tick(1)
        return ("payload", 42)

    def root():
        value = yield Call(leaf)
        return value

    k = Kernel(n_windows=4, scheme="SNP")
    k.spawn(root, name="r")
    assert k.run().result_of("r") == ("payload", 42)


def test_arguments_travel_through_registers():
    def leaf(a, b, c):
        yield Tick(1)
        return a + b + c

    def root():
        return (yield Call(leaf, 1, 2, 3))

    k = Kernel(n_windows=4, scheme="SP")
    k.spawn(root, name="r")
    assert k.run().result_of("r") == 6


def test_deadlock_detected():
    def reader(stream):
        yield Read(stream, 1)
        return None

    k = Kernel(n_windows=4, scheme="SP")
    s = k.stream(1, "lonely")
    k.spawn(reader, s, name="r")
    with pytest.raises(DeadlockError) as err:
        k.run()
    assert "lonely" in str(err.value)


def test_mutual_deadlock_detected():
    def a_thread(s_in, s_out):
        yield Read(s_in, 1)
        yield Write(s_out, b"x")
        return None

    k = Kernel(n_windows=6, scheme="SNP")
    s1, s2 = k.stream(1, "s1"), k.stream(1, "s2")
    k.spawn(a_thread, s1, s2, name="a")
    k.spawn(a_thread, s2, s1, name="b")
    with pytest.raises(DeadlockError):
        k.run()


def test_yield_cpu_round_robins():
    order = []

    def worker(tag, rounds):
        for __ in range(rounds):
            order.append(tag)
            yield YieldCPU()
        return tag

    k = Kernel(n_windows=8, scheme="SP")
    k.spawn(worker, "a", 3, name="a")
    k.spawn(worker, "b", 3, name="b")
    k.run()
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_yield_with_empty_queue_continues():
    def worker():
        yield YieldCPU()
        yield YieldCPU()
        return "done"

    k = Kernel(n_windows=4, scheme="NS")
    k.spawn(worker, name="w")
    result = k.run()
    assert result.result_of("w") == "done"
    # no one else to run: yields are free, only the initial dispatch
    assert result.counters.context_switches == 1


def test_readline_op():
    def producer(s):
        yield Write(s, b"one\ntwo\n")
        yield CloseStream(s)
        return None

    def consumer(s):
        lines = []
        while True:
            line = yield ReadLine(s)
            if not line:
                return lines
            lines.append(line)

    k = Kernel(n_windows=6, scheme="SP")
    s = k.stream(16, "s")
    k.spawn(producer, s, name="p")
    k.spawn(consumer, s, name="c")
    assert k.run().result_of("c") == [b"one\n", b"two\n"]


def test_readline_longer_than_capacity_is_loud():
    def producer(s):
        yield Write(s, b"0123456789")
        return None

    def consumer(s):
        return (yield ReadLine(s))

    k = Kernel(n_windows=6, scheme="SP")
    s = k.stream(4, "s")
    k.spawn(producer, s, name="p")
    k.spawn(consumer, s, name="c")
    with pytest.raises(RuntimeFault):
        k.run()


def test_unknown_yield_value_is_loud():
    def bad():
        yield "not-an-op"

    k = Kernel(n_windows=4, scheme="SP")
    k.spawn(bad, name="bad")
    with pytest.raises(RuntimeFault):
        k.run()


def test_spawn_after_run_rejected():
    def worker():
        yield Tick(1)
        return None

    k = Kernel(n_windows=4, scheme="SP")
    k.spawn(worker, name="w")
    k.run()
    with pytest.raises(RuntimeFault):
        k.spawn(worker, name="late")


def test_flush_hint_flushes_windows_on_switch():
    def sleeper(s):
        yield Call(_one_level, s)
        return None

    def _one_level(s):
        yield FlushHint(True)
        data = yield Read(s, 4)  # blocks; windows flushed at switch
        return data

    def waker(s):
        yield Tick(5)
        yield Write(s, b"go")
        yield CloseStream(s)
        return None

    k = Kernel(n_windows=8, scheme="SP")
    s = k.stream(4, "s")
    sleeper_thread = k.spawn(sleeper, s, name="sleeper")
    k.spawn(waker, s, name="waker")
    result = k.run()
    assert result.counters.windows_spilled >= 2
    assert sleeper_thread.windows.depth == 0  # retired cleanly


def test_step_budget_enforced():
    def spinner():
        while True:
            yield Tick(1)

    k = Kernel(n_windows=4, scheme="SP")
    k.spawn(spinner, name="s")
    with pytest.raises(RuntimeFault):
        k.run(max_steps=1000)


def test_blocked_writer_resumes_and_finishes():
    def producer(s):
        yield Write(s, bytes(range(100)))
        yield CloseStream(s)
        return "produced"

    def consumer(s):
        got = bytearray()
        while True:
            data = yield Read(s, 7)
            if not data:
                return bytes(got)
            got.extend(data)

    k = Kernel(n_windows=5, scheme="SNP")
    s = k.stream(3, "s")
    k.spawn(producer, s, name="p")
    k.spawn(consumer, s, name="c")
    result = k.run()
    assert result.result_of("c") == bytes(range(100))


def test_thread_stats_recorded():
    def leaf():
        yield Tick(1)
        return 1

    def root(s):
        yield Call(leaf)
        yield Write(s, b"xx")
        yield Call(leaf)
        yield CloseStream(s)
        return None

    def drain(s):
        while True:
            if not (yield Read(s, 1)):
                return None

    k = Kernel(n_windows=6, scheme="SP")
    s = k.stream(1, "s")
    p = k.spawn(root, s, name="p")
    k.spawn(drain, s, name="d")
    k.run()
    assert p.calls == 2
    assert p.returns == 2
    assert p.blocks >= 1
