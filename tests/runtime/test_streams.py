"""Unit tests for the bounded FIFO streams."""

import pytest

from repro.runtime.streams import Stream, StreamClosedError


class TestCapacity:
    def test_push_respects_capacity(self):
        s = Stream(4)
        assert s.push(b"abcdef") == 4
        assert s.is_full
        assert s.push(b"x") == 0

    def test_pull_respects_available(self):
        s = Stream(4)
        s.push(b"ab")
        assert s.pull(10) == b"ab"
        assert s.pull(10) == b""

    def test_fifo_order(self):
        s = Stream(8)
        s.push(b"abc")
        s.push(b"def")
        assert s.pull(2) == b"ab"
        assert s.pull(10) == b"cdef"

    def test_space_tracking(self):
        s = Stream(5)
        s.push(b"abc")
        assert s.space == 2
        s.pull(1)
        assert s.space == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Stream(0)

    def test_byte_counters(self):
        s = Stream(4)
        s.push(b"abcd")
        s.pull(2)
        s.push(b"ef")
        assert s.bytes_written == 6
        assert s.bytes_read == 2


class TestClose:
    def test_write_after_close_raises(self):
        s = Stream(4)
        s.close()
        with pytest.raises(StreamClosedError):
            s.push(b"a")

    def test_eof_only_when_closed_and_empty(self):
        s = Stream(4)
        s.push(b"a")
        s.close()
        assert not s.at_eof
        s.pull(1)
        assert s.at_eof


class TestLines:
    def test_pull_line_complete(self):
        s = Stream(16)
        s.push(b"hello\nworld\n")
        assert s.pull_line() == b"hello\n"
        assert s.pull_line() == b"world\n"
        assert s.pull_line() is None

    def test_pull_line_partial_waits(self):
        s = Stream(16)
        s.push(b"hel")
        assert s.pull_line() is None
        assert not s.has_line()
        s.push(b"lo\n")
        assert s.has_line()
        assert s.pull_line() == b"hello\n"

    def test_residue_counts_as_line_at_eof(self):
        s = Stream(16)
        s.push(b"tail")
        s.close()
        assert s.has_line()
        assert s.pull_line() == b"tail"
