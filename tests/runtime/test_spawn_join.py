"""Dynamic thread creation (Spawn) and completion waiting (Join)."""

import pytest

from repro import Call, Join, Kernel, Spawn, Tick
from repro.runtime.errors import DeadlockError, RuntimeFault


def worker(n):
    yield Tick(n)
    return n * n


def test_spawn_and_join():
    def parent():
        child = yield Spawn(worker, 7, name="child")
        result = yield Join(child)
        return result

    k = Kernel(n_windows=8, scheme="SP")
    k.spawn(parent, name="parent")
    result = k.run()
    assert result.result_of("parent") == 49
    assert result.result_of("child") == 49


def test_join_already_finished_thread():
    def parent():
        child = yield Spawn(worker, 3, name="child")
        yield Tick(1)
        # let the child run to completion first
        for __ in range(3):
            from repro.runtime.ops import YieldCPU
            yield YieldCPU()
        result = yield Join(child)
        return result

    k = Kernel(n_windows=8, scheme="SNP")
    k.spawn(parent, name="parent")
    assert k.run().result_of("parent") == 9


def test_fan_out_fan_in():
    def parent(n):
        children = []
        for i in range(n):
            children.append((yield Spawn(worker, i, name="w%d" % i)))
        total = 0
        for child in children:
            total += yield Join(child)
        return total

    for scheme in ("NS", "SNP", "SP"):
        k = Kernel(n_windows=6, scheme=scheme)
        k.spawn(parent, 6, name="parent")
        result = k.run(max_steps=200_000)
        assert result.result_of("parent") == sum(i * i for i in range(6))


def test_nested_spawns():
    def grandchild():
        yield Tick(1)
        return "leaf"

    def child():
        g = yield Spawn(grandchild, name="g")
        value = yield Join(g)
        return "child:" + value

    def root():
        c = yield Spawn(child, name="c")
        return (yield Join(c))

    k = Kernel(n_windows=8, scheme="SP")
    k.spawn(root, name="root")
    assert k.run().result_of("root") == "child:leaf"


def test_spawned_thread_does_procedure_calls():
    def deep(n):
        yield Tick(1)
        if n == 0:
            return 0
        return (yield Call(deep, n - 1)) + 1

    def spawned():
        return (yield Call(deep, 15))

    def root():
        t = yield Spawn(spawned, name="s")
        return (yield Join(t))

    k = Kernel(n_windows=5, scheme="SNP")
    k.spawn(root, name="root")
    result = k.run(max_steps=100_000)
    assert result.result_of("root") == 15
    assert result.counters.overflow_traps > 0


def test_join_self_rejected():
    captured = {}

    def selfish():
        captured["me"] = me = k.threads[0]
        yield Join(me)

    k = Kernel(n_windows=6, scheme="SP")
    k.spawn(selfish, name="selfish")
    with pytest.raises(RuntimeFault):
        k.run()


def test_join_deadlock_cycle_detected():
    def a_thread():
        yield Tick(1)
        return (yield Join(threads["b"]))

    def b_thread():
        yield Tick(1)
        return (yield Join(threads["a"]))

    k = Kernel(n_windows=6, scheme="SP")
    threads = {
        "a": k.spawn(a_thread, name="a"),
        "b": k.spawn(b_thread, name="b"),
    }
    with pytest.raises(DeadlockError):
        k.run()


def test_multiple_joiners_all_wake():
    def waiter(target):
        return (yield Join(target))

    def slow():
        yield Tick(100)
        return "done"

    k = Kernel(n_windows=10, scheme="SP")
    target = k.spawn(slow, name="slow")
    k.spawn(waiter, target, name="w1")
    k.spawn(waiter, target, name="w2")
    result = k.run()
    assert result.result_of("w1") == "done"
    assert result.result_of("w2") == "done"
