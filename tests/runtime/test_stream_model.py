"""Model-based stream test: the bounded cyclic buffer must behave like
a plain byte queue with a capacity limit (hypothesis-driven)."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.streams import Stream

# operations: ("push", bytes) | ("pull", n) | ("pull_line",)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.binary(min_size=1, max_size=12)),
        st.tuples(st.just("pull"), st.integers(1, 12)),
        st.tuples(st.just("pull_line")),
    ),
    max_size=60)


@settings(max_examples=120, deadline=None)
@given(capacity=st.integers(1, 16), ops=ops_strategy)
def test_stream_matches_reference_queue(capacity, ops):
    stream = Stream(capacity, "model")
    model = deque()

    for op in ops:
        if op[0] == "push":
            data = op[1]
            accepted = stream.push(data)
            space = capacity - len(model)
            assert accepted == min(space, len(data))
            model.extend(data[:accepted])
        elif op[0] == "pull":
            got = stream.pull(op[1])
            expected = bytes(model[i] for i in range(
                min(op[1], len(model))))
            assert got == expected
            for __ in range(len(got)):
                model.popleft()
        else:  # pull_line
            buffered = bytes(model)
            idx = buffered.find(b"\n")
            got = stream.pull_line()
            if idx < 0:
                assert got is None
            else:
                assert got == buffered[:idx + 1]
                for __ in range(idx + 1):
                    model.popleft()
        assert len(stream) == len(model)
        assert stream.is_full == (len(model) == capacity)
        assert stream.is_empty == (not model)


@settings(max_examples=60, deadline=None)
@given(chunks=st.lists(st.binary(min_size=0, max_size=6), max_size=20),
       capacity=st.integers(1, 8))
def test_byte_accounting(chunks, capacity):
    stream = Stream(capacity)
    written = 0
    read = 0
    for chunk in chunks:
        written += stream.push(chunk)
        read += len(stream.pull(capacity))
    read += len(stream.pull(capacity))
    assert stream.bytes_written == written
    assert stream.bytes_read == read
    assert written == read
