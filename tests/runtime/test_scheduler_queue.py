"""ReadyQueue mechanics and slackness sampling."""

from repro.core.working_set import FIFOPolicy, WorkingSetPolicy
from repro.runtime.scheduler import ReadyQueue
from repro.runtime.thread import READY, SimThread


def make_thread(tid, with_windows=False):
    thread = SimThread(tid, "t%d" % tid, None)
    if with_windows:
        thread.windows.cwp = thread.windows.bottom = tid
        thread.windows.resident = 1
        thread.windows.depth = 1
    return thread


class TestReadyQueue:
    def test_fifo_order(self):
        q = ReadyQueue(FIFOPolicy())
        a, b, c = (make_thread(i) for i in range(3))
        q.push_new(a)
        q.push_new(b)
        q.push_woken(c)
        assert [q.pop() for __ in range(3)] == [a, b, c]

    def test_working_set_front_when_windows(self):
        q = ReadyQueue(WorkingSetPolicy())
        a = make_thread(0)
        b = make_thread(1, with_windows=True)
        c = make_thread(2)
        q.push_new(a)
        q.push_woken(c)   # no windows: back
        q.push_woken(b)   # windows: front
        assert q.pop() is b
        assert q.pop() is a
        assert q.pop() is c

    def test_new_threads_always_back_even_with_working_set(self):
        q = ReadyQueue(WorkingSetPolicy())
        a = make_thread(0)
        b = make_thread(1, with_windows=True)
        q.push_new(a)
        q.push_new(b)
        assert q.pop() is a

    def test_yield_goes_back(self):
        q = ReadyQueue(WorkingSetPolicy())
        a = make_thread(0, with_windows=True)
        b = make_thread(1)
        q.push_new(b)
        q.push_yielded(a)
        assert q.pop() is b

    def test_push_sets_ready_state(self):
        q = ReadyQueue()
        a = make_thread(0)
        q.push_new(a)
        assert a.state == READY

    def test_len_and_bool(self):
        q = ReadyQueue()
        assert not q and len(q) == 0
        q.push_new(make_thread(0))
        assert q and len(q) == 1

    def test_remove(self):
        q = ReadyQueue()
        a, b = make_thread(0), make_thread(1)
        q.push_new(a)
        q.push_new(b)
        q.remove(a)
        assert q.peek_all() == [b]

    def test_slackness_sampling(self):
        q = ReadyQueue()
        q.sample_slackness = True
        for i in range(3):
            q.push_new(make_thread(i))
        q.pop()
        q.pop()
        assert q.slackness_samples == [2, 1]

    def test_no_sampling_by_default(self):
        q = ReadyQueue()
        q.push_new(make_thread(0))
        q.pop()
        assert q.slackness_samples == []
