"""Batch-exit edge cases: both cores must agree at the boundaries.

The run-until-event core leaves a batch only on block, yield,
completion or (on the compat path) a step budget — and each of those
boundaries has an edge where an off-by-one would be invisible to
throughput tests but visible in the cycle ledger.  Every test here
runs the same workload on the batched core and on the step-granular
reference trampoline (via ``tests.support.trampoline``) and asserts
the full counter state matches:

* a step budget expiring exactly on the step that takes a window
  overflow trap (is the trap's cycle cost folded or lost?);
* a stream blocking on the last possible step of a batch (a write
  that exactly fills the stream, then one byte more);
* spawn and join inside one batch;
* the livelock watchdog firing mid-batch.
"""

import pytest

from repro import (
    Call,
    CloseStream,
    Join,
    Read,
    Spawn,
    Tick,
    Write,
    YieldCPU,
)
from repro.errors import ReproError
from repro.isa import Machine, MachineFault, assemble
from tests.support.trampoline import make_kernel

CORES = ("generator", "batched")

COUNTER_FIELDS = (
    "saves", "restores", "overflow_traps", "underflow_traps",
    "windows_spilled", "windows_restored", "context_switches",
    "compute_cycles", "call_cycles", "trap_cycles", "switch_cycles",
)


def counter_state(kernel):
    c = kernel.counters
    return {f: getattr(c, f) for f in COUNTER_FIELDS}


def run_core(core, build, max_steps=None, watchdog=None,
             scheme="SP", n_windows=6):
    kernel = make_kernel(core=core, n_windows=n_windows, scheme=scheme,
                         watchdog=watchdog)
    kernel.counters.keep_trace = True
    build(kernel)
    error = None
    try:
        kernel.run(max_steps=max_steps)
    except ReproError as exc:
        error = exc
    return kernel, error


def assert_cores_agree(build, **kw):
    results = {}
    for core in CORES:
        kernel, error = run_core(core, build, **kw)
        results[core] = {
            "error": (type(error).__name__, str(error)) if error else None,
            "steps": kernel._steps,
            "counters": counter_state(kernel),
            "switch_trace": list(kernel.counters.switch_trace),
            "trap_trace": list(kernel.counters.trap_trace),
        }
    assert results["generator"] == results["batched"]
    return results["generator"]


# -- budget expiring exactly on a trap step ------------------------------


def deep_call_workload(kernel):
    def descend(depth):
        if depth <= 0:
            yield Tick(1)
            return 0
        below = yield Call(descend, depth - 1)
        return below + 1

    def root():
        total = 0
        for __ in range(3):
            total += yield Call(descend, 10)
        return total

    kernel.spawn(root, name="deep")


def first_trap_step():
    """Smallest budget at which the run has taken an overflow trap."""
    for budget in range(1, 300):
        kernel, error = run_core("generator", deep_call_workload,
                                 max_steps=budget)
        if kernel.counters.overflow_traps:
            assert error is not None  # budget raised, trap already taken
            return budget
    raise AssertionError("no overflow trap within 300 steps")


def test_budget_expires_exactly_on_trap_step():
    edge = first_trap_step()
    # One step earlier: no trap yet.  At the edge: exactly one trap,
    # its spill and its cycles already folded.  Both cores, both sides.
    before = assert_cores_agree(deep_call_workload, max_steps=edge - 1)
    assert before["counters"]["overflow_traps"] == 0
    at = assert_cores_agree(deep_call_workload, max_steps=edge)
    assert at["counters"]["overflow_traps"] == 1
    assert at["counters"]["trap_cycles"] > 0
    assert at["error"][0] == "RuntimeFault"
    assert "step budget" in at["error"][1]


def test_budget_unlimited_run_agrees():
    full = assert_cores_agree(deep_call_workload)
    assert full["error"] is None
    assert full["counters"]["overflow_traps"] > 0


# -- stream blocks on the last step of a batch ---------------------------


def edge_block_workload(kernel):
    pipe = kernel.stream(8, "pipe")

    def writer():
        yield Write(pipe, b"x" * 8)   # fills the stream exactly: no block
        yield Write(pipe, b"y")       # blocks with nothing left to do
        yield CloseStream(pipe)
        return "wrote"

    def reader():
        got = bytearray()
        while True:
            data = yield Read(pipe, 3)
            if not data:
                break
            got.extend(data)
            yield Tick(1)
        return bytes(got)

    kernel.spawn(writer, name="writer")
    kernel.spawn(reader, name="reader")


def test_stream_block_on_batch_edge():
    snap = assert_cores_agree(edge_block_workload)
    assert snap["error"] is None
    for core in CORES:
        kernel, __ = run_core(core, edge_block_workload)
        writer = kernel.threads[0]
        assert writer.result == "wrote"
        assert writer.blocks == 1, (
            "%s core: the exact-fill write must not block, the "
            "one-byte follow-up must" % core)
        reader = kernel.threads[1]
        assert reader.result == b"x" * 8 + b"y"


def test_read_block_as_first_op_of_thread():
    """The degenerate batch: blocking on the very first step."""

    def build(kernel):
        pipe = kernel.stream(4, "pipe")

        def reader():
            return (yield Read(pipe, 4))

        def writer():
            yield Tick(3)
            yield Write(pipe, b"late")
            yield CloseStream(pipe)
            return None

        kernel.spawn(reader, name="reader")
        kernel.spawn(writer, name="writer")

    snap = assert_cores_agree(build)
    assert snap["error"] is None


# -- spawn/join inside a batch -------------------------------------------


def spawn_join_workload(kernel):
    def kid(n):
        yield Tick(n)
        return n * 2

    def root():
        a = yield Spawn(kid, 3, name="a")
        b = yield Spawn(kid, 5, name="b")
        yield Tick(1)
        first = yield Join(a)
        second = yield Join(b)
        return first + second

    kernel.spawn(root, name="root")


def test_spawn_join_inside_batch():
    snap = assert_cores_agree(spawn_join_workload)
    assert snap["error"] is None
    for core in CORES:
        kernel, __ = run_core(core, spawn_join_workload)
        assert kernel.threads[0].result == 16


def test_join_already_done_never_blocks():
    """Joining a thread that finished earlier in the same batch."""

    def build(kernel):
        def kid():
            yield Tick(1)
            return "done"

        def root():
            child = yield Spawn(kid, name="kid")
            for __ in range(6):
                yield YieldCPU()   # let the kid run to completion
            value = yield Join(child)
            return value

        kernel.spawn(root, name="root")

    snap = assert_cores_agree(build)
    assert snap["error"] is None
    for core in CORES:
        kernel, __ = run_core(core, build)
        assert kernel.threads[0].result == "done"
        assert kernel.threads[0].blocks == 0, (
            "%s core: a join on a finished thread must not block" % core)


# -- watchdog firing mid-batch -------------------------------------------


def livelock_workload(kernel):
    def spinner():
        while True:
            yield YieldCPU()

    kernel.spawn(spinner, name="spin-a")
    kernel.spawn(spinner, name="spin-b")


def test_watchdog_fires_identically_mid_batch():
    snap = assert_cores_agree(livelock_workload, watchdog=40)
    assert snap["error"] is not None
    assert snap["error"][0] == "LivelockError"
    assert "no progress for" in snap["error"][1]


def test_watchdog_quiet_on_progressing_run():
    snap = assert_cores_agree(edge_block_workload, watchdog=10_000)
    assert snap["error"] is None


# -- ISA machine batch boundaries ----------------------------------------


class TestMachineBudget:
    def source(self):
        return """
        start:
            mov  0, %l0
        loop:
            add  %l0, 1, %l0
            yield
            ba   loop
        """

    def machine(self):
        machine = Machine(assemble(self.source()), n_windows=8,
                          scheme="SP")
        machine.add_thread("start", name="a")
        machine.add_thread("start", name="b")
        return machine

    def test_budget_exhaustion_names_the_boundary(self):
        machine = self.machine()
        with pytest.raises(MachineFault, match="step budget of 100"):
            machine.run(max_steps=100)
        executed = sum(t.instructions for t in machine.threads)
        assert executed == 100

    def test_budget_on_yield_boundary_reports_event(self):
        # A two-thread yield ping-pong: the budget can land exactly on
        # a yield (a batch-exit event) — the fault must say so rather
        # than claim a mid-batch budget stop.
        machine = self.machine()
        with pytest.raises(MachineFault, match=r"last batch: (event|budget)"):
            machine.run(max_steps=99)
