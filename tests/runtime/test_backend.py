"""Backend selection, graceful fallback, and core retirement.

The compiled fast path (:mod:`repro._fast`) is optional: selection
must honor kwarg > ``$REPRO_BACKEND`` > auto-detect, degrade to the
pure loop with a single warning when the compiled backend is
explicitly requested but unusable, and never warn when the fallback
was not explicitly opposed.  The retired ``"generator"`` core must
raise a pointer error from the public constructor while remaining
reachable for bundle replay and the test-support trampoline.
"""

import warnings

import pytest

from repro import Kernel, Tick
from repro.runtime import backend as backend_mod
from repro.runtime.backend import (
    ENV_BACKEND,
    compiled_available,
    requested_backend,
    select_backend,
)
from repro.runtime.batch import resolve_core

needs_compiled = pytest.mark.skipif(
    not compiled_available(), reason="repro._fast not built")


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)


def tick_workload(kernel):
    def body():
        yield Tick(3)
        return "ok"

    kernel.spawn(body, name="t")


class TestSelection:
    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "compiled")
        assert requested_backend("pure") == "pure"
        assert select_backend("pure") == "pure"

    def test_env_consulted_without_kwarg(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "pure")
        assert requested_backend() == "pure"
        assert select_backend() == "pure"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            requested_backend("turbo")
        with pytest.raises(ValueError, match="unknown execution backend"):
            Kernel(backend="turbo")

    def test_auto_detect_matches_availability(self):
        expected = "compiled" if compiled_available() else "pure"
        assert select_backend() == expected

    def test_kernel_records_backend(self):
        kernel = Kernel(backend="pure")
        assert kernel.backend == "pure"
        assert kernel._fast is None

    @needs_compiled
    def test_kernel_compiled_backend(self):
        kernel = Kernel(backend="compiled")
        assert kernel.backend == "compiled"
        assert kernel._fast is not None

    @needs_compiled
    def test_machine_records_backend(self):
        from repro.isa import Machine, assemble

        src = """
        start:
            mov 1, %l0
            halt
        """
        assert Machine(assemble(src), backend="pure").backend == "pure"
        assert Machine(assemble(src),
                       backend="compiled").backend == "compiled"


class TestFallback:
    def test_request_without_extension_warns_once(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_fast", None)
        monkeypatch.setattr(backend_mod, "_fast_checked", True)
        with pytest.warns(RuntimeWarning,
                          match="repro._fast is not built") as caught:
            kernel = Kernel(backend="compiled")
        assert kernel.backend == "pure"
        assert len(caught) == 1

    def test_auto_detect_without_extension_is_silent(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_fast", None)
        monkeypatch.setattr(backend_mod, "_fast_checked", True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert Kernel().backend == "pure"

    @needs_compiled
    @pytest.mark.parametrize("knobs,needs", [
        ({"faults": "injector"}, "fault injection"),
        ({"audit": True}, "invariant audit"),
        ({"watchdog": 1000}, "watchdog"),
    ])
    def test_step_granular_config_warns_once(self, knobs, needs):
        if knobs.get("faults"):
            from repro.faults import FaultInjector, FaultPlan

            knobs = dict(knobs, faults=FaultInjector(
                FaultPlan.parse("sched@2", seed=1)))
        with pytest.warns(RuntimeWarning, match=needs) as caught:
            kernel = Kernel(backend="compiled", **knobs)
        assert kernel.backend == "pure"
        assert kernel._fast is None
        fallbacks = [w for w in caught
                     if "step-granular" in str(w.message)]
        assert len(fallbacks) == 1
        # the run is still correct on the fallback path
        tick_workload(kernel)
        kernel.run()
        assert kernel.threads[0].result == "ok"

    @needs_compiled
    def test_step_granular_config_silent_without_explicit_request(self):
        from repro.faults import FaultInjector, FaultPlan

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernel = Kernel(faults=FaultInjector(
                FaultPlan.parse("sched@2", seed=1)))
        assert kernel._fast is None


class TestGeneratorRetirement:
    def test_public_constructor_rejects_generator(self):
        with pytest.raises(ValueError, match="retired"):
            Kernel(core="generator")

    def test_resolve_core_pointer_error(self):
        with pytest.raises(ValueError,
                           match="tests/support/trampoline.py"):
            resolve_core("generator")

    def test_unknown_core_still_generic(self):
        with pytest.raises(ValueError, match="unknown execution core"):
            resolve_core("warp")

    def test_trampoline_support_module_forces_reference_loop(self):
        from tests.support.trampoline import make_kernel

        kernel = make_kernel(core="generator")
        assert kernel.core == "generator"
        tick_workload(kernel)
        kernel.run()
        assert kernel.threads[0].result == "ok"
        assert kernel._steps > 0

    def test_recorded_generator_bundle_config_still_replays(self):
        from repro.faults.workloads import run_workload

        result = run_workload({"workload": "synthetic-ping-pong",
                               "core": "generator", "rounds": 3})
        assert result.steps > 0
