"""Whole-pipeline integration: the multi-threaded spell checker must
produce *exactly* the sequential oracle's output under every scheme,
every window count, and both scheduling policies — and its save counts
must be configuration-independent (Table 1's structural property)."""

import pytest

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.apps.spellcheck.corpus import (
    DICT_SIZE,
    generate_corpus,
    generate_dictionaries,
)
from repro.apps.spellcheck.oracle import run_reference
from repro.core.working_set import WorkingSetPolicy

SCALE = 0.02  # ~800-byte corpus: fast but exercises every path


@pytest.fixture(scope="module")
def reference():
    corpus = generate_corpus(scale=SCALE)
    dict1, dict2, __ = generate_dictionaries(
        size=max(200, int(round(DICT_SIZE * SCALE))))
    report, results = run_reference(corpus, dict1, dict2)
    return report


@pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
@pytest.mark.parametrize("n_windows", [4, 5, 8, 16])
def test_pipeline_matches_oracle(scheme, n_windows, reference):
    config = SpellConfig.named("high", "fine", scale=SCALE)
    __, output = run_spellchecker(n_windows, scheme, config,
                                  verify_registers=True)
    assert output == reference


@pytest.mark.parametrize("concurrency", ["high", "low"])
@pytest.mark.parametrize("granularity", ["coarse", "medium", "fine"])
def test_all_configs_match_oracle(concurrency, granularity, reference):
    config = SpellConfig.named(concurrency, granularity, scale=SCALE)
    __, output = run_spellchecker(6, "SP", config, verify_registers=True)
    assert output == reference


def test_working_set_policy_matches_oracle(reference):
    config = SpellConfig.named("high", "fine", scale=SCALE)
    __, output = run_spellchecker(6, "SNP", config,
                                  queue_policy=WorkingSetPolicy(),
                                  verify_registers=True)
    assert output == reference


def test_save_counts_invariant_across_everything():
    """Table 1: "the dynamic count of save instructions is independent
    of the buffer size and scheduling strategy"."""
    counts = set()
    for scheme in ("NS", "SNP", "SP"):
        for concurrency, granularity in (("high", "fine"),
                                         ("low", "coarse")):
            config = SpellConfig.named(concurrency, granularity,
                                       scale=SCALE)
            result, __ = run_spellchecker(7, scheme, config)
            counts.add(result.counters.saves)
    assert len(counts) == 1


def test_switch_counts_scale_with_granularity():
    switches = {}
    for granularity in ("coarse", "medium", "fine"):
        config = SpellConfig.named("high", granularity, scale=SCALE)
        result, __ = run_spellchecker(8, "SP", config)
        switches[granularity] = result.counters.context_switches
    assert switches["fine"] > switches["medium"] > switches["coarse"]


def test_low_concurrency_switches_less():
    results = {}
    for concurrency in ("high", "low"):
        config = SpellConfig.named(concurrency, "fine", scale=SCALE)
        result, __ = run_spellchecker(8, "SP", config)
        results[concurrency] = result.counters.context_switches
    assert results["low"] < results["high"]


def test_saves_equal_restores_plus_roots():
    """Every procedure call returns exactly once; root frames never
    execute save/restore."""
    config = SpellConfig.named("high", "medium", scale=SCALE)
    result, __ = run_spellchecker(8, "SNP", config)
    assert result.counters.saves == result.counters.restores


def test_spilled_equals_restored_plus_dead():
    """Windows spilled but never restored belong to threads that
    finished with frames still in memory (their stacks died)."""
    config = SpellConfig.named("high", "fine", scale=SCALE)
    result, __ = run_spellchecker(5, "NS", config)
    c = result.counters
    assert c.windows_spilled >= c.windows_restored
