"""Synthetic workloads: correctness under every scheme, plus the
behaviours they were designed to isolate."""

import pytest

from repro import Kernel
from repro.apps.synthetic import (
    expected_fork_join_total,
    spawn_call_depth_workers,
    spawn_fork_join,
    spawn_ping_pong,
)
from repro.metrics.behavior import BehaviorTracker

SCHEMES = ("NS", "SNP", "SP")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_call_depth_workers_complete(scheme):
    kernel = Kernel(n_windows=8, scheme=scheme)
    spawn_call_depth_workers(kernel, n_workers=2, iterations=10, depth=3)
    result = kernel.run(max_steps=500_000)
    assert result.result_of("worker0") == 10 * 4
    assert result.result_of("worker1") == 10 * 4


def test_call_depth_controls_window_activity():
    """Window activity per thread is depth + 1 by construction (§5)."""
    for depth in (1, 3, 5):
        kernel = Kernel(n_windows=32, scheme="SP")
        kernel.tracker = BehaviorTracker()
        spawn_call_depth_workers(kernel, n_workers=1, iterations=8,
                                 depth=depth)
        kernel.run(max_steps=500_000)
        activity = kernel.tracker.window_activity_per_thread()
        worker_activity = activity[1]  # tid 1 is the worker
        assert worker_activity >= depth + 1 - 0.5


@pytest.mark.parametrize("scheme", SCHEMES)
def test_ping_pong_completes(scheme):
    kernel = Kernel(n_windows=5, scheme=scheme)
    spawn_ping_pong(kernel, rounds=30)
    result = kernel.run(max_steps=500_000)
    assert result.result_of("ponger") == 30


def test_ping_pong_snp_allocation_pathology():
    """§4.2: with the simple policy and a windowless partner, SNP can
    spill and re-restore repeatedly; SP's PRWs avoid the worst of it.
    We only assert the pathology exists (SNP moves at least as many
    windows as SP at equal size)."""
    moved = {}
    for scheme in ("SNP", "SP"):
        kernel = Kernel(n_windows=6, scheme=scheme)
        spawn_ping_pong(kernel, rounds=50)
        result = kernel.run(max_steps=500_000)
        c = result.counters
        moved[scheme] = c.windows_spilled + c.windows_restored
    assert moved["SNP"] >= moved["SP"]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("flush", [False, True])
def test_fork_join_correct(scheme, flush):
    kernel = Kernel(n_windows=10, scheme=scheme)
    spawn_fork_join(kernel, n_children=3, items=60, flush_hint=flush)
    result = kernel.run(max_steps=1_000_000)
    assert result.result_of("parent") == expected_fork_join_total(60)


def test_flush_hint_reduces_trap_count_for_long_sleepers():
    """§4.4: flushing a long sleeper's windows at switch time replaces
    later overflow traps."""
    results = {}
    for flush in (False, True):
        kernel = Kernel(n_windows=6, scheme="SP")
        spawn_fork_join(kernel, n_children=3, items=40, flush_hint=flush)
        run = kernel.run(max_steps=1_000_000)
        results[flush] = run.counters.overflow_traps
    assert results[True] <= results[False]
