"""The two-stage spell-check logic (T2/T3), via the oracle runner."""

from repro.apps.spellcheck.oracle import _FakeStream, run_procedure
from repro.apps.spellcheck.spell import (
    check_derivative,
    check_word,
    load_dictionary,
    spell1_thread,
    spell2_thread,
)


def run(gen):
    return run_procedure(gen)


def make_base_stream(words):
    s = _FakeStream()
    s.data.extend(("\n".join(words) + "\n").encode("ascii"))
    return s


class TestLoadDictionary:
    def test_loads_all_words(self):
        s = make_base_stream(["alpha", "beta", "gamma"])
        words = run(load_dictionary(s))
        assert words == {"alpha", "beta", "gamma"}

    def test_skips_filler_lines(self):
        s = _FakeStream()
        s.data.extend(b"alpha\n#000123\nbeta\n")
        assert run(load_dictionary(s)) == {"alpha", "beta"}

    def test_chunking_independent(self):
        words = ["w%03d" % i for i in range(100)]
        for chunk in (3, 7, 64):
            s = make_base_stream(words)
            assert run(load_dictionary(s, chunk)) == set(words)


class TestCheckDerivative:
    BASES = {"move", "try", "wind", "pass", "happy"}

    def check(self, word):
        return run(check_derivative(word.encode(), self.BASES))

    def test_correct_derivatives_pass(self):
        assert self.check("moving") is False
        assert self.check("tries") is False
        assert self.check("winds") is False
        assert self.check("passes") is False

    def test_malformed_derivatives_flagged(self):
        assert self.check("moveing") is True
        assert self.check("trys") is True

    def test_unknown_stems_not_flagged_here(self):
        # not derived from any known base: T3's job, not T2's
        assert self.check("zzzzzing") is False

    def test_non_suffixed_words_pass(self):
        assert self.check("window") is False


class TestCheckWord:
    BASES = {"move", "try", "wind", "window"}

    def check(self, word):
        return run(check_word(word.encode(), self.BASES))

    def test_base_words_accepted(self):
        assert self.check("window") is True

    def test_derivatives_accepted_by_stripping(self):
        assert self.check("windows") is True
        assert self.check("moving") is True   # via stem+e
        assert self.check("tries") is True    # via i->y rewrite

    def test_unknown_rejected(self):
        assert self.check("qwertyx") is False


class TestThreadsEndToEnd:
    def test_spell1_marks_and_forwards(self):
        dict_stream = make_base_stream(["move", "try"])
        s_in = _FakeStream()
        s_in.data.extend(b"moving\nmoveing\nwindow\n")
        s_out = _FakeStream()
        flagged, passed = run(spell1_thread(dict_stream, s_in, s_out))
        assert (flagged, passed) == (1, 2)
        assert bytes(s_out.data) == b"moving\n!moveing\nwindow\n"

    def test_spell2_reports_unknowns_and_bangs(self):
        dict_stream = make_base_stream(["move", "window"])
        s_in = _FakeStream()
        s_in.data.extend(b"moving\n!moveing\nwindow\nqzzk\n")
        s_out = _FakeStream()
        reported, accepted = run(spell2_thread(dict_stream, s_in, s_out))
        assert (reported, accepted) == (2, 2)
        assert bytes(s_out.data) == b"moveing\nqzzk\n"
