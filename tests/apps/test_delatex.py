"""The T1 delatex filter, run through the sequential oracle."""

from repro.apps.spellcheck.delatex import delatex_thread
from repro.apps.spellcheck.oracle import _FakeStream, run_procedure


def strip(latex: bytes, chunk: int = 64) -> list:
    s_in, s_out = _FakeStream(), _FakeStream()
    s_in.data.extend(latex)
    run_procedure(delatex_thread(s_in, s_out, chunk))
    return bytes(s_out.data).decode("ascii").split()


class TestDelatex:
    def test_plain_words_pass_through_lowercased(self):
        assert strip(b"Hello World") == ["hello", "world"]

    def test_one_word_per_line(self):
        s_in, s_out = _FakeStream(), _FakeStream()
        s_in.data.extend(b"a few words here")
        run_procedure(delatex_thread(s_in, s_out))
        assert bytes(s_out.data) == b"few\nwords\nhere\n"

    def test_commands_stripped(self):
        assert strip(b"\\section{Introduction} text") == [
            "introduction", "text"]

    def test_command_name_not_emitted(self):
        assert strip(b"foo \\textbf bar") == ["foo", "bar"]

    def test_math_mode_dropped(self):
        assert strip(b"before $x_i + y$ after") == ["before", "after"]

    def test_comments_dropped_to_end_of_line(self):
        assert strip(b"keep % lost words\nnext") == ["keep", "next"]

    def test_single_letters_dropped(self):
        assert strip(b"a b word I x") == ["word"]

    def test_punctuation_separates(self):
        assert strip(b"one,two;three.") == ["one", "two", "three"]

    def test_digits_split_tokens(self):
        assert strip(b"word123more") == ["word", "more"]

    def test_braces_are_separators(self):
        assert strip(b"{inner}{more}") == ["inner", "more"]

    def test_chunk_size_does_not_change_output(self):
        latex = (b"\\section{The Window} Registers are $f$ fast %x\n"
                 b"and \\emph{shared} among threads.")
        baseline = strip(latex, 64)
        for chunk in (1, 2, 3, 7, 16, 33):
            assert strip(latex, chunk) == baseline

    def test_trailing_word_without_newline_flushed(self):
        assert strip(b"final") == ["final"]

    def test_backslash_at_chunk_boundary(self):
        latex = b"xx\\section{yy}"
        for chunk in (1, 2, 3, 4):
            assert strip(latex, chunk) == ["xx", "yy"]
