"""The spell-checker command-line interface."""

import pytest

from repro.apps.spellcheck.__main__ import check_document, main
from repro.apps.spellcheck.corpus import generate_dictionaries


def test_cli_builtin_corpus(capsys):
    assert main(["--scale", "0.02", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "possibly-misspelled words" in out
    assert "avg-switch" in out


def test_cli_checks_a_real_file(tmp_path, capsys):
    tex = tmp_path / "doc.tex"
    tex.write_bytes(
        b"\\section{Windows} the window regsterq is \\emph{fast} and "
        b"the thread schedule is good\n")
    assert main([str(tex), "--scheme", "SNP", "--windows", "6"]) == 0
    out = capsys.readouterr().out
    assert "regsterq" in out
    assert "window" not in out.splitlines()[1:]  # known words accepted


def test_cli_survivable_fault_reports_summary(capsys):
    assert main(["--scale", "0.02", "--faults", "sched@2"]) == 0
    out = capsys.readouterr().out
    assert "faults fired: sched@2/enqueue" in out
    assert "possibly-misspelled words" in out


def test_cli_detected_fault_writes_bundle(tmp_path, capsys):
    code = main(["--scale", "0.05", "--windows", "6",
                 "--faults", "retval@5", "--audit",
                 "--crash-dir", str(tmp_path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "simulator fault: WindowIntegrityError" in err
    assert "crash bundle: " in err
    assert "python -m repro.faults replay" in err
    bundles = list(tmp_path.glob("crash-*.json"))
    assert len(bundles) == 1

    from repro.faults import replay_bundle

    matched, __, detail = replay_bundle(bundles[0],
                                        workdir=tmp_path / "replay")
    assert matched, detail


def test_check_document_scheme_independent():
    dict1, dict2, __ = generate_dictionaries(size=1500)
    document = (b"the window thread xqzzk processor \\cite{foo} "
                b"schedule fast\n" * 5)
    reports = set()
    for scheme in ("NS", "SNP", "SP"):
        __, report = check_document(document, dict1, dict2,
                                    m=4, n=4, scheme=scheme,
                                    n_windows=6)
        reports.add(report)
    assert len(reports) == 1
    assert b"xqzzk" in reports.pop()
