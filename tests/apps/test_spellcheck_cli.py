"""The spell-checker command-line interface."""

import pytest

from repro.apps.spellcheck.__main__ import check_document, main
from repro.apps.spellcheck.corpus import generate_dictionaries


def test_cli_builtin_corpus(capsys):
    assert main(["--scale", "0.02", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "possibly-misspelled words" in out
    assert "avg-switch" in out


def test_cli_checks_a_real_file(tmp_path, capsys):
    tex = tmp_path / "doc.tex"
    tex.write_bytes(
        b"\\section{Windows} the window regsterq is \\emph{fast} and "
        b"the thread schedule is good\n")
    assert main([str(tex), "--scheme", "SNP", "--windows", "6"]) == 0
    out = capsys.readouterr().out
    assert "regsterq" in out
    assert "window" not in out.splitlines()[1:]  # known words accepted


def test_check_document_scheme_independent():
    dict1, dict2, __ = generate_dictionaries(size=1500)
    document = (b"the window thread xqzzk processor \\cite{foo} "
                b"schedule fast\n" * 5)
    reports = set()
    for scheme in ("NS", "SNP", "SP"):
        __, report = check_document(document, dict1, dict2,
                                    m=4, n=4, scheme=scheme,
                                    n_windows=6)
        reports.add(report)
    assert len(reports) == 1
    assert b"xqzzk" in reports.pop()
