"""Corpus and dictionary generation: determinism, sizes, structure."""

from repro.apps.spellcheck.corpus import (
    CORPUS_SIZE,
    DICT_SIZE,
    SUFFIXES,
    bases_for_scale,
    corpus_statistics,
    derive,
    generate_corpus,
    generate_dictionaries,
    generate_vocabulary,
    misspell,
    naive_strip,
    parse_dictionary,
)

import random


class TestVocabulary:
    def test_deterministic(self):
        assert generate_vocabulary(7) == generate_vocabulary(7)

    def test_different_seeds_differ(self):
        assert generate_vocabulary(1) != generate_vocabulary(2)

    def test_no_duplicates(self):
        vocab = generate_vocabulary(3, n_bases=500)
        assert len(vocab) == len(set(vocab)) == 500

    def test_all_lowercase_ascii(self):
        for word in generate_vocabulary(3, n_bases=300):
            assert word.isalpha() and word == word.lower()


class TestDerive:
    def test_silent_e_dropped(self):
        assert derive("move", "ing") == "moving"
        assert derive("move", "ed") == "moved"

    def test_y_to_ies(self):
        assert derive("try", "s") == "tries"
        assert derive("try", "es") == "tries"

    def test_sibilant_takes_es(self):
        assert derive("pass", "s") == "passes"
        assert derive("patch", "es") == "patches"

    def test_plain_concatenation(self):
        assert derive("wind", "s") == "winds"
        assert derive("slow", "ly") == "slowly"

    def test_y_ly(self):
        assert derive("happy", "ly") == "happily"


class TestNaiveStrip:
    def test_strips_each_suffix(self):
        assert "window" in naive_strip("windows")
        assert "check" in naive_strip("checking")

    def test_short_words_not_stripped(self):
        assert naive_strip("is") == []

    def test_returns_multiple_candidates(self):
        stems = naive_strip("takes")
        assert "tak" in stems and "take" in stems


class TestMisspell:
    def test_changes_the_word(self):
        rng = random.Random(5)
        for word in ("window", "register", "thread", "context"):
            assert misspell(word, rng) != word

    def test_short_words_doubled(self):
        rng = random.Random(5)
        assert misspell("ab", rng) == "abb"


class TestDictionaries:
    def test_exact_size(self):
        d1, d2, __ = generate_dictionaries(size=5000)
        assert len(d1) == 5000
        assert len(d2) == 5000

    def test_deterministic(self):
        assert generate_dictionaries(9)[0] == generate_dictionaries(9)[0]

    def test_dict2_covers_vocabulary(self):
        d1, d2, vocab = generate_dictionaries()
        words = parse_dictionary(d2)
        assert set(vocab) <= words

    def test_dict1_is_subset_of_vocab(self):
        d1, __, vocab = generate_dictionaries()
        bases = parse_dictionary(d1)
        assert bases <= set(vocab)
        assert len(bases) > len(vocab) * 0.5

    def test_full_size_default(self):
        d1, d2, __ = generate_dictionaries()
        assert len(d1) == DICT_SIZE == len(d2)


class TestCorpus:
    def test_exact_paper_size_at_full_scale(self):
        assert len(generate_corpus()) == CORPUS_SIZE == 40500

    def test_scaled_size(self):
        assert len(generate_corpus(scale=0.1)) == 4050

    def test_deterministic(self):
        assert generate_corpus(11, 0.05) == generate_corpus(11, 0.05)

    def test_is_ascii_latex(self):
        corpus = generate_corpus(scale=0.1)
        text = corpus.decode("ascii")  # must not raise
        stats = corpus_statistics(corpus)
        assert stats["commands"] > 5
        assert stats["math"] >= 1
        assert stats["comments"] >= 1
        assert stats["lines"] > 20
        assert "\\documentclass" in text

    def test_bases_for_scale_consistency(self):
        assert bases_for_scale(1.0) == 5200
        assert bases_for_scale(0.5) == 2600
        assert bases_for_scale(0.001) == 60

    def test_suffixes_are_a_tuple_for_endswith(self):
        assert isinstance(SUFFIXES, tuple)
        assert "windows".endswith(SUFFIXES)
