"""The telemetry zero-overhead and determinism contracts.

Mirrors ``test_tracing_guard.py`` for the aggregate layer: with no
``RunTelemetry`` attached every instrumented site must hold ``None``
(one ``is None`` branch, no registry mutation, no emit), and with one
attached two identical runs must produce byte-identical
``repro.metrics-snapshot`` documents.
"""

import pytest

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.isa import Machine, assemble
from repro.metrics import telemetry as telemetry_mod
from repro.metrics.events import EventBus
from repro.metrics.telemetry import (
    Counter,
    Gauge,
    Histogram,
    RunTelemetry,
    snapshot_to_json,
    validate_snapshot,
)
from repro.runtime.kernel import Kernel

CONFIG = SpellConfig.named("high", "coarse", scale=0.03)


def _run(instrument=None):
    return run_spellchecker(8, "SNP", CONFIG, instrument=instrument)


class TestDisabledPathIsInert:
    def test_sites_stay_detached_without_telemetry(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        assert kernel.telemetry is None
        assert kernel._profiler is None
        assert kernel.scheme._tel_switch is None
        assert kernel.scheme._tel_trap is None

    def test_uninstrumented_run_never_touches_registry_or_bus(
            self, monkeypatch):
        """The strong form of the zero-overhead guard: every mutation
        entry point of the metrics layer (and the event bus) is booby-
        trapped; an uninstrumented run must not trip any of them."""
        def boom(*args, **kwargs):
            raise AssertionError("hot path touched telemetry while off")

        monkeypatch.setattr(Counter, "inc", boom)
        monkeypatch.setattr(Gauge, "set", boom)
        monkeypatch.setattr(Histogram, "observe", boom)
        monkeypatch.setattr(Histogram, "observe_bulk", boom)
        monkeypatch.setattr(EventBus, "emit", boom)
        result, __ = _run()
        assert result.counters.context_switches > 0

    def test_machine_sites_stay_detached_without_telemetry(self):
        machine = Machine(assemble("start:\n    halt\n"))
        assert machine.telemetry is None
        assert machine._profiler is None
        assert machine.scheme._tel_switch is None


class TestEnabledPathIsTransparent:
    def test_instrumented_run_changes_no_behavior(self):
        bare, bare_out = _run()
        telemetry = RunTelemetry(every=1024)
        metered, metered_out = _run(telemetry.attach)
        assert metered.steps == bare.steps
        assert metered.counters.snapshot() == bare.counters.snapshot()
        assert metered_out == bare_out

    def test_histogram_counts_match_exact_counters(self):
        telemetry = RunTelemetry(every=1024)
        result, __ = _run(telemetry.attach)
        telemetry.finalize(result)
        snap = result.counters.snapshot()
        reg = telemetry.registry
        switch = reg.get('sim_switch_cycles_hist{scheme="SNP"}')
        trap = reg.get('sim_trap_cycles_hist{scheme="SNP"}')
        assert switch.count == snap["context_switches"]
        assert trap.count == (snap["overflow_traps"]
                              + snap["underflow_traps"])
        assert switch.sum == snap["switch_cycles"]
        assert reg.get("sim_saves").value == snap["saves"]
        assert reg.get("sim_total_cycles").value == snap["total_cycles"]

    def test_fold_is_idempotent(self):
        telemetry = RunTelemetry(every=1024)
        result, __ = _run(telemetry.attach)
        telemetry.finalize(result)
        meta = {"scheme": "SNP", "n_windows": 8}
        first = telemetry.snapshot(meta)
        second = telemetry.snapshot(meta)
        assert snapshot_to_json(first) == snapshot_to_json(second)

    def test_occupancy_sampled_on_cycle_grid(self):
        telemetry = RunTelemetry(every=512)
        result, __ = _run(telemetry.attach)
        prof = telemetry.profiler
        assert prof.samples > 0
        assert prof.samples == len(prof.occupancy)
        cycles = [c for c, __ in prof.occupancy]
        assert cycles == sorted(cycles)
        assert all(0 <= occ <= 8 for __, occ in prof.occupancy)
        assert prof.occupancy[-1][0] <= result.counters.total_cycles


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
    def test_identical_runs_produce_byte_identical_snapshots(
            self, scheme):
        texts = []
        for __ in range(2):
            telemetry = RunTelemetry(every=2048)
            result, __out = run_spellchecker(8, scheme, CONFIG,
                                             instrument=telemetry.attach)
            telemetry.finalize(result)
            snap = telemetry.snapshot({"scheme": scheme, "n_windows": 8,
                                       "workload": "spellcheck"})
            texts.append(snapshot_to_json(validate_snapshot(snap)))
        assert texts[0] == texts[1]

    def test_snapshot_body_contains_no_wall_clock(self):
        """Every value in a simulator snapshot is cycle- or count-
        domain; nothing floats (wall-clock would)."""
        telemetry = RunTelemetry(every=2048)
        result, __ = _run(telemetry.attach)
        telemetry.finalize(result)
        snap = telemetry.snapshot({"scheme": "SNP"})

        def walk(node):
            if isinstance(node, float):
                raise AssertionError("float in simulator snapshot: %r"
                                     % node)
            if isinstance(node, dict):
                for v in node.values():
                    walk(v)
            elif isinstance(node, list):
                for v in node:
                    walk(v)

        walk(snap)


class TestMachineTelemetry:
    SOURCE = """
    start:
        mov  0, %l0
        mov  2000, %l1
    loop:
        add  %l0, 1, %l0
        cmp  %l0, %l1
        bl   loop
        mov  %l0, %o0
        halt
    """

    def test_isa_profiler_attributes_opcodes(self):
        machine = Machine(assemble(self.SOURCE), n_windows=8, scheme="SP")
        telemetry = RunTelemetry(every=64)
        machine.attach_telemetry(telemetry)
        machine.add_thread("start", name="t")
        machine.run()
        prof = telemetry.profiler
        assert prof.samples > 0
        assert prof.op_cycles, "no per-opcode attribution"
        assert set(prof.op_cycles) <= {"mov", "add", "cmp", "bl", "halt"}
        snap = validate_snapshot(telemetry.registry.snapshot(
            profile=prof.profile_section()))
        assert snap["profile"]["ops"] == prof.op_cycles

    def test_isa_run_identical_with_and_without_telemetry(self):
        def run(attach):
            machine = Machine(assemble(self.SOURCE), n_windows=8,
                              scheme="SP")
            if attach:
                machine.attach_telemetry(RunTelemetry(every=64))
            thread = machine.add_thread("start", name="t")
            machine.run()
            return thread.exit_value, machine.counters.snapshot()

        assert run(False) == run(True)
