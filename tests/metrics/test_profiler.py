"""The deterministic cycle-domain profiler: grid arithmetic, stack
folding, and the flamegraph/collapsed outputs."""

import pytest

from repro.metrics.counters import Counters
from repro.metrics.profiler import CycleProfiler, flamegraph_from_stacks


class _FakeThread:
    def __init__(self, name, frames):
        self.name = name
        self.gen_stack = [_gen(frame) for frame in frames]


def _gen(name):
    code = compile("def %s():\n    yield\n" % name, "<fake>", "exec")
    ns = {}
    exec(code, ns)
    return ns[name]()


class TestSampling:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CycleProfiler(every=-5)

    def test_no_sample_below_first_boundary(self):
        prof = CycleProfiler(every=100)
        counters = Counters()
        counters.compute_cycles = 99
        prof._check(None, None, counters)
        assert prof.samples == 0
        assert prof.checks == 1
        assert prof._cd == prof.check_every  # countdown re-armed

    def test_sample_attributes_delta_to_stack(self):
        prof = CycleProfiler(every=100)
        counters = Counters()
        thread = _FakeThread("T1.main", ["outer", "inner"])
        counters.compute_cycles = 150
        prof._check(thread, None, counters)
        assert prof.samples == 1
        assert prof.stack_cycles == {"T1.main;outer;inner": 150}
        # grid advances past `now`, never to a boundary already crossed
        assert prof._next_cycle == 200

    def test_skipped_boundaries_collapse_into_one_sample(self):
        prof = CycleProfiler(every=100)
        counters = Counters()
        thread = _FakeThread("T", ["f"])
        counters.compute_cycles = 150
        prof._check(thread, None, counters)
        counters.compute_cycles = 575  # crossed 200..500 unobserved
        prof._check(thread, None, counters)
        assert prof.samples == 2
        # cycle attribution stays exact: deltas sum to the clock
        assert prof.stack_cycles["T;f"] == 575
        assert prof._next_cycle == 600

    def test_idle_stack_label(self):
        prof = CycleProfiler(every=10)
        counters = Counters()
        counters.compute_cycles = 10
        prof._check(None, None, counters)
        assert prof.stack_cycles == {"(idle)": 10}

    def test_check_op_attributes_opcode(self):
        prof = CycleProfiler(every=10)
        counters = Counters()
        counters.compute_cycles = 12
        prof.check_op("hw0", "add", counters)
        counters.compute_cycles = 25
        prof.check_op("hw0", "smul", counters)
        assert prof.op_cycles == {"add": 12, "smul": 13}
        assert prof.stack_cycles == {"hw0": 25}

    def test_profile_section_is_sorted_and_complete(self):
        prof = CycleProfiler(every=10, check_every=4)
        counters = Counters()
        counters.compute_cycles = 11
        prof.check_op("b", "zz", counters)
        counters.compute_cycles = 21
        prof.check_op("a", "aa", counters)
        section = prof.profile_section()
        assert section["every"] == 10
        assert section["check_steps"] == 4
        assert section["samples"] == 2
        assert list(section["stacks"]) == ["a", "b"]
        assert list(section["ops"]) == ["aa", "zz"]


class TestFlamegraph:
    def test_folds_shared_prefixes(self):
        tree = flamegraph_from_stacks({
            "main;parse": 30,
            "main;parse;lex": 20,
            "main;eval": 50,
        })
        assert tree["name"] == "all"
        assert tree["value"] == 100
        (main,) = tree["children"]
        assert main["value"] == 100
        by_name = {c["name"]: c for c in main["children"]}
        assert by_name["eval"]["value"] == 50
        assert by_name["parse"]["value"] == 50
        (lex,) = by_name["parse"]["children"]
        assert lex["value"] == 20

    def test_children_sorted_deterministically(self):
        tree = flamegraph_from_stacks({"z": 1, "a": 1, "m": 1})
        assert [c["name"] for c in tree["children"]] == ["a", "m", "z"]

    def test_leaf_nodes_have_no_children_key(self):
        tree = flamegraph_from_stacks({"a;b": 5})
        leaf = tree["children"][0]["children"][0]
        assert "children" not in leaf

    def test_collapsed_output(self):
        prof = CycleProfiler(every=10)
        prof.stack_cycles = {"main;f": 7, "main;g": 3}
        assert prof.collapsed() == "main;f 7\nmain;g 3\n"
        assert prof.flamegraph()["value"] == 10
