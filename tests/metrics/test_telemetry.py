"""Unit tests for the aggregate telemetry layer
(:mod:`repro.metrics.telemetry`): instrument semantics, the snapshot
document, and the Prometheus exposition."""

import json

import pytest

from repro.metrics.telemetry import (
    CYCLE_BUCKETS,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_percentile,
    occupancy_buckets,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus,
    validate_snapshot,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("saves")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_histogram_requires_sorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(4, 2, 8))

    def test_histogram_inclusive_upper_bounds(self):
        h = Histogram("h", bounds=(1, 2, 4, 8))
        for v in (1, 2, 2, 3, 8, 9):
            h.observe(v)
        # value <= bound lands in that bucket; 9 overflows
        assert h.bucket_counts == [1, 2, 1, 1, 1]
        assert h.count == 6
        assert h.sum == 25
        assert h.min == 1 and h.max == 9

    def test_observe_bulk_matches_observe(self):
        values = [0, 1, 3, 3, 64, 64, 64, 1 << 19, (1 << 20) + 5]
        one = Histogram("a", CYCLE_BUCKETS)
        for v in values:
            one.observe(v)
        bulk = Histogram("b", CYCLE_BUCKETS)
        bulk.observe_bulk(values[:4])
        bulk.observe_bulk(values[4:])
        bulk.observe_bulk([])
        assert bulk.bucket_counts == one.bucket_counts
        assert (bulk.count, bulk.sum, bulk.min, bulk.max) == \
            (one.count, one.sum, one.min, one.max)

    def test_percentile_bucket_resolution(self):
        h = Histogram("h", bounds=(10, 20, 40))
        for __ in range(90):
            h.observe(5)
        for __ in range(10):
            h.observe(35)
        assert h.percentile(50) == 10
        assert h.percentile(99) == 40
        assert h.mean == pytest.approx((90 * 5 + 10 * 35) / 100)

    def test_percentile_overflow_bucket_reports_max(self):
        h = Histogram("h", bounds=(10,))
        h.observe(500)
        assert h.percentile(99) == 500

    def test_empty_histogram_percentile(self):
        assert Histogram("h", bounds=(1,)).percentile(50) == 0

    def test_payload_percentile_matches_live(self):
        h = Histogram("h", CYCLE_BUCKETS)
        for v in (3, 17, 17, 901, 40000):
            h.observe(v)
        payload = h.to_payload()
        for q in (50, 90, 99):
            assert histogram_percentile(payload, q) == h.percentile(q)
        assert histogram_percentile({"count": 0}, 50) == 0

    def test_occupancy_buckets_are_exact(self):
        assert occupancy_buckets(4) == (0, 1, 2, 3, 4)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h", (1, 2))

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("saves", labels={"scheme": "NS"})
        b = reg.counter("saves", labels={"scheme": "SP"})
        assert a is not b
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", (1,))

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", (1, 2, 3))

    def test_instruments_sorted_by_key(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        assert [i.name for i in reg.instruments()] == ["alpha", "zeta"]


class TestSnapshot:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("sim_saves", help="saves").inc(7)
        reg.gauge("sim_steps").set(100)
        h = reg.histogram("sim_switch_cycles_hist", (8, 16),
                          labels={"scheme": "NS"})
        h.observe(8)
        h.observe(100)
        return reg.snapshot(meta={"scheme": "NS", "n_windows": 8})

    def test_snapshot_validates_and_round_trips(self):
        snap = self._snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["version"] == SNAPSHOT_VERSION
        text = snapshot_to_json(snap)
        assert snapshot_from_json(text) == snap
        # stable serialization: same document -> same bytes
        assert snapshot_to_json(json.loads(text)) == text

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            validate_snapshot({"schema": "something.else"})
        with pytest.raises(ValueError):
            validate_snapshot([1, 2])

    def test_validate_rejects_bad_version(self):
        snap = self._snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(ValueError):
            validate_snapshot(snap)
        snap["version"] = 0
        with pytest.raises(ValueError):
            validate_snapshot(snap)

    def test_validate_rejects_inconsistent_histogram(self):
        snap = self._snapshot()
        key = next(iter(snap["histograms"]))
        snap["histograms"][key]["bucket_counts"][0] += 1
        with pytest.raises(ValueError):
            validate_snapshot(snap)

    def test_validate_rejects_missing_section(self):
        snap = self._snapshot()
        del snap["gauges"]
        with pytest.raises(ValueError):
            validate_snapshot(snap)


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("saves", help="total saves").inc(5)
        reg.gauge("queue_depth").set(3)
        text = to_prometheus(reg.snapshot(meta={"scheme": "SP"}))
        assert "# HELP repro_saves total saves" in text
        assert "# TYPE repro_saves counter" in text
        assert 'repro_saves{scheme="SP"} 5' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert 'repro_queue_depth{scheme="SP"} 3' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (1, 2))
        for v in (1, 2, 2, 9):
            h.observe(v)
        text = to_prometheus(reg.snapshot(), meta_labels=False)
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_sum 14" in text
        assert "repro_lat_count 4" in text

    def test_meta_labels_can_be_disabled(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        text = to_prometheus(reg.snapshot(meta={"scheme": "NS"}),
                             meta_labels=False)
        assert "repro_x 1" in text
        assert "scheme" not in text

    def test_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("cache.hit-ratio")
        text = to_prometheus(reg.snapshot(), meta_labels=False)
        assert "repro_cache_hit_ratio 0" in text
