"""Occupancy timelines: sampling, analysis and rendering."""

import pytest

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.metrics.tracing import OccupancyTimeline


def _run(scheme, n_windows=8, items=40, max_samples=4096):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    kernel.timeline = OccupancyTimeline(max_samples=max_samples)
    stream = kernel.stream(2, "s")

    def producer(s):
        for i in range(items):
            yield Call(_leaf, i)
            yield Write(s, bytes([i % 251]))
        yield CloseStream(s)
        return None

    def _leaf(i):
        yield Tick(2)
        return i

    def consumer(s):
        total = 0
        while True:
            data = yield Read(s, 4)
            if not data:
                return total
            total += sum(data)
            yield Call(_leaf, len(data))

    kernel.spawn(producer, stream, name="p")
    kernel.spawn(consumer, stream, name="c")
    kernel.run()
    return kernel.timeline


class TestSampling:
    def test_samples_taken_per_dispatch(self):
        timeline = _run("SP")
        assert len(timeline.samples) > 10
        assert timeline.n_windows == 8
        for sample in timeline.samples:
            assert len(sample.cells) == 8

    def test_max_samples_respected(self):
        timeline = _run("SP", max_samples=5)
        assert 0 < len(timeline.samples) <= 5
        assert timeline.dropped > 0
        assert "dropped" in timeline.render()

    def test_decimation_spans_whole_run(self):
        """Overflowing the budget decimates in place (keep every other
        sample, double the stride) instead of truncating, so the last
        retained sample is from the run's tail, not its head."""
        full = _run("SP", max_samples=4096)
        small = _run("SP", max_samples=8)
        assert len(small.samples) <= 8
        # All snapshots are accounted for: kept + dropped == taken.
        assert len(small.samples) + small.dropped == len(full.samples)
        # End-to-end coverage: the decimated timeline still reaches
        # (close to) the final dispatch of the run.
        last_full = full.samples[-1].cycle
        last_small = small.samples[-1].cycle
        assert last_small >= last_full * 0.7

    def test_decimation_keeps_even_spacing(self):
        full = _run("SP", max_samples=4096)
        small = _run("SP", max_samples=8)
        # The retained samples are a strided subsequence of the full
        # ones: every kept cycle also appears in the full timeline.
        full_cycles = [s.cycle for s in full.samples]
        kept = [s.cycle for s in small.samples]
        assert all(c in full_cycles for c in kept)
        assert kept == sorted(kept)


class TestAnalysis:
    def test_sharing_keeps_more_frames_resident(self):
        """The visual signature of sharing: suspended threads' frames
        stay in the file, so mean live-frame occupancy is higher than
        under NS (which wipes the file at every switch)."""
        ns = _run("NS")
        sp = _run("SP")
        assert sp.occupancy_ratio() > ns.occupancy_ratio()

    def test_occupancy_ratio_bounds(self):
        timeline = _run("SNP")
        assert 0.0 < timeline.occupancy_ratio() < 1.0

    def test_windows_shared_by_multiple_threads_over_time(self):
        timeline = _run("SNP", n_windows=5)
        assert any(timeline.distinct_owners(w) >= 2
                   for w in range(5))

    def test_empty_timeline_safe(self):
        timeline = OccupancyTimeline()
        assert timeline.occupancy_ratio() == 0.0
        assert timeline.churn() == 0.0
        assert timeline.render() == "(no samples)"


class TestRendering:
    def test_render_shape(self):
        timeline = _run("SP", n_windows=6)
        text = timeline.render(max_columns=20)
        lines = text.splitlines()
        assert lines[0].startswith("W0 ")
        assert lines[5].startswith("W5 ")
        body = lines[0][4:]
        assert len(body) <= 20

    def test_render_contains_thread_glyphs(self):
        timeline = _run("SP")
        text = timeline.render()
        assert "0" in text or "1" in text
        assert "." in text
