"""The exporter (`python -m repro.metrics.export`) and dashboard
(`python -m repro.metrics.top`) CLIs, driven in-process."""

import json

import pytest

from repro.metrics.export import load_snapshot, main as export_main
from repro.metrics.report import to_json as report_to_json
from repro.metrics.telemetry import (
    MetricsRegistry,
    snapshot_to_json,
    write_snapshot,
)
from repro.metrics.top import main as top_main, render, update_history


def _snapshot(with_profile=True):
    reg = MetricsRegistry()
    reg.counter("sim_saves", help="saves").inc(12)
    reg.gauge("sim_steps").set(400)
    h = reg.histogram("sim_switch_cycles_hist", (8, 16, 32),
                      labels={"scheme": "SP"})
    for v in (8, 9, 40):
        h.observe(v)
    profile = None
    if with_profile:
        profile = {"every": 64, "check_steps": 32, "samples": 2,
                   "checks": 4, "ops": {"Tick": 60, "Switch": 40},
                   "stacks": {"T1;main": 70, "T2;main;helper": 30},
                   "occupancy": [[64, 3], [128, 5]]}
    return reg.snapshot(meta={"scheme": "SP", "n_windows": 8},
                        profile=profile)


class TestExportCLI:
    def test_prometheus_default(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        write_snapshot(_snapshot(), path)
        assert export_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert 'repro_sim_saves{n_windows="8",scheme="SP"} 12' in out
        assert 'repro_sim_switch_cycles_hist_bucket' in out

    def test_flamegraph_written_to_file(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        flame = tmp_path / "flame.json"
        write_snapshot(_snapshot(), path)
        assert export_main([str(path), "--flamegraph", str(flame)]) == 0
        tree = json.loads(flame.read_text())
        assert tree["name"] == "all"
        assert tree["value"] == 100
        names = {c["name"] for c in tree["children"]}
        assert names == {"T1", "T2"}

    def test_collapsed_stacks(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        write_snapshot(_snapshot(), path)
        assert export_main([str(path), "--collapsed"]) == 0
        out = capsys.readouterr().out
        assert "T1;main 70" in out
        assert "T2;main;helper 30" in out

    def test_flamegraph_without_profile_fails(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        write_snapshot(_snapshot(with_profile=False), path)
        assert export_main([str(path), "--flamegraph"]) == 1
        assert "no profiler stacks" in capsys.readouterr().err

    def test_reads_snapshot_embedded_in_run_report(self, tmp_path):
        snap = _snapshot()
        report = {"schema": "repro.run-report", "version": 1,
                  "metrics": snap}
        path = tmp_path / "report.json"
        path.write_text(report_to_json(report))
        assert load_snapshot(path) == snap

    def test_report_without_metrics_section_fails(self, tmp_path,
                                                  capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"schema": "repro.run-report",
                                    "version": 1}))
        assert export_main([str(path)]) == 1
        assert "no embedded metrics" in capsys.readouterr().err

    def test_unrecognised_schema_fails(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something.else"}))
        assert export_main([str(path)]) == 1


class TestTopCLI:
    def test_once_renders_everything(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        write_snapshot(_snapshot(), path)
        assert top_main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro.metrics-snapshot v1" in out
        assert "scheme=SP" in out
        assert "sim_saves" in out
        assert "sim_switch_cycles_hist" in out
        assert "cycles by op" in out
        assert "Tick 60%" in out

    def test_once_missing_file_fails(self, tmp_path, capsys):
        assert top_main([str(tmp_path / "nope.json"), "--once"]) == 1

    def test_once_invalid_document_fails(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        assert top_main([str(path), "--once"]) == 1

    def test_history_tracks_ratio_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("engine_worker_utilization").set(0.5)
        reg.gauge("engine_cache_hit_ratio").set(0.25)
        snap = reg.snapshot(meta={"kind": "engine"})
        history = {}
        update_history(history, snap, 1)
        reg.gauge("engine_worker_utilization").set(0.75)
        update_history(history, reg.snapshot(meta={"kind": "engine"}), 2)
        assert history["engine_worker_utilization"] == [(1.0, 0.5),
                                                        (2.0, 0.75)]
        text = render(snap, history)
        assert "trend (per snapshot generation)" in text

    def test_render_is_deterministic(self):
        snap = _snapshot()
        assert render(snap) == render(snap)
        assert snapshot_to_json(snap)  # still a valid document
