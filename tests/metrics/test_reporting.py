"""Text tables and ASCII charts."""

from repro.metrics.reporting import ascii_chart, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 22222]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "alpha" in lines[2]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0]])
        assert "0.123" in text
        assert "12346" in text


class TestAsciiChart:
    def test_plots_all_series(self):
        chart = ascii_chart({
            "one": [(4, 10.0), (8, 5.0)],
            "two": [(4, 12.0), (8, 6.0)],
        }, width=32, height=8, title="T")
        assert "T" in chart
        assert "o" in chart and "x" in chart
        assert "one" in chart and "two" in chart

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"

    def test_single_point(self):
        chart = ascii_chart({"s": [(4, 1.0)]}, width=16, height=4)
        assert "o" in chart

    def test_flat_series(self):
        chart = ascii_chart({"s": [(1, 5.0), (2, 5.0)]}, width=16,
                            height=4)
        assert "o" in chart

    @staticmethod
    def _markers(chart, marker="o"):
        grid = [ln for ln in chart.splitlines() if "|" in ln]
        return sum(ln.count(marker) for ln in grid)

    def test_negative_values(self):
        chart = ascii_chart({"s": [(0, -4.0), (1, 3.0), (2, -1.0)]},
                            width=16, height=6)
        assert "-4" in chart  # y axis reaches below zero
        assert "3" in chart
        assert self._markers(chart) == 3

    def test_all_negative_values(self):
        chart = ascii_chart({"s": [(0, -8.0), (1, -2.0)]}, width=16,
                            height=6)
        assert "-8" in chart
        assert self._markers(chart) == 2

    def test_more_series_than_markers(self):
        series = {"s%d" % i: [(i, float(i))] for i in range(12)}
        chart = ascii_chart(series, width=32, height=8)
        # only the first 8 series get a marker (markers are exhausted);
        # the chart must still render without raising
        assert "s0" in chart and "s7" in chart
        assert "s8" not in chart.splitlines()[-1]

    def test_single_series_negative_and_zero(self):
        chart = ascii_chart({"s": [(0, 0.0), (1, -1.0)]}, width=8,
                            height=4)
        assert "(no data)" not in chart
