"""The structured trace-event bus and its recorder."""

from repro import Call, CloseStream, Kernel, Read, Tick, Write, YieldCPU
from repro.metrics.behavior import BehaviorTracker
from repro.metrics.events import EventBus, TraceRecorder, percentile
from repro.metrics.tracing import OccupancyTimeline


def _leaf(n):
    yield Tick(3)
    return n


def _producer(stream, items):
    for i in range(items):
        yield Call(_leaf, i)
        yield Write(stream, bytes([i % 251]))
    yield CloseStream(stream)
    return items


def _consumer(stream):
    total = 0
    while True:
        data = yield Read(stream, 4)
        if not data:
            return total
        total += sum(data)


def _run_traced(scheme="SP", n_windows=8, items=30):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    recorder = kernel.enable_tracing()
    stream = kernel.stream(2, "s")
    kernel.spawn(_producer, stream, items, name="p")
    kernel.spawn(_consumer, stream, name="c")
    result = kernel.run()
    return kernel, result, recorder


class TestEventBus:
    def test_disabled_by_default(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        assert kernel.events.active is False
        # The same bus instance is shared by every publisher.
        assert kernel.cpu.events is kernel.events
        assert kernel.scheme.events is kernel.events
        assert kernel.ready.events is kernel.events
        assert kernel.stream(4).events is kernel.events

    def test_subscribe_unsubscribe_toggles_active(self):
        bus = EventBus()
        seen = []

        def consume(event):
            seen.append(event)

        handle = bus.subscribe(consume)
        assert handle is consume
        assert bus.active
        bus.emit("save", tid=1, depth=2)
        assert len(seen) == 1 and seen[0].kind == "save"
        assert seen[0].tid == 1 and seen[0].get("depth") == 2
        bus.unsubscribe(consume)
        assert bus.active is False
        bus.emit("save", tid=1, depth=3)
        assert len(seen) == 1  # no longer delivered

    def test_clock_stamps_events(self):
        ticks = [0]
        bus = EventBus(clock=lambda: ticks[0])
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        ticks[0] = 42
        bus.emit("b")
        assert [e.cycle for e in seen] == [0, 42]

    def test_consumer_object_with_on_event(self):
        bus = EventBus()
        recorder = TraceRecorder()
        bus.subscribe(recorder)
        bus.emit("spawn", tid=0, name="x")
        assert len(recorder) == 1
        bus.unsubscribe(recorder)
        bus.emit("spawn", tid=1, name="y")
        assert len(recorder) == 1
        assert bus.active is False


class TestKernelPublishing:
    def test_event_counts_match_counters(self):
        __, result, recorder = _run_traced()
        by_kind = recorder.by_kind()
        c = result.counters
        assert by_kind["save"] == c.saves
        assert by_kind["restore"] == c.restores
        assert by_kind["switch"] == c.context_switches
        assert by_kind.get("overflow", 0) == c.overflow_traps
        assert by_kind.get("underflow", 0) == c.underflow_traps
        assert by_kind["spawn"] == len(result.threads)
        assert by_kind["retire"] == len(result.threads)
        assert by_kind["run_end"] == 1

    def test_block_wake_pairing(self):
        __, __, recorder = _run_traced()
        blocks = recorder.filter(kinds=("block",))
        wakes = recorder.filter(kinds=("wake",))
        assert blocks and wakes
        for event in blocks:
            assert event.attrs["op"] in ("read", "write", "join")
            assert event.attrs["on"]

    def test_events_are_cycle_ordered(self):
        __, __, recorder = _run_traced()
        cycles = [e.cycle for e in recorder]
        assert cycles == sorted(cycles)
        assert cycles[-1] > 0

    def test_stream_close_event(self):
        __, __, recorder = _run_traced()
        closes = recorder.filter(kinds=("stream_close",))
        assert len(closes) == 1
        assert closes[0].attrs["stream"] == "s"
        # the close fires when the producer closes; the consumer may
        # not have drained the buffer yet
        assert closes[0].attrs["written"] == 30
        assert 0 < closes[0].attrs["read"] <= 30

    def test_switch_events_carry_transfers(self):
        __, result, recorder = _run_traced(scheme="NS", n_windows=5)
        switches = recorder.filter(kinds=("switch",))
        assert sum(e.attrs["cycles"] for e in switches) == \
            result.counters.switch_cycles
        assert sum(e.attrs["saves"] for e in switches) <= \
            result.counters.windows_spilled

    def test_yield_event(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        recorder = kernel.enable_tracing()

        def yielder():
            yield Tick(1)
            yield YieldCPU()
            return 1

        kernel.spawn(yielder, name="a")
        kernel.spawn(yielder, name="b")
        kernel.run()
        assert recorder.filter(kinds=("yield",))

    def test_untraced_run_emits_nothing(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        stream = kernel.stream(2, "s")
        kernel.spawn(_producer, stream, 10, name="p")
        kernel.spawn(_consumer, stream, name="c")
        result = kernel.run()
        assert result.counters.saves > 0  # ran fine, no bus activity


class TestLegacyAliases:
    def test_tracker_alias_subscribes(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        tracker = BehaviorTracker()
        kernel.tracker = tracker
        assert kernel.tracker is tracker
        assert kernel.events.active
        stream = kernel.stream(2, "s")
        kernel.spawn(_producer, stream, 20, name="p")
        kernel.spawn(_consumer, stream, name="c")
        kernel.run()
        assert tracker.quanta
        assert tracker.granularity() > 0

    def test_timeline_alias_subscribes(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        timeline = OccupancyTimeline()
        kernel.timeline = timeline
        assert kernel.timeline is timeline
        stream = kernel.stream(2, "s")
        kernel.spawn(_producer, stream, 20, name="p")
        kernel.spawn(_consumer, stream, name="c")
        kernel.run()
        assert timeline.samples
        assert timeline.n_windows == 8

    def test_replacing_tracker_unsubscribes_old(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        first = BehaviorTracker()
        kernel.tracker = first
        second = BehaviorTracker()
        kernel.tracker = second
        kernel.tracker = None
        assert kernel.events.active is False

    def test_tracker_matches_hand_wired_semantics(self):
        """Bus-fed quanta must equal what the old direct hooks
        produced: one quantum per dispatch, closed at run end."""
        kernel = Kernel(n_windows=8, scheme="SP")
        tracker = BehaviorTracker()
        kernel.tracker = tracker
        stream = kernel.stream(2, "s")
        kernel.spawn(_producer, stream, 15, name="p")
        kernel.spawn(_consumer, stream, name="c")
        result = kernel.run()
        assert len(tracker.quanta) == result.counters.context_switches
        for q in tracker.quanta:
            assert q.max_depth >= q.min_depth >= 1


class TestRecorderStats:
    def test_percentile(self):
        values = list(range(101))  # 0..100, odd length
        assert percentile(values, 0) == 0.0
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile([7], 95) == 7.0
        assert percentile([], 50) == 0.0
        assert percentile([3, 1, 2], 50) == 2.0  # sorts its input

    def test_switch_cost_stats(self):
        __, result, recorder = _run_traced()
        stats = recorder.switch_cost_stats()
        assert stats["count"] == result.counters.context_switches
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
        assert stats["mean"] * stats["count"] == \
            result.counters.switch_cycles

    def test_per_thread_cycles_bounded_by_total(self):
        __, result, recorder = _run_traced()
        per = recorder.per_thread_cycles()
        assert per
        assert sum(per.values()) <= result.counters.total_cycles

    def test_filter(self):
        __, __, recorder = _run_traced()
        saves = recorder.filter(kinds=("save",), tid=0)
        assert saves
        assert all(e.kind == "save" and e.tid == 0 for e in saves)
        mid = recorder.events[len(recorder.events) // 2].cycle
        late = recorder.filter(start=mid)
        assert all(e.cycle >= mid for e in late)

    def test_event_to_dict_and_str(self):
        __, __, recorder = _run_traced()
        event = recorder.filter(kinds=("switch",))[0]
        d = event.to_dict()
        assert d["kind"] == "switch" and "cycles" in d
        assert "switch" in str(event)
