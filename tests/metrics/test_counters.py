"""Counter bookkeeping."""

import pytest

from repro.metrics.counters import Counters


class TestCounters:
    def test_trap_probability(self):
        c = Counters()
        for __ in range(8):
            c.record_save(0)
        for __ in range(2):
            c.record_restore(0)
        c.record_trap("overflow", 0, 50, spilled=True)
        c.record_trap("underflow", 0, 40, restored=True)
        assert c.trap_probability == pytest.approx(2 / 10)
        assert c.window_traps == 2
        assert c.windows_spilled == 1
        assert c.windows_restored == 1

    def test_trap_probability_empty(self):
        assert Counters().trap_probability == 0.0

    def test_avg_switch_cycles(self):
        c = Counters()
        c.record_switch(None, 1, 0, 0, 100)
        c.record_switch(1, 2, 1, 1, 200)
        assert c.avg_switch_cycles == 150.0
        assert c.context_switches == 2
        assert c.transfer_histogram() == {(0, 0): 1, (1, 1): 1}

    def test_avg_switch_cycles_empty(self):
        assert Counters().avg_switch_cycles == 0.0

    def test_unknown_trap_kind_rejected(self):
        with pytest.raises(ValueError):
            Counters().record_trap("sideways", 0, 1)

    def test_cycle_categories_sum(self):
        c = Counters()
        c.record_compute(10)
        c.record_call_cycles(5)
        c.record_trap("overflow", 0, 30)
        c.record_switch(None, 0, 0, 0, 55)
        assert c.total_cycles == 100

    def test_per_thread_counters(self):
        c = Counters()
        c.record_save(3)
        c.record_save(3)
        c.record_save(5)
        c.record_switch(None, 3, 0, 0, 10)
        assert c.per_thread_saves == {3: 2, 5: 1}
        assert c.per_thread_switches == {3: 1}

    def test_per_thread_restores(self):
        c = Counters()
        c.record_save(3)
        c.record_restore(3)
        c.record_restore(3)
        c.record_restore(7)
        assert c.per_thread_restores == {3: 2, 7: 1}
        assert c.restores == 3
        assert sum(c.per_thread_restores.values()) == c.restores

    def test_trace_kept_only_when_asked(self):
        c = Counters()
        c.record_switch(None, 0, 0, 0, 10)
        c.record_trap("overflow", 0, 30)
        assert c.switch_trace == [] and c.trap_trace == []
        c.keep_trace = True
        c.record_switch(0, 1, 1, 0, 20)
        c.record_trap("underflow", 1, 40, restored=True)
        assert len(c.switch_trace) == 1
        assert c.switch_trace[0].in_tid == 1
        assert len(c.trap_trace) == 1
        assert c.trap_trace[0].restored

    def test_snapshot_keys(self):
        snap = Counters().snapshot()
        assert snap["total_cycles"] == 0
        assert set(snap) >= {"saves", "restores", "overflow_traps",
                             "underflow_traps", "context_switches",
                             "per_thread_saves", "per_thread_restores"}

    def test_snapshot_per_thread_maps(self):
        c = Counters()
        c.record_save(1)
        c.record_restore(1)
        c.record_restore(2)
        snap = c.snapshot()
        assert snap["per_thread_saves"] == {1: 1}
        assert snap["per_thread_restores"] == {1: 1, 2: 1}
        # snapshot returns copies, not live references
        snap["per_thread_restores"][9] = 99
        assert 9 not in c.per_thread_restores
