"""The trace CLI (``python -m repro.metrics.trace``)."""

import json

from repro.metrics.report import from_json
from repro.metrics.trace import main


class TestTraceCli:
    def test_default_summary(self, capsys):
        assert main(["--app", "pingpong", "--rounds", "30"]) == 0
        out = capsys.readouterr().out
        assert "per-thread cycle attribution" in out
        assert "context-switch cost (cycles)" in out
        assert "events by kind" in out
        assert "p50" in out and "p99" in out

    def test_list_with_filters(self, capsys):
        assert main(["--app", "pingpong", "--rounds", "30", "--list",
                     "--kind", "switch,overflow", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if " switch " in ln
                 or " overflow " in ln]
        assert lines and len(lines) <= 6  # 5 events + possible header hit
        assert "dispatch" not in out

    def test_perfetto_and_report_export(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        assert main(["--app", "forkjoin", "--rounds", "10",
                     "--scheme", "NS", "--windows", "6",
                     "--perfetto", str(trace_path),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote Perfetto trace" in out
        assert "wrote RunReport" in out
        # exporting suppresses the summary unless asked for
        assert "per-thread cycle attribution" not in out

        trace = json.loads(trace_path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

        report = from_json(report_path.read_text())
        assert report["config"]["app"] == "forkjoin"
        assert report["config"]["scheme"] == "NS"
        assert report["events"]["total"] > 0

    def test_spellcheck_app_tiny(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["--scale", "0.02", "--report", str(report_path),
                     "--summary"]) == 0
        out = capsys.readouterr().out
        assert "per-thread cycle attribution" in out
        report = from_json(report_path.read_text())
        assert len(report["threads"]) == 7  # the paper's 7-thread pipeline
        assert report["config"]["app"] == "spellcheck"


class TestTraceCliFaults:
    def test_fault_events_visible_in_list(self, capsys):
        assert main(["--scale", "0.02", "--faults",
                     "sched@2,store_delay@1", "--list",
                     "--kind", "fault"]) == 0
        out = capsys.readouterr().out
        assert "faults fired: " in out
        assert "fault=sched" in out
        assert "fault=store_delay" in out

    def test_detected_fault_exits_nonzero_with_bundle(self, capsys,
                                                      tmp_path):
        code = main(["--scale", "0.05", "--windows", "6",
                     "--faults", "retval@5", "--audit",
                     "--crash-dir", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "simulator fault: WindowIntegrityError" in err
        assert "python -m repro.faults replay" in err
        assert list(tmp_path.glob("crash-*.json"))
