"""RunReport: versioned JSON documents that round-trip losslessly."""

import json

import pytest

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.metrics.behavior import BehaviorTracker
from repro.metrics.report import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    build_run_report,
    from_json,
    to_json,
    write_report,
)
from repro.metrics.tracing import OccupancyTimeline


def _worker(n):
    yield Tick(2)
    return n


def _producer(stream, items):
    for i in range(items):
        yield Call(_worker, i)
        yield Write(stream, b"x")
    yield CloseStream(stream)
    return items


def _consumer(stream):
    read = 0
    while True:
        data = yield Read(stream, 4)
        if not data:
            return read
        read += len(data)


def _instrumented_run(scheme="SNP", n_windows=6, items=40):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    recorder = kernel.enable_tracing()
    tracker = BehaviorTracker()
    kernel.tracker = tracker
    timeline = OccupancyTimeline()
    kernel.timeline = timeline
    stream = kernel.stream(3, "pipe")
    kernel.spawn(_producer, stream, items, name="p")
    kernel.spawn(_consumer, stream, name="c")
    result = kernel.run()
    return build_run_report(
        result,
        config={"scheme": scheme, "n_windows": n_windows,
                "workload": "unit"},
        tracker=tracker, timeline=timeline, recorder=recorder), result


@pytest.fixture(scope="module")
def report_and_result():
    return _instrumented_run()


class TestRoundTrip:
    def test_emit_parse_same_numbers(self, report_and_result):
        report, __ = report_and_result
        assert from_json(to_json(report)) == report

    def test_json_is_plain(self, report_and_result):
        report, __ = report_and_result
        text = to_json(report)
        assert json.loads(text) == report  # no non-JSON types leaked

    def test_write_report(self, report_and_result, tmp_path):
        report, __ = report_and_result
        path = tmp_path / "run.json"
        assert write_report(report, str(path)) == str(path)
        assert from_json(path.read_text()) == report


class TestCountersSection:
    def test_matches_snapshot_exactly(self, report_and_result):
        report, result = report_and_result
        snap = result.counters.snapshot()
        section = report["counters"]
        for key, value in snap.items():
            if key in ("per_thread_saves", "per_thread_restores"):
                assert section[key] == {str(k): v
                                        for k, v in value.items()}
            else:
                assert section[key] == value, key
        hist = result.counters.transfer_histogram()
        assert section["switch_transfer_hist"] == {
            "%d,%d" % k: v for k, v in hist.items()}

    def test_threads_section(self, report_and_result):
        report, result = report_and_result
        assert len(report["threads"]) == len(result.threads)
        by_name = {t["name"]: t for t in report["threads"]}
        assert by_name["p"]["state"] == "done"
        assert by_name["p"]["calls"] == 40

    def test_events_section(self, report_and_result):
        report, __ = report_and_result
        events = report["events"]
        assert events["total"] == sum(events["by_kind"].values())
        assert events["switch_cost"]["count"] == \
            report["counters"]["context_switches"]
        per_thread = events["per_thread_cycles"]
        assert all(isinstance(k, str) for k in per_thread)
        assert sum(per_thread.values()) <= \
            report["counters"]["total_cycles"]

    def test_behavior_and_timeline_sections(self, report_and_result):
        report, __ = report_and_result
        assert report["behavior"]["quanta"] > 0
        assert report["behavior"]["granularity"] > 0
        assert report["timeline"]["samples"] > 0
        assert 0.0 < report["timeline"]["occupancy_ratio"] <= 1.0


class TestSchemaValidation:
    def test_header(self, report_and_result):
        report, __ = report_and_result
        assert report["schema"] == SCHEMA_NAME
        assert report["version"] == SCHEMA_VERSION

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            from_json(json.dumps({"schema": "other", "version": 1}))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            from_json("[1, 2, 3]")

    def test_rejects_future_version(self, report_and_result):
        report, __ = report_and_result
        bumped = dict(report, version=SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="newer"):
            from_json(json.dumps(bumped))

    def test_rejects_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            from_json(json.dumps({"schema": SCHEMA_NAME,
                                  "version": "one"}))

    def test_rejects_missing_sections(self):
        with pytest.raises(ValueError, match="counters"):
            from_json(json.dumps({"schema": SCHEMA_NAME, "version": 1}))


class TestOptionalSections:
    def test_bare_report(self):
        kernel = Kernel(n_windows=6, scheme="NS")
        stream = kernel.stream(3, "pipe")
        kernel.spawn(_producer, stream, 10, name="p")
        kernel.spawn(_consumer, stream, name="c")
        result = kernel.run()
        report = build_run_report(result)
        assert report["behavior"] is None
        assert report["timeline"] is None
        assert report["events"] is None
        assert report["config"] == {}
        assert from_json(to_json(report)) == report
