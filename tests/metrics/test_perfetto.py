"""Chrome trace-event export: valid JSON with the expected tracks."""

import json

import pytest

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.metrics.perfetto import (
    THREADS_PID,
    WINDOWS_PID,
    PerfettoExporter,
)


def _worker(n):
    yield Tick(2)
    return n


def _producer(stream, items):
    for i in range(items):
        yield Call(_worker, i)
        yield Write(stream, b"x")
    yield CloseStream(stream)
    return items


def _consumer(stream):
    read = 0
    while True:
        data = yield Read(stream, 4)
        if not data:
            return read
        read += len(data)


@pytest.fixture(scope="module")
def traced():
    kernel = Kernel(n_windows=6, scheme="SP")
    recorder = kernel.enable_tracing()
    exporter = PerfettoExporter()
    kernel.events.subscribe(exporter)
    stream = kernel.stream(3, "pipe")
    kernel.spawn(_producer, stream, 40, name="p")
    kernel.spawn(_consumer, stream, name="c")
    result = kernel.run()
    return exporter, recorder, result


class TestTraceJson:
    def test_loads_cleanly(self, traced):
        exporter, __, __unused = traced
        trace = json.loads(exporter.dumps())
        assert trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"

    def test_write(self, traced, tmp_path):
        exporter, __, __unused = traced
        path = tmp_path / "trace.json"
        assert exporter.write(str(path)) == str(path)
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_every_thread_has_a_duration_event(self, traced):
        exporter, __, result = traced
        quanta_tids = {e["tid"] for e in exporter.duration_events()
                       if e["pid"] == THREADS_PID}
        assert quanta_tids == {t.tid for t in result.threads}

    def test_instants_cover_every_trap(self, traced):
        exporter, __, result = traced
        traps = [e for e in exporter.instant_events()
                 if e["cat"] == "trap"]
        c = result.counters
        assert len(traps) == c.overflow_traps + c.underflow_traps
        assert all(e["ph"] == "i" and e["s"] == "t" for e in traps)

    def test_instant_count_matches_recorder(self, traced):
        exporter, recorder, __ = traced
        by_kind = recorder.by_kind()
        instants = exporter.instant_events()
        for kind in ("overflow", "underflow", "switch", "block", "wake"):
            got = sum(1 for e in instants if e["name"] == kind)
            assert got == by_kind.get(kind, 0), kind

    def test_window_track_slices(self, traced):
        exporter, __, __unused = traced
        windows = [e for e in exporter.duration_events()
                   if e["pid"] == WINDOWS_PID]
        assert windows
        for e in windows:
            assert 0 <= e["tid"] < 6  # track id is the window index
            assert e["dur"] >= 0
            assert e["args"]["owner"] >= 0

    def test_metadata_names_all_tracks(self, traced):
        exporter, __, result = traced
        trace = exporter.to_dict()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        assert process_names == {"threads", "windows"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"
                        and e["pid"] == THREADS_PID}
        assert {t.name for t in result.threads} <= thread_names

    def test_ready_queue_counter_track(self, traced):
        exporter, __, __unused = traced
        trace = exporter.to_dict()
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all(e["name"] == "ready_queue" for e in counters)

    def test_timestamps_are_cycles(self, traced):
        exporter, recorder, result = traced
        events = exporter.to_dict()["traceEvents"]
        last = max(e["ts"] + e.get("dur", 0) for e in events
                   if "ts" in e)
        assert last <= result.counters.total_cycles

    def test_finish_idempotent(self, traced):
        exporter, __, __unused = traced
        before = len(exporter.duration_events())
        exporter.finish()
        exporter.finish()
        assert len(exporter.duration_events()) == before


class TestExporterUnits:
    def test_quantum_closed_at_finish(self):
        from repro.metrics.events import EventBus

        bus = EventBus(clock=lambda: 0)
        exporter = PerfettoExporter()
        bus.subscribe(exporter)
        bus.emit("spawn", tid=0, name="solo")
        bus.emit("dispatch", tid=0, depth=1)
        exporter.finish(100)
        quanta = exporter.duration_events()
        assert len(quanta) == 1
        assert quanta[0]["tid"] == 0 and quanta[0]["dur"] == 100

    def test_counter_track_optional(self):
        exporter = PerfettoExporter(include_queue_counter=False)
        exporter.on_event(_event("enqueue", 5, tid=1, depth=3))
        assert exporter.to_dict()["traceEvents"] == \
            exporter._metadata()


def _event(kind, cycle, tid=None, **attrs):
    from repro.metrics.events import TraceEvent

    return TraceEvent(kind, cycle, tid, attrs)
