"""The §5 behaviour tracker and its aggregate measures."""

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.metrics.behavior import BehaviorTracker, Quantum


class TestQuantum:
    def test_windows_used(self):
        q = Quantum(0, 0, 100, min_depth=2, max_depth=5)
        assert q.windows_used == 4
        assert q.run_length == 100


class TestTrackerDirect:
    def test_quanta_recorded(self):
        t = BehaviorTracker()
        t.on_dispatch(0, 1, 0)
        t.on_depth(2)
        t.on_depth(3)
        t.on_depth(2)
        t.on_dispatch(1, 1, 50)
        t.on_depth(2)
        t.finish(80)
        assert len(t.quanta) == 2
        assert t.quanta[0].windows_used == 3
        assert t.quanta[0].run_length == 50
        assert t.quanta[1].windows_used == 2

    def test_window_activity_per_thread(self):
        t = BehaviorTracker()
        t.on_dispatch(7, 1, 0)
        t.on_depth(4)
        t.finish(10)
        assert t.window_activity_per_thread() == {7: 4.0}

    def test_concurrency_periods(self):
        t = BehaviorTracker()
        for i in range(6):
            t.on_dispatch(i % 2, 1, i * 10)
        t.finish(100)
        assert t.concurrency(period=4) == [2, 2]

    def test_total_window_activity_counts_slots_once(self):
        t = BehaviorTracker()
        t.on_dispatch(0, 1, 0)
        t.on_depth(3)          # slots (0,1..3)
        t.on_dispatch(0, 3, 10)
        t.on_depth(1)          # same slots again
        t.finish(20)
        assert t.total_window_activity(period=10) == [3]

    def test_empty_tracker_safe(self):
        t = BehaviorTracker()
        assert t.mean_window_activity() == 0.0
        assert t.mean_concurrency() == 0.0
        assert t.granularity() == 0.0


class TestTrackerInKernel:
    def _run(self, buffer_size):
        kernel = Kernel(n_windows=16, scheme="SP")
        kernel.tracker = BehaviorTracker()
        stream = kernel.stream(buffer_size, "s")

        def producer(s):
            for __ in range(64):
                yield Call(self_tick)
                yield Write(s, b"ab")
            yield CloseStream(s)
            return None

        def self_tick():
            yield Tick(10)
            return None

        def consumer(s):
            while True:
                data = yield Read(s, 16)
                if not data:
                    return None
                yield Call(self_tick)

        kernel.spawn(producer, stream, name="p")
        kernel.spawn(consumer, stream, name="c")
        kernel.run(max_steps=200_000)
        return kernel.tracker

    def test_finer_buffers_mean_finer_granularity(self):
        fine = self._run(buffer_size=1)
        coarse = self._run(buffer_size=32)
        assert fine.granularity() < coarse.granularity()
        assert len(fine.quanta) > len(coarse.quanta)

    def test_concurrency_measured(self):
        tracker = self._run(buffer_size=2)
        assert 1.0 < tracker.mean_concurrency(period=16) <= 2.0

    def test_total_window_activity_positive(self):
        tracker = self._run(buffer_size=2)
        assert tracker.mean_total_window_activity(period=16) >= 2
