"""The zero-cost tracing guard: every hot publisher mirrors
``EventBus.active`` into a local ``_tracing`` boolean via
``watch_activity``, so an uninstrumented run never builds event
kwargs.  These tests pin the mirroring contract the emit call sites
rely on."""

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.metrics.events import EventBus, RingRecorder
from repro.runtime.kernel import Kernel


def _publishers(kernel: Kernel):
    return (kernel, kernel.ready, kernel.cpu, kernel.scheme)


def test_watch_activity_calls_back_immediately():
    bus = EventBus()
    seen = []
    bus.watch_activity(seen.append)
    assert seen == [False]
    token = bus.subscribe(lambda event: None)
    assert seen == [False, True]
    bus.unsubscribe(token)
    assert seen == [False, True, False]


def test_publishers_mirror_bus_activity():
    kernel = Kernel(n_windows=8, scheme="SP")
    for pub in _publishers(kernel):
        assert pub._tracing is False
    recorder = RingRecorder()
    token = kernel.events.subscribe(recorder.on_event)
    for pub in _publishers(kernel):
        assert pub._tracing is True
    kernel.events.unsubscribe(token)
    for pub in _publishers(kernel):
        assert pub._tracing is False


def test_second_subscriber_keeps_guard_up():
    kernel = Kernel(n_windows=8, scheme="NS")
    first = kernel.events.subscribe(lambda event: None)
    second = kernel.events.subscribe(lambda event: None)
    kernel.events.unsubscribe(first)
    assert kernel.cpu._tracing is True  # one consumer still listening
    kernel.events.unsubscribe(second)
    assert kernel.cpu._tracing is False


def test_guarded_run_produces_identical_counters():
    """A subscribed (traced) run and a bare run agree on every counter
    — the guard changes cost, never behavior."""
    config = SpellConfig.named("high", "coarse", scale=0.05)
    bare, bare_out = run_spellchecker(8, "SNP", config)
    traced_events = []
    traced, traced_out = run_spellchecker(
        8, "SNP", config,
        instrument=lambda kernel: kernel.events.subscribe(
            traced_events.append))
    assert traced.steps == bare.steps
    assert traced.counters.snapshot() == bare.counters.snapshot()
    assert traced_out == bare_out
    assert traced_events  # the bus really was live
