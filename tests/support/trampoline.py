"""Test-only access to the retired step-granular reference loop.

The ``"generator"`` execution core is no longer a public ``core=``
choice (see :func:`repro.runtime.batch.resolve_core`): the batched
core is the runtime, and the step-granular trampoline
(:meth:`repro.runtime.kernel.Kernel._run_quantum`) survives only as

* the batched core's compat path for configurations that need
  per-step hooks (fault injection, watchdog, audit, tracing, step
  budgets), and
* the differential harness's *reference loop* — what the batched and
  compiled backends are pinned bit-identical against.

This module is the one sanctioned way for tests to run a kernel on
that reference loop.  It works by flipping the resolved ``core``
attribute *after* construction, which makes
``Kernel._run_to_completion`` treat every quantum as non-batchable and
route it through ``_run_quantum`` — the exact step-granular path the
runtime itself uses for fault-injected runs.
"""

from __future__ import annotations

from repro.runtime.batch import RETIRED_GENERATOR_CORE
from repro.runtime.kernel import Kernel

#: the name tests use to parameterize over {reference, batched}
REFERENCE_CORE = RETIRED_GENERATOR_CORE


def force_trampoline(kernel: Kernel) -> Kernel:
    """Pin an already-built kernel to the step-granular reference loop."""
    kernel.core = REFERENCE_CORE
    return kernel


def make_kernel(core=None, **kwargs) -> Kernel:
    """``Kernel(...)`` that still accepts ``core="generator"``.

    Drop-in for test fixtures that parameterize over execution cores:
    the retired name builds a batched kernel and forces the reference
    trampoline; anything else is passed through to ``Kernel`` (and
    validated there).
    """
    if core == REFERENCE_CORE:
        return force_trampoline(Kernel(core="batched", **kwargs))
    return Kernel(core=core, **kwargs)
