"""Test-support helpers (not part of the :mod:`repro` package)."""
