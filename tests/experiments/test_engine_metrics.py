"""Engine-side telemetry: the live metrics snapshot, the extended
stats line, and the strict runner-result protocol."""

import json

import pytest

from repro.experiments.engine import (
    Engine,
    EngineStats,
    PointFailure,
    PointSpec,
    _unpack,
    engine_metrics_snapshot,
    sweep_specs,
)
from repro.metrics.report import SCHEMA_NAME, SCHEMA_VERSION
from repro.metrics.telemetry import validate_snapshot


def fake_report(spec: PointSpec) -> dict:
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": spec.to_payload(),
        "counters": {"total_cycles": spec.n_windows * 100},
        "threads": [],
    }


def timed_runner(task):
    index, payload = task
    return index, fake_report(PointSpec.from_payload(payload)), None, 12.5


class TestUnpack:
    def test_four_tuple_round_trips(self):
        index, report, err, wall = _unpack((3, {"r": 1}, None, 7.5))
        assert (index, report, err, wall) == (3, {"r": 1}, None, 7.5)

    def test_removed_three_tuple_protocol_rejected(self):
        # The deprecated 3-tuple dialect was removed; a runner still
        # speaking it must fail loudly, not count as zero wall time.
        with pytest.raises(TypeError, match="3-tuple"):
            _unpack((3, {"r": 1}, None))

    def test_unexpected_shapes_rejected_not_sliced(self):
        # A runner protocol drift (say, a report plus a detached
        # metrics member) must fail loudly, never lose the member.
        with pytest.raises(TypeError, match="5-tuple"):
            _unpack((3, {"r": 1}, None, 7.5, {"metrics": {}}))
        with pytest.raises(TypeError, match="2-tuple"):
            _unpack((3, {"r": 1}))


class TestStatsLine:
    def test_line_reports_utilization_and_latency(self):
        stats = EngineStats(total=4, hits=1, executed=3,
                            point_wall_ms=[10.0, 20.0, 30.0],
                            utilization=0.5,
                            metrics_path="m.json")
        line = stats.summary(jobs=2)
        assert "4 points" in line
        assert "1 cached (25%)" in line
        assert "util 50%" in line
        assert "p50 20ms" in line
        assert "p99 30ms" in line
        assert "metrics=m.json" in line

    def test_line_without_telemetry_is_unchanged(self):
        line = EngineStats(total=2, hits=2).summary(jobs=1)
        assert "util" not in line and "metrics=" not in line

    def test_percentiles(self):
        stats = EngineStats(point_wall_ms=[5.0, 1.0, 9.0])
        assert stats.p50_ms == 5.0
        assert stats.p99_ms == 9.0


class TestEngineSnapshot:
    def test_document_validates_and_reflects_stats(self):
        stats = EngineStats(total=10, hits=4, executed=6, retried=2,
                            point_wall_ms=[15.0, 600.0],
                            hit_latency_ms=[0.3] * 4,
                            utilization=0.8,
                            failures=[PointFailure(
                                PointSpec("SP", 8, "high", "fine", 0.02),
                                1, "boom")],
                            quarantined=True)
        snap = validate_snapshot(engine_metrics_snapshot(
            stats, jobs=3, queue_depth=2, final=False))
        counters = {p["name"]: p["value"]
                    for p in snap["counters"].values()}
        assert counters["engine_points_total"] == 10
        assert counters["engine_cache_hits"] == 4
        assert counters["engine_points_executed"] == 6
        assert counters["engine_retries"] == 2
        assert counters["engine_failures"] == 1
        assert counters["engine_quarantined"] == 1
        gauges = {p["name"]: p["value"] for p in snap["gauges"].values()}
        assert gauges["engine_queue_depth"] == 2
        assert gauges["engine_jobs"] == 3
        assert gauges["engine_cache_hit_ratio"] == 0.4
        assert gauges["engine_worker_utilization"] == 0.8
        hists = {p["name"]: p for p in snap["histograms"].values()}
        assert hists["engine_point_wall_ms"]["count"] == 2
        assert hists["engine_cache_hit_ms"]["count"] == 4
        assert snap["meta"] == {"kind": "engine", "jobs": 3,
                                "complete": False}

    def test_final_snapshot_marks_complete(self):
        snap = engine_metrics_snapshot(EngineStats(), jobs=1, final=True)
        assert snap["meta"]["complete"] is True


class TestLiveSnapshotFile:
    def _specs(self):
        return sweep_specs(["SP"], [4, 6], ["high"], ["fine"], 0.02)

    def test_run_writes_valid_snapshot_and_path(self, tmp_path):
        out = tmp_path / "engine-metrics.json"
        engine = Engine(jobs=1, cache_dir=None, runner=timed_runner,
                        metrics_out=out)
        specs = self._specs()
        reports = engine.run_reports(specs)
        assert len(reports) == len(specs)
        snap = validate_snapshot(json.loads(out.read_text()))
        assert snap["meta"]["complete"] is True
        counters = {p["name"]: p["value"]
                    for p in snap["counters"].values()}
        assert counters["engine_points_executed"] == len(specs)
        gauges = {p["name"]: p["value"] for p in snap["gauges"].values()}
        assert gauges["engine_queue_depth"] == 0
        assert engine.last_stats.metrics_path == str(out)
        assert "metrics=%s" % out in engine.last_stats.summary(1)
        # worker-reported wall times flowed into the histogram
        hists = {p["name"]: p for p in snap["histograms"].values()}
        assert hists["engine_point_wall_ms"]["count"] == len(specs)
        assert hists["engine_point_wall_ms"]["sum"] == 12.5 * len(specs)

    def test_three_tuple_runner_fails_loudly(self):
        def legacy_runner(task):
            index, payload = task
            return index, fake_report(PointSpec.from_payload(payload)), None

        engine = Engine(jobs=1, cache_dir=None, runner=legacy_runner)
        with pytest.raises(TypeError, match="3-tuple"):
            engine.run_reports(self._specs())

    def test_no_metrics_out_writes_nothing(self, tmp_path):
        engine = Engine(jobs=1, cache_dir=None, runner=timed_runner)
        engine.run_reports(self._specs())
        assert engine.last_stats.metrics_path is None
        assert list(tmp_path.iterdir()) == []
