"""Differential tests: the engine's parallel and cached paths must be
bit-identical to the direct serial harness, and the three schemes must
agree on every architectural result while differing only in
window-traffic counters.

The grid here is a reduced version of the paper's sweep — two window
counts x two (concurrency, granularity) corners x all three schemes —
small enough for CI, wide enough to cross the overflow/underflow
regimes (4 windows thrashes, 8 mostly fits).
"""

from dataclasses import asdict

import pytest

from repro.experiments.engine import Engine, PointSpec
from repro.experiments.harness import run_point
from repro.metrics.report import to_json

SCALE = 0.02
GRID = [
    PointSpec(scheme, n_windows, concurrency, granularity, SCALE)
    for concurrency, granularity in (("high", "fine"), ("low", "coarse"))
    for n_windows in (4, 8)
    for scheme in ("NS", "SNP", "SP")
]

#: ExperimentPoint fields the schemes may legitimately disagree on:
#: everything driven by how windows physically move, and nothing else.
TRAFFIC_FIELDS = {
    "scheme", "total_cycles", "switch_cycles", "trap_cycles",
    "avg_switch_cycles", "overflow_traps", "underflow_traps",
    "trap_probability",
}


@pytest.fixture(scope="module")
def direct_points():
    """The reference path: plain serial run_point, no engine."""
    return [run_point(s.scheme, s.n_windows, s.concurrency,
                      s.granularity, scale=s.scale) for s in GRID]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("sweep-cache")


@pytest.fixture(scope="module")
def parallel_engine(cache_dir):
    """A 2-worker engine whose first run populates the shared cache."""
    engine = Engine(jobs=2, cache_dir=cache_dir)
    engine.run_reports(GRID)
    assert engine.last_stats.executed == len(GRID)
    return engine


class TestEngineMatchesSerial:
    def test_parallel_equals_direct(self, parallel_engine, direct_points):
        assert parallel_engine.run_points(GRID) == direct_points

    def test_cached_equals_direct(self, parallel_engine, direct_points,
                                  cache_dir):
        fresh = Engine(jobs=1, cache_dir=cache_dir)
        points = fresh.run_points(GRID)
        assert fresh.last_stats.hits == len(GRID)
        assert fresh.last_stats.executed == 0
        assert points == direct_points

    def test_serial_engine_equals_direct(self, direct_points):
        engine = Engine(jobs=1, cache_dir=None)
        assert engine.run_points(GRID) == direct_points

    def test_reports_bit_identical_across_worker_counts(
            self, parallel_engine, cache_dir):
        """The determinism contract at the artifact level: the cached
        documents (produced by 2 workers) serialize byte-for-byte the
        same as a fresh serial in-process run."""
        cached = Engine(jobs=1, cache_dir=cache_dir).run_reports(GRID)
        serial = Engine(jobs=1, cache_dir=None).run_reports(GRID)
        for spec, a, b in zip(GRID, cached, serial):
            assert to_json(a) == to_json(b), spec.label


class TestSchemesAgreeArchitecturally:
    def by_config(self, points):
        grouped = {}
        for point in points:
            key = (point.n_windows, point.concurrency, point.granularity)
            grouped.setdefault(key, {})[point.scheme] = asdict(point)
        return grouped

    def test_architectural_results_identical(self, direct_points):
        """Same program, same schedule: NS, SNP and SP must execute the
        identical instruction stream — same spellcheck output, same
        per-thread save/switch counts — at every grid point."""
        for key, by_scheme in self.by_config(direct_points).items():
            assert set(by_scheme) == {"NS", "SNP", "SP"}, key
            ns, snp, sp = (by_scheme[s] for s in ("NS", "SNP", "SP"))
            for field in ("output_bytes", "saves", "restores",
                          "compute_cycles", "context_switches",
                          "per_thread_saves", "per_thread_switches"):
                assert ns[field] == snp[field] == sp[field], (key, field)

    def test_schemes_differ_only_in_window_traffic(self, direct_points):
        for key, by_scheme in self.by_config(direct_points).items():
            schemes = list(by_scheme.values())
            for a, b in zip(schemes, schemes[1:]):
                differing = {f for f in a if a[f] != b[f]}
                assert differing <= TRAFFIC_FIELDS, (key, differing)

    def test_window_traffic_does_differ(self, direct_points):
        """The schemes are not accidentally identical: at the
        4-window thrashing corner their cycle totals must diverge."""
        grouped = self.by_config(direct_points)
        thrash = grouped[(4, "high", "fine")]
        totals = {s: p["total_cycles"] for s, p in thrash.items()}
        assert len(set(totals.values())) > 1, totals
