"""The ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


def test_table2_target(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "145 - 149" in out


def test_figure_target_with_tiny_sweep(capsys):
    assert main(["fig13", "--scale", "0.02", "--windows", "4,8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    assert "computed in" in out


def test_table1_target(capsys):
    assert main(["table1", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "T6.dict1" in out
    assert "paper" in out


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
