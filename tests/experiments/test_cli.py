"""The ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI sweeps out of the user-level result cache; also
    exercises the REPRO_CACHE_DIR knob the engine documents."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_table2_target(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "145 - 149" in out
    assert "engine: 3 points" in out


def test_figure_target_with_tiny_sweep(capsys):
    assert main(["fig13", "--scale", "0.02", "--windows", "4,8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out
    assert "computed in" in out


def test_table1_target(capsys):
    assert main(["table1", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "T6.dict1" in out
    assert "paper" in out


def test_repeated_figure_run_is_pure_cache_hits(capsys):
    args = ["fig12", "--scale", "0.02", "--windows", "4,6",
            "--jobs", "2"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "18 executed" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "18 cached (100%), 0 executed" in second
    # the cached run renders the identical figure (everything up to
    # the wall-clock line)
    assert (first.split("(fig12 computed")[0]
            == second.split("(fig12 computed")[0])


def test_no_cache_forces_execution(capsys):
    args = ["fig13", "--scale", "0.02", "--windows", "4", "--no-cache"]
    assert main(args) == 0
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 cached (0%), 9 executed" in out


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_keep_going_quarantines_and_names_the_manifest(capsys):
    assert main(["fig13", "--scale", "0.02", "--windows", "6",
                 "--jobs", "2", "--faults", "retval@5",
                 "--keep-going", "--retries", "1"]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert "failure manifest: " in out


def test_injected_fault_without_keep_going_fails_loudly(capsys):
    from repro.experiments.engine import EngineError

    with pytest.raises(EngineError) as info:
        main(["fig13", "--scale", "0.02", "--windows", "6",
              "--faults", "retval@5", "--retries", "1"])
    assert "WindowIntegrityError" in str(info.value)
