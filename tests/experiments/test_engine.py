"""The parallel cached sweep engine: keys, store, stats, retry, resume."""

import json

import pytest

from repro.experiments.engine import (
    CACHE_SCHEMA,
    Engine,
    EngineError,
    PointSpec,
    ResultCache,
    atomic_write_text,
    cache_fingerprint,
    cache_key,
    sweep_specs,
)
from repro.metrics.report import SCHEMA_NAME, SCHEMA_VERSION

SPEC = PointSpec("SP", 8, "high", "fine", 0.02)


def fake_report(spec: PointSpec) -> dict:
    """A minimal document that passes RunReport validation, derived
    deterministically from the spec so cache round-trips are checkable."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": spec.to_payload(),
        "counters": {"total_cycles": spec.n_windows * 100},
        "threads": [],
    }


def fake_runner(task):
    index, payload = task
    return index, fake_report(PointSpec.from_payload(payload)), None, 1.0


def failing_runner(task):
    index, __ = task
    return (index, None,
            "Traceback ...\nRuntimeError: point exploded\n", 1.0)


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        assert cache_key(SPEC) == cache_key(
            PointSpec("SP", 8, "high", "fine", 0.02))

    def test_every_spec_field_is_significant(self):
        variants = [
            PointSpec("SNP", 8, "high", "fine", 0.02),
            PointSpec("SP", 9, "high", "fine", 0.02),
            PointSpec("SP", 8, "low", "fine", 0.02),
            PointSpec("SP", 8, "high", "coarse", 0.02),
            PointSpec("SP", 8, "high", "fine", 0.03),
            PointSpec("SP", 8, "high", "fine", 0.02, seed=7),
            PointSpec("SP", 8, "high", "fine", 0.02, working_set=True),
        ]
        keys = {cache_key(v) for v in variants} | {cache_key(SPEC)}
        assert len(keys) == len(variants) + 1

    def test_fingerprint_invalidates(self):
        """Bumping the package version, the report schema or any cost
        constant re-keys every entry (the invalidation rule)."""
        base = cache_fingerprint()
        for mutate in (
            lambda fp: fp.update(repro_version="999.0"),
            lambda fp: fp.update(report_version=SCHEMA_VERSION + 1),
            lambda fp: fp["cost_model"].update(ns_per_save=1),
        ):
            fp = json.loads(json.dumps(base))
            mutate(fp)
            assert cache_key(SPEC, fp) != cache_key(SPEC, base)

    def test_fingerprint_covers_cost_model(self):
        assert "ns_per_save" in cache_fingerprint()["cost_model"]

    def test_fingerprint_covers_source_tree(self):
        """Editing any simulator source re-keys the cache, even with
        an unchanged version string."""
        fp = cache_fingerprint()
        assert len(fp["source_digest"]) == 64
        mutated = json.loads(json.dumps(fp))
        mutated["source_digest"] = "0" * 64
        assert cache_key(SPEC, mutated) != cache_key(SPEC, fp)


class TestAtomicWrite:
    def test_writes_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "deep" / "out.json"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        atomic_write_text(target, "replaced")
        assert target.read_text() == "replaced"
        assert [p.name for p in target.parent.iterdir()] == ["out.json"]


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(SPEC)
        assert key not in cache
        cache.put(key, fake_report(SPEC))
        assert key in cache
        assert cache.get(key) == fake_report(SPEC)
        assert cache.keys() == [key]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(SPEC)
        cache.put(key, fake_report(SPEC))
        path = cache._path(key)
        path.write_text(path.read_text()[:17])  # truncate
        assert cache.get(key) is None

    def test_manifest_merge_and_layout_invalidation(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = cache_fingerprint()
        cache.update_manifest({"k1": SPEC.to_payload()}, fp)
        cache.update_manifest({"k2": SPEC.to_payload()}, fp)
        manifest = cache.read_manifest()
        assert set(manifest["entries"]) == {"k1", "k2"}
        assert manifest["schema"] == CACHE_SCHEMA
        # a future layout bump forgets the old entries
        manifest["version"] = 999
        atomic_write_text(cache.manifest_path(), json.dumps(manifest))
        assert cache.read_manifest()["entries"] == {}


class TestEngine:
    def grid(self):
        return sweep_specs("high", "fine", [4, 6, 8], ("NS", "SP"), 0.02)

    def test_results_in_spec_order(self, tmp_path):
        engine = Engine(jobs=1, cache_dir=tmp_path, runner=fake_runner)
        specs = self.grid()
        reports = engine.run_reports(specs)
        assert [r["config"] for r in reports] == [
            s.to_payload() for s in specs]
        assert engine.last_stats.executed == len(specs)
        assert engine.last_stats.hits == 0

    def test_second_run_is_pure_cache_hits(self, tmp_path):
        specs = self.grid()
        Engine(jobs=1, cache_dir=tmp_path, runner=fake_runner)\
            .run_reports(specs)
        engine = Engine(jobs=1, cache_dir=tmp_path, runner=failing_runner)
        reports = engine.run_reports(specs)  # runner never consulted
        assert engine.last_stats.hits == len(specs)
        assert engine.last_stats.executed == 0
        assert engine.last_stats.hit_ratio == 1.0
        assert reports[0]["config"] == specs[0].to_payload()

    def test_resume_executes_only_missing_points(self, tmp_path):
        """Checkpoint/resume: drop one object from an interrupted
        sweep's cache and only that point re-runs."""
        specs = self.grid()
        engine = Engine(jobs=1, cache_dir=tmp_path, runner=fake_runner)
        engine.run_reports(specs)
        victim = specs[2]
        engine.cache._path(cache_key(victim)).unlink()
        engine.run_reports(specs)
        assert engine.last_stats.executed == 1
        assert engine.last_stats.hits == len(specs) - 1
        assert cache_key(victim) in engine.cache

    def test_no_cache_dir_always_executes(self):
        engine = Engine(jobs=1, cache_dir=None, runner=fake_runner)
        engine.run_reports([SPEC])
        engine.run_reports([SPEC])
        assert engine.last_stats.executed == 1
        assert engine.last_stats.hits == 0

    def test_retry_recovers_flaky_point(self, tmp_path):
        attempts = []

        def flaky(task):
            attempts.append(task[0])
            if len(attempts) == 1:
                return task[0], None, "Traceback ...\nOSError: flake\n", 1.0
            return fake_runner(task)

        engine = Engine(jobs=1, cache_dir=tmp_path, retries=1,
                        runner=flaky)
        reports = engine.run_reports([SPEC])
        assert reports[0] == fake_report(SPEC)
        assert engine.last_stats.retried == 1
        assert engine.last_stats.executed == 1

    def test_persistent_failure_raises_with_labels(self):
        engine = Engine(jobs=1, cache_dir=None, retries=1,
                        runner=failing_runner)
        with pytest.raises(EngineError) as exc:
            engine.run_reports([SPEC])
        assert SPEC.label in str(exc.value)
        assert "point exploded" in str(exc.value)
        assert len(engine.last_stats.failures) == 1
        assert engine.last_stats.failures[0].attempts == 2

    def test_pool_path_preserves_order(self, tmp_path):
        specs = self.grid()
        engine = Engine(jobs=2, cache_dir=tmp_path, runner=fake_runner)
        reports = engine.run_reports(specs)
        assert [r["config"] for r in reports] == [
            s.to_payload() for s in specs]

    def test_progress_callback_phases(self, tmp_path):
        events = []

        def progress(phase, done, total, spec):
            events.append((phase, done, total))

        engine = Engine(jobs=1, cache_dir=tmp_path, runner=fake_runner,
                        progress=progress)
        engine.run_reports([SPEC])
        engine.run_reports([SPEC])
        assert events == [("done", 1, 1), ("hit", 1, 1)]

    def test_stats_summary_is_greppable(self, tmp_path):
        engine = Engine(jobs=3, cache_dir=tmp_path, runner=fake_runner)
        specs = self.grid()
        engine.run_reports(specs)
        engine.run_reports(specs)
        line = engine.last_stats.summary(engine.jobs)
        assert "%d cached (100%%)" % len(specs) in line
        assert "0 executed" in line


class TestFailurePolicy:
    """Retry classification, graceful degradation and the manifest."""

    def fatal_runner(self, task):
        index, __ = task
        return index, None, {
            "type": "WindowIntegrityError", "transient": False,
            "traceback": "Traceback ...\nWindowIntegrityError: boom\n"}, 1.0

    def test_fatal_failure_is_never_retried(self):
        calls = []

        def runner(task):
            calls.append(task[0])
            return self.fatal_runner(task)

        engine = Engine(jobs=1, cache_dir=None, retries=3, runner=runner)
        with pytest.raises(EngineError):
            engine.run_reports([SPEC])
        assert calls == [0]  # deterministic failure: one attempt only
        failure = engine.last_stats.failures[0]
        assert failure.attempts == 1
        assert failure.transient is False
        assert failure.error_type == "WindowIntegrityError"

    def test_transient_failure_is_retried(self):
        calls = []

        def runner(task):
            calls.append(task[0])
            return task[0], None, {
                "type": "InjectedStoreError", "transient": True,
                "traceback": "Traceback ...\nInjectedStoreError: io\n"}, 1.0

        engine = Engine(jobs=1, cache_dir=None, retries=2, runner=runner)
        with pytest.raises(EngineError):
            engine.run_reports([SPEC])
        assert calls == [0, 0, 0]  # initial attempt + both retries
        assert engine.last_stats.failures[0].attempts == 3
        assert engine.last_stats.failures[0].transient is True

    def test_legacy_string_errors_stay_retryable(self):
        calls = []

        def runner(task):
            calls.append(task[0])
            return task[0], None, "Traceback ...\nOSError: flake\n", 1.0

        engine = Engine(jobs=1, cache_dir=None, retries=1, runner=runner)
        with pytest.raises(EngineError):
            engine.run_reports([SPEC])
        assert calls == [0, 0]

    def test_keep_going_quarantines_and_returns_holes(self, tmp_path):
        specs = sweep_specs("high", "fine", [4, 6], ("NS", "SP"), 0.02)
        victim = specs[1].label

        def runner(task):
            index, payload = task
            if PointSpec.from_payload(payload).label == victim:
                return self.fatal_runner(task)
            return fake_runner(task)

        engine = Engine(jobs=1, cache_dir=tmp_path, runner=runner,
                        keep_going=True)
        reports = engine.run_reports(specs)
        assert reports[1] is None
        assert [r is None for r in reports] == [
            s.label == victim for s in specs]
        for spec, report in zip(specs, reports):
            if report is not None:
                assert report == fake_report(spec)
        assert "quarantined" in engine.last_stats.summary(engine.jobs)
        manifest = json.loads(
            engine.failure_manifest_path().read_text())
        assert manifest["schema"] == "repro.failure-manifest"
        assert [f["label"] for f in manifest["failures"]] == [victim]
        assert manifest["failures"][0]["transient"] is False
        assert manifest["failures"][0]["attempts"] == 1

    def test_keep_going_run_points_maps_holes(self, tmp_path):
        engine = Engine(jobs=1, cache_dir=None, runner=self.fatal_runner,
                        keep_going=True,
                        manifest_path=tmp_path / "failures.json")
        points = engine.run_points([SPEC])
        assert points == [None]
        assert (tmp_path / "failures.json").is_file()

    def test_quarantined_points_are_not_cached(self, tmp_path):
        engine = Engine(jobs=1, cache_dir=tmp_path,
                        runner=self.fatal_runner, keep_going=True)
        engine.run_reports([SPEC])
        assert cache_key(SPEC) not in engine.cache

    def test_spec_defaults_are_applied(self):
        seen = []

        def runner(task):
            index, payload = task
            seen.append(PointSpec.from_payload(payload))
            return fake_runner(task)

        engine = Engine(jobs=1, cache_dir=None, runner=runner,
                        spec_defaults={"faults": "store_fail@2",
                                       "audit": True})
        engine.run_reports([SPEC])
        assert seen[0].faults == "store_fail@2"
        assert seen[0].audit is True
        assert seen[0].n_windows == SPEC.n_windows

    def test_fault_fields_change_the_cache_key(self):
        variants = [
            PointSpec("SP", 8, "high", "fine", 0.02, faults="wim@1"),
            PointSpec("SP", 8, "high", "fine", 0.02, fault_seed=7),
            PointSpec("SP", 8, "high", "fine", 0.02, audit=True),
            PointSpec("SP", 8, "high", "fine", 0.02, watchdog=500),
        ]
        keys = {cache_key(v) for v in variants} | {cache_key(SPEC)}
        assert len(keys) == len(variants) + 1

    def test_timeout_is_injected_into_payloads(self):
        payloads = []

        def runner(task):
            payloads.append(dict(task[1]))
            return fake_runner(task)

        engine = Engine(jobs=1, cache_dir=None, runner=runner,
                        timeout=2.5)
        engine.run_reports([SPEC])
        assert payloads[0]["_timeout"] == 2.5


class TestSweepSpecs:
    def test_sp_minimum_windows(self):
        specs = sweep_specs("high", "fine", [3, 4], ("SP", "SNP"), 0.02)
        assert [(s.scheme, s.n_windows) for s in specs] == [
            ("SP", 4), ("SNP", 3), ("SNP", 4)]

    def test_labels_unique(self):
        specs = sweep_specs("high", "fine", [4, 8], ("NS", "SNP", "SP"),
                            0.02)
        assert len({s.label for s in specs}) == len(specs)
