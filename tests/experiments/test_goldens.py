"""Golden regression tests: a small committed grid of figure/table
values that must not drift.

Any change to the simulator, the schemes, the cost model or the
spell-checker workload that moves a single counter on the small grid
fails here with a readable per-point diff.  When a drift is intended
(e.g. a deliberate cost-model recalibration), regenerate with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_goldens.py

and commit the updated ``tests/experiments/goldens/small_grid.json``
alongside the change that explains it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.costs import CostModel
from repro.experiments.engine import Engine, PointSpec, atomic_write_text

GOLDENS = Path(__file__).parent / "goldens" / "small_grid.json"
UPDATE_ENV = "REPRO_UPDATE_GOLDENS"

SCALE = 0.02
SEED = 1993
GRID = [
    PointSpec(scheme, n_windows, concurrency, granularity, SCALE,
              seed=SEED)
    for concurrency, granularity in (("high", "fine"), ("low", "coarse"))
    for n_windows in (5, 8)
    for scheme in ("NS", "SNP", "SP")
]

#: the integer-valued ExperimentPoint fields the goldens pin (floats
#: like trap_probability are quotients of these, so they are covered)
METRICS = ("total_cycles", "switch_cycles", "trap_cycles",
           "compute_cycles", "context_switches", "saves", "restores",
           "overflow_traps", "underflow_traps", "output_bytes")


def compute_goldens() -> dict:
    engine = Engine(jobs=1, cache_dir=None)
    points = engine.run_points(GRID)
    doc = {
        "schema": "repro.goldens",
        "version": 1,
        "scale": SCALE,
        "seed": SEED,
        "points": {
            spec.label: {m: getattr(point, m) for m in METRICS}
            for spec, point in zip(GRID, points)},
        "table2_model": {
            "%s/%d/%d" % (row.scheme, row.saves, row.restores): value
            for row, value, __ in CostModel().table2_check()},
    }
    return doc


def diff_goldens(expected: dict, actual: dict) -> list:
    lines = []
    for section in ("points", "table2_model"):
        exp, act = expected.get(section, {}), actual.get(section, {})
        for label in sorted(set(exp) | set(act)):
            if label not in exp:
                lines.append("%s %s: not in goldens (new point?)"
                             % (section, label))
            elif label not in act:
                lines.append("%s %s: missing from this run"
                             % (section, label))
            elif exp[label] != act[label]:
                if isinstance(exp[label], dict):
                    for metric in sorted(exp[label]):
                        if exp[label][metric] != act[label].get(metric):
                            lines.append(
                                "%s %s.%s: golden %r, got %r"
                                % (section, label, metric,
                                   exp[label][metric],
                                   act[label].get(metric)))
                else:
                    lines.append("%s %s: golden %r, got %r"
                                 % (section, label, exp[label],
                                    act[label]))
    return lines


def test_small_grid_matches_goldens():
    actual = compute_goldens()
    if os.environ.get(UPDATE_ENV):
        atomic_write_text(GOLDENS, json.dumps(actual, indent=2,
                                              sort_keys=True) + "\n")
        pytest.skip("goldens regenerated at %s — commit the diff"
                    % GOLDENS)
    assert GOLDENS.is_file(), (
        "no goldens committed; run with %s=1 to create %s"
        % (UPDATE_ENV, GOLDENS))
    expected = json.loads(GOLDENS.read_text())
    drift = diff_goldens(expected, actual)
    assert not drift, (
        "%d golden value(s) drifted (set %s=1 to regenerate "
        "if intended):\n  %s"
        % (len(drift), UPDATE_ENV, "\n  ".join(drift)))


def test_goldens_file_is_complete():
    """The committed file covers the whole declared grid — a partial
    regeneration can't silently shrink coverage."""
    expected = json.loads(GOLDENS.read_text())
    assert expected["schema"] == "repro.goldens"
    assert set(expected["points"]) == {spec.label for spec in GRID}
    assert len(expected["table2_model"]) == len(CostModel().table2_check())
    for metrics in expected["points"].values():
        assert set(metrics) == set(METRICS)
