"""The experiment harness: run_point, sweeps and env knobs."""

import pytest

from repro.experiments.harness import (
    env_scale,
    env_windows,
    run_point,
    sweep_windows,
)

TINY = 0.02


class TestRunPoint:
    def test_fields_populated(self):
        point = run_point("SP", 8, "high", "fine", scale=TINY)
        assert point.scheme == "SP"
        assert point.n_windows == 8
        assert point.policy == "fifo"
        assert point.total_cycles > 0
        assert point.context_switches > 0
        assert point.saves == point.restores
        assert 0.0 <= point.trap_probability <= 1.0
        assert point.output_bytes > 0
        assert set(point.per_thread_switches) == {
            "T1.delatex", "T2.spell1", "T3.spell2", "T4.input",
            "T5.output", "T6.dict1", "T7.dict2"}

    def test_working_set_flag(self):
        point = run_point("SP", 8, "high", "fine", scale=TINY,
                          working_set=True)
        assert point.policy == "working-set"

    def test_cycles_decompose(self):
        p = run_point("SNP", 6, "low", "coarse", scale=TINY)
        assert (p.switch_cycles + p.trap_cycles + p.compute_cycles
                <= p.total_cycles)


class TestSweep:
    def test_sp_skips_too_small_files(self):
        swept = sweep_windows("high", "fine", windows=[3, 4, 5],
                              schemes=("SP", "SNP"), scale=TINY)
        assert [p.n_windows for p in swept["SP"]] == [4, 5]
        assert [p.n_windows for p in swept["SNP"]] == [3, 4, 5]

    def test_deterministic(self):
        a = run_point("SP", 6, "high", "medium", scale=TINY)
        b = run_point("SP", 6, "high", "medium", scale=TINY)
        assert a.total_cycles == b.total_cycles
        assert a.per_thread_switches == b.per_thread_switches


class TestEnvKnobs:
    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert env_scale() == 0.5
        monkeypatch.delenv("REPRO_SCALE")
        assert env_scale(0.25) == 0.25

    def test_env_windows(self, monkeypatch):
        monkeypatch.setenv("REPRO_WINDOWS", "4, 8,16")
        assert env_windows() == [4, 8, 16]
        monkeypatch.delenv("REPRO_WINDOWS")
        assert env_windows([7]) == [7]
