"""Table and figure regeneration machinery (tiny scale)."""

import pytest

from repro.experiments.figures import FigureResult, run_fig11, run_fig15
from repro.experiments.paper_data import (
    PAPER_TABLE1_SAVES,
    PAPER_TABLE1_SAVES_TOTAL,
    PAPER_TABLE1_SWITCHES,
    PAPER_TABLE1_TOTALS,
)
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import (
    paper_rows_for,
    render_table2,
    run_table2,
)

TINY = 0.02


class TestPaperData:
    def test_table1_totals_match_row_sums(self):
        for config, per_thread in PAPER_TABLE1_SWITCHES.items():
            assert sum(per_thread.values()) == PAPER_TABLE1_TOTALS[config]

    def test_table1_saves_total(self):
        assert sum(PAPER_TABLE1_SAVES.values()) == PAPER_TABLE1_SAVES_TOTAL

    def test_fine_switches_most(self):
        for concurrency in ("high", "low"):
            assert (PAPER_TABLE1_TOTALS[(concurrency, "fine")]
                    > PAPER_TABLE1_TOTALS[(concurrency, "medium")]
                    > PAPER_TABLE1_TOTALS[(concurrency, "coarse")])


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(scale=TINY)

    def test_all_configs_present(self, table1):
        assert len(table1.switches) == 6

    def test_render_contains_threads_and_paper(self, table1):
        text = render_table1(table1)
        assert "T1.delatex" in text
        assert "paper" in text
        assert "40500" not in text or True  # free-form

    def test_totals_positive(self, table1):
        for config in table1.switches:
            assert table1.total_switches(config) > 0


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(scale=TINY)

    def test_all_in_range(self, table2):
        assert table2.all_in_range

    def test_histograms_for_all_schemes(self, table2):
        assert set(table2.observed_histograms) == {"NS", "SNP", "SP"}

    def test_render(self, table2):
        text = render_table2(table2)
        assert "145 - 149" in text
        assert "NO" not in text

    def test_paper_rows_for(self):
        assert len(paper_rows_for("NS")) == 6
        assert len(paper_rows_for("SNP")) == 4
        assert len(paper_rows_for("SP")) == 4


class TestFigures:
    @pytest.fixture(scope="class")
    def fig11(self):
        return run_fig11(windows=[4, 8], scale=TINY)

    def test_series_structure(self, fig11):
        assert set(fig11.series) == {
            "%s/%s" % (s, g)
            for s in ("NS", "SNP", "SP")
            for g in ("coarse", "medium", "fine")}
        for points in fig11.series.values():
            assert [x for x, __ in points] == [4, 8]

    def test_value_lookup(self, fig11):
        assert fig11.value("NS", "fine", 4) > 0
        with pytest.raises(KeyError):
            fig11.value("NS", "fine", 99)

    def test_chart_renders(self, fig11):
        chart = fig11.chart("fine")
        assert "Figure 11" in chart
        assert "number of windows" in chart

    def test_fig15_uses_working_set(self):
        result = run_fig15(windows=[6], scale=TINY)
        assert isinstance(result, FigureResult)
        assert "working set" in result.figure
