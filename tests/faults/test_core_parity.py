"""Faults must fire at the same simulated point in both cores.

The differential harness (tests/core/test_batched_vs_trampoline.py)
proves unfaulted runs bit-identical; this file pins the *faulted* side:
for every fault class the injector's fired records (kind, site, trigger
count and detail), the outcome, the error text and the cycle-domain
counters must agree exactly between the batched core and the
step-granular reference trampoline (``tests.support.trampoline``).
"""

import pytest

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from tests.support.trampoline import force_trampoline

SPEC_OF = {
    "register": "register@3:0",
    "retval": "retval@5",
    "wim": "wim@4",
    "cwp": "cwp@4",
    "trap_drop": "trap_drop@2",
    "trap_dup": "trap_dup@2",
    "store_corrupt": "store_corrupt@1",
    "store_fail": "store_fail@1",
    "store_delay": "store_delay@1",
    "sched": "sched@3",
}

N_WINDOWS = 6
SCHEME = "SP"
CONFIG = SpellConfig.named("high", "coarse", scale=0.05)


@pytest.fixture(autouse=True)
def execution_core():
    # Override the directory-wide core sweep: this test drives both
    # cores explicitly and must not be run twice.
    yield


def run_faulted(core, spec):
    injector = FaultInjector(FaultPlan.parse(spec))
    error = output = result = None
    try:
        result, output = run_spellchecker(
            N_WINDOWS, SCHEME, CONFIG, verify_registers=True,
            faults=injector, audit=True, watchdog=200_000,
            instrument=(force_trampoline if core == "generator"
                        else None))
    except ReproError as exc:
        error = exc
    snap = {
        "fired": injector.fired,
        "outcome": "detected" if error else "survived",
        # the enriched message embeds the crash step, simulated cycle,
        # running thread and CWP — equality pins the firing point
        "error": (type(error).__name__, str(error)) if error else None,
        "output": output,
    }
    if result is not None:
        counters = result.counters
        snap["steps"] = result.steps
        snap["cycles"] = (counters.compute_cycles, counters.call_cycles,
                         counters.trap_cycles, counters.switch_cycles)
        snap["traps"] = (counters.overflow_traps,
                         counters.underflow_traps)
        snap["switches"] = counters.context_switches
    return snap


@pytest.mark.parametrize("kind", sorted(SPEC_OF))
def test_fault_fires_identically_in_both_cores(kind):
    spec = SPEC_OF[kind]
    gen = run_faulted("generator", spec)
    bat = run_faulted("batched", spec)
    assert gen["fired"], "fault %s never fired" % kind
    assert gen == bat
