"""Regenerate the committed minimization seed corpus.

Each case runs a deliberately *over-specified* fault plan (4-5 specs,
mostly chaff) against a workload until it crashes, and commits the
resulting bundle.  The corpus is the acceptance fixture for the
delta-debugging minimizer: ``tests/faults/test_minimize_corpus.py``
asserts every bundle replays bit-for-bit and shrinks to <=2 specs.

Bundles are deterministic (no timestamps, content-addressed names,
explicit execution core), so rerunning this script after a
behaviour-preserving change reproduces the identical files::

    PYTHONPATH=src python tests/faults/corpus/regen.py
"""

import pathlib
import sys

from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan, run_workload

CORPUS_DIR = pathlib.Path(__file__).resolve().parent

#: (bundle config, over-specified plan text, plan seed) per case;
#: every config pins ``core`` so the bundle is ambient-independent
CASES = [
    # window-integrity corruption buried in 5 specs of chaff
    ({"workload": "spellcheck", "scheme": "SP", "n_windows": 6,
      "m": 16, "n": 4, "scale": 0.05, "seed": 1993,
      "verify_registers": True, "audit": False, "watchdog": 0,
      "core": "batched"},
     "store_delay@1,sched@2,retval@4,store_delay@6,sched@9", 77),
    # return-value corruption in a fork/join tree, generator core
    ({"workload": "synthetic-fork-join", "scheme": "SNP",
      "n_windows": 6, "n_children": 3, "items": 12,
      "flush_hint": True, "verify_registers": True, "audit": True,
      "watchdog": 0, "core": "generator"},
     "sched@1,store_delay@2,retval@2,store_delay@7", 11),
    # CWP geometry violation under deep synthetic call chains
    ({"workload": "synthetic-call-depth", "scheme": "NS",
      "n_windows": 4, "n_workers": 3, "iterations": 4, "depth": 3,
      "work": 5, "verify_registers": True, "audit": True,
      "watchdog": 0, "core": "batched"},
     "store_delay@1,sched@2,cwp@3,wim@9", 23),
    # watchdog-detected livelock with survivable chaff faults
    ({"workload": "synthetic-yield-storm", "scheme": "SP",
      "n_windows": 4, "n_spinners": 2, "spins": 300,
      "verify_registers": True, "audit": False, "watchdog": 80,
      "core": "batched"},
     "sched@2,store_delay@1", 7),
]


def regen(out_dir=CORPUS_DIR):
    paths = []
    for config, plan_text, seed in CASES:
        injector = FaultInjector(FaultPlan.parse(plan_text, seed=seed))
        try:
            run_workload(dict(config), faults=injector,
                         crash_dir=out_dir)
        except ReproError as exc:
            if exc.bundle_path is None:
                raise SystemExit("case %r crashed without a bundle"
                                 % config["workload"])
            print("%-24s %-22s -> %s"
                  % (config["workload"], plan_text,
                     pathlib.Path(exc.bundle_path).name))
            paths.append(pathlib.Path(exc.bundle_path))
        else:
            raise SystemExit("case %r did not crash; corpus needs "
                             "failing bundles" % config["workload"])
    return paths


if __name__ == "__main__":
    sys.exit(0 if regen() else 1)
