"""The kernel watchdog: livelock detection without false positives."""

import pytest

from repro.faults.watchdog import DEFAULT_MAX_STALL, Watchdog
from repro.runtime import LivelockError, Tick, YieldCPU
from repro.runtime.kernel import Kernel


class TestWatchdogUnit:
    def test_progress_resets_the_stall_clock(self):
        dog = Watchdog(max_stall=10)
        assert dog.stalled_for(marks=0, step=1) == 0
        assert dog.stalled_for(marks=0, step=5) == 4
        assert dog.stalled_for(marks=1, step=6) == 0  # progress moved
        assert dog.stalled_for(marks=1, step=9) == 3

    def test_expired_at_threshold(self):
        dog = Watchdog(max_stall=3)
        assert not dog.expired(marks=0, step=1)
        assert not dog.expired(marks=0, step=3)
        assert dog.expired(marks=0, step=4)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            Watchdog(max_stall=0)

    def test_default_threshold_is_generous(self):
        assert Watchdog().max_stall == DEFAULT_MAX_STALL


def spinner():
    while True:
        yield YieldCPU()


def worker(n):
    for __ in range(n):
        yield Tick(5)
    return n


class TestKernelLivelock:
    def test_yield_storm_raises_livelock(self):
        kernel = Kernel(n_windows=8, scheme="SP", watchdog=50)
        kernel.spawn(spinner, name="spin1")
        kernel.spawn(spinner, name="spin2")
        with pytest.raises(LivelockError) as info:
            kernel.run()
        err = info.value
        assert err.context["max_stall"] == 50
        assert "spin1" in str(err) and "spin2" in str(err)
        assert "step" in err.context

    def test_real_progress_never_trips_the_watchdog(self):
        kernel = Kernel(n_windows=8, scheme="SP", watchdog=50)
        kernel.spawn(worker, 400, name="w")  # 400 ticks >> max_stall
        result = kernel.run()
        assert result.result_of("w") == 400

    def test_watchdog_off_by_default(self):
        kernel = Kernel(n_windows=8, scheme="SP")
        assert kernel._watchdog is None

    def test_livelock_is_a_repro_error(self):
        from repro.errors import ReproError
        from repro.runtime.errors import RuntimeFault

        assert issubclass(LivelockError, RuntimeFault)
        assert issubclass(LivelockError, ReproError)
