"""Run the whole chaos suite under every execution backend.

Fault injection, the watchdog and the invariant audit force the kernel
onto the step-granular loop (they need per-step hooks), but the
*decision* to fall back — and the surrounding batch boundaries in
unfaulted reference runs — depend on the ambient execution
configuration.  Parameterizing via ``$REPRO_BACKEND`` (the same
override CI uses) exercises every fault class, the watchdog and
crash-bundle replay with the compiled backend both absent-from and
present-in the selection, without touching the individual tests; when
the compiled extension is not built, the sweep collapses to the pure
backend alone.
"""

import pytest

from repro.runtime.backend import ENV_BACKEND, compiled_available
from repro.runtime.batch import CORES, ENV_CORE

BACKENDS = ("pure",) + (("compiled",) if compiled_available() else ())

SWEEP = tuple((core, backend) for core in CORES for backend in BACKENDS)


@pytest.fixture(autouse=True, params=SWEEP,
                ids=["%s-%s" % pair for pair in SWEEP])
def execution_core(request, monkeypatch):
    core, backend = request.param
    monkeypatch.setenv(ENV_CORE, core)
    monkeypatch.setenv(ENV_BACKEND, backend)
    return core
