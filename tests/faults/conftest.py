"""Run the whole chaos suite under both execution cores.

Fault injection, the watchdog and the invariant audit force the kernel
onto the step-granular loop even under ``core="batched"`` (they need
per-step hooks), but the *decision* to fall back — and the surrounding
batch boundaries in unfaulted reference runs — differ between the two
cores.  Parameterizing via ``$REPRO_CORE`` (the same override CI uses)
exercises every fault class, the watchdog and crash-bundle replay
against both, without touching the individual tests.
"""

import pytest

from repro.runtime.batch import CORES, ENV_CORE


@pytest.fixture(autouse=True, params=CORES)
def execution_core(request, monkeypatch):
    monkeypatch.setenv(ENV_CORE, request.param)
    return request.param
