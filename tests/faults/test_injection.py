"""The chaos contract: every fault class is *survived* (architectural
results identical to the unfaulted run) or *detected* (a specific
``ReproError``) — never silently wrong output.

The workload is the full spell-check pipeline at a small scale with
register verification and the continuous invariant audit on, i.e. the
maximum-detection configuration the chaos CI job runs.
"""

import pytest

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.errors import ReproError, TransientError
from repro.faults import FaultInjector, FaultPlan
from repro.faults.inject import InjectedStoreError
from repro.faults.plan import FAULT_KINDS, SURVIVABLE_KINDS

N_WINDOWS = 6
SCHEME = "SP"
CONFIG = SpellConfig.named("high", "coarse", scale=0.05)

#: specs whose trigger points are known to land inside this workload
SPEC_OF = {
    "register": "register@3:0",
    "retval": "retval@5",
    "wim": "wim@4",
    "cwp": "cwp@4",
    "trap_drop": "trap_drop@2",
    "trap_dup": "trap_dup@2",
    "store_corrupt": "store_corrupt@1",
    "store_fail": "store_fail@1",
    "store_delay": "store_delay@1",
    "sched": "sched@3",
}

_reference = {}


def reference_output() -> bytes:
    if "output" not in _reference:
        __, output = run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                                      verify_registers=True, audit=True)
        _reference["output"] = output
    return _reference["output"]


def run_with(plan: FaultPlan):
    """Returns ``(outcome, output_or_error, injector)`` with outcome
    'survived' or 'detected'."""
    injector = FaultInjector(plan)
    try:
        __, output = run_spellchecker(
            N_WINDOWS, SCHEME, CONFIG, verify_registers=True,
            faults=injector, audit=True, watchdog=200_000)
    except ReproError as exc:
        return "detected", exc, injector
    return "survived", output, injector


class TestContract:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_survived_or_detected_never_wrong(self, kind):
        plan = FaultPlan.parse(SPEC_OF[kind])
        outcome, payload, injector = run_with(plan)
        assert injector.fired, "fault %s never fired" % kind
        if outcome == "survived":
            assert payload == reference_output(), (
                "fault %s silently changed the results" % kind)
        else:
            assert isinstance(payload, ReproError)
            assert str(payload)  # a diagnosable message, not a bare type

    @pytest.mark.parametrize("kind", SURVIVABLE_KINDS)
    def test_survivable_kinds_survive(self, kind):
        """Delays and schedule shuffles must never change results."""
        outcome, payload, injector = run_with(
            FaultPlan.parse(SPEC_OF[kind]))
        assert outcome == "survived"
        assert payload == reference_output()
        assert injector.fired[0]["kind"] == kind

    @pytest.mark.parametrize("kind", ["register", "retval", "store_fail"])
    def test_corruptions_are_detected(self, kind):
        """Value corruption and store failures must be *caught*, not
        absorbed — silent absorption would mean verification is off."""
        outcome, payload, __ = run_with(FaultPlan.parse(SPEC_OF[kind]))
        assert outcome == "detected", (
            "fault %s was absorbed without detection" % kind)

    def test_detected_errors_carry_context(self):
        outcome, exc, __ = run_with(FaultPlan.parse(SPEC_OF["retval"]))
        assert outcome == "detected"
        assert "thread" in exc.context
        assert "step" in exc.context
        assert "faults_fired" in exc.context

    @pytest.mark.parametrize("seed", [1993, 7, 42])
    def test_random_plans_uphold_the_contract(self, seed):
        plan = FaultPlan.random(seed, count=3, horizon=10)
        outcome, payload, __ = run_with(plan)
        if outcome == "survived":
            assert payload == reference_output()
        else:
            assert isinstance(payload, ReproError)


class TestDeterminism:
    def test_same_plan_same_outcome(self):
        plan = FaultPlan.parse("retval@5")
        out1 = run_with(plan)
        out2 = run_with(plan)
        assert out1[0] == out2[0] == "detected"
        assert str(out1[1]) == str(out2[1])
        assert out1[1].context == out2[1].context

    def test_injectors_are_single_use(self):
        """Counters advance with the run, so replay must rebuild the
        injector from the plan (as the bundle replayer does)."""
        injector = FaultInjector(FaultPlan.parse("retval@5"))
        with pytest.raises(ReproError):
            run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                             verify_registers=True, faults=injector,
                             audit=True)
        assert injector.armed == 0
        assert len(injector.fired) == 1


class TestInjectorMechanics:
    def test_store_error_is_transient(self):
        assert issubclass(InjectedStoreError, TransientError)
        assert issubclass(InjectedStoreError, ReproError)

    def test_fault_events_land_on_the_bus(self):
        from repro.runtime.kernel import Kernel

        events = []

        def instrument(kernel):
            recorder = kernel.enable_tracing()
            events.append(recorder)

        injector = FaultInjector(FaultPlan.parse("store_delay@1,sched@2"))
        run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                         verify_registers=True, faults=injector,
                         instrument=instrument)
        recorder = events[0]
        faults = [e for e in recorder.filter(kinds=["fault"])]
        assert len(faults) == 2
        assert {e.attrs["fault"] for e in faults} == {"store_delay",
                                                      "sched"}

    def test_summary_names_fired_and_armed(self):
        injector = FaultInjector(FaultPlan.parse("sched@3"))
        assert "0 armed" not in injector.summary()
        run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                         verify_registers=True, faults=injector)
        assert "sched@3/enqueue" in injector.summary()
        assert "0 armed" in injector.summary()
