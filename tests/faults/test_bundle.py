"""Crash bundles: deterministic capture, validation, bit-for-bit replay."""

import json

import pytest

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.errors import ReproError
from repro.faults import (
    BUNDLE_SCHEMA,
    BUNDLE_VERSION,
    FaultInjector,
    FaultPlan,
    load_bundle,
    replay_bundle,
)
from repro.runtime import DeadlockError, Read
from repro.runtime.kernel import Kernel
from repro.windows.errors import WindowIntegrityError

N_WINDOWS = 6
SCHEME = "SP"
CONFIG = SpellConfig.named("high", "coarse", scale=0.05)
PLAN_TEXT = "retval@5"


def crash(tmp_path, plan_text=PLAN_TEXT):
    """Run the faulted workload; returns the raised error (with its
    ``bundle_path`` attached by the kernel)."""
    injector = FaultInjector(FaultPlan.parse(plan_text))
    with pytest.raises(ReproError) as info:
        run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                         verify_registers=True, faults=injector,
                         audit=True, crash_dir=tmp_path)
    return info.value


class TestCapture:
    def test_bundle_written_and_valid(self, tmp_path):
        exc = crash(tmp_path)
        assert isinstance(exc, WindowIntegrityError)
        assert exc.bundle_path is not None
        bundle = load_bundle(exc.bundle_path)
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["version"] == BUNDLE_VERSION

    def test_bundle_names_the_error_and_context(self, tmp_path):
        exc = crash(tmp_path)
        bundle = load_bundle(exc.bundle_path)
        assert bundle["error"]["type"] == "WindowIntegrityError"
        assert bundle["error"]["message"] == exc.message
        assert bundle["error"]["context"]["thread"] == \
            exc.context["thread"]
        assert bundle["error"]["context"]["faults_fired"] == 1

    def test_bundle_embeds_the_fault_plan(self, tmp_path):
        exc = crash(tmp_path)
        bundle = load_bundle(exc.bundle_path)
        plan = FaultPlan.from_payload(bundle["fault_plan"])
        assert plan == FaultPlan.parse(PLAN_TEXT)

    def test_bundle_embeds_machine_and_threads(self, tmp_path):
        exc = crash(tmp_path)
        bundle = load_bundle(exc.bundle_path)
        machine = bundle["machine"]
        assert machine["scheme"] == SCHEME
        assert machine["n_windows"] == N_WINDOWS
        assert 0 <= machine["cwp"] < N_WINDOWS
        assert len(machine["occupancy"]) == N_WINDOWS
        names = {t["name"] for t in bundle["threads"]}
        assert "T5.output" in names
        for t in bundle["threads"]:
            assert {"cwp", "bottom", "resident", "depth",
                    "stored"} <= set(t["windows"])

    def test_bundle_has_flight_recorder_tail(self, tmp_path):
        exc = crash(tmp_path)
        bundle = load_bundle(exc.bundle_path)
        assert bundle["events"], "flight recorder captured nothing"
        assert all("kind" in e for e in bundle["events"])

    def test_filename_is_content_addressed(self, tmp_path):
        exc1 = crash(tmp_path / "a")
        exc2 = crash(tmp_path / "b")
        assert exc1.bundle_path.name == exc2.bundle_path.name
        assert exc1.bundle_path.name.startswith(
            "crash-windowintegrityerror-")
        assert (exc1.bundle_path.read_text()
                == exc2.bundle_path.read_text())

    def test_bundle_is_deterministic_json(self, tmp_path):
        exc = crash(tmp_path)
        text = exc.bundle_path.read_text()
        doc = json.loads(text)
        assert json.dumps(doc, indent=2, sort_keys=True) == text

    def test_no_crash_dir_no_bundle(self):
        injector = FaultInjector(FaultPlan.parse(PLAN_TEXT))
        with pytest.raises(ReproError) as info:
            run_spellchecker(N_WINDOWS, SCHEME, CONFIG,
                             verify_registers=True, faults=injector)
        assert getattr(info.value, "bundle_path", None) is None


class TestDeadlockBundle:
    def test_deadlock_bundle_names_blocked_threads(self, tmp_path):
        def reader(stream):
            yield Read(stream, 1)

        kernel = Kernel(n_windows=4, scheme="SP", crash_dir=tmp_path)
        s = kernel.stream(1, "lonely")
        kernel.spawn(reader, s, name="r")
        with pytest.raises(DeadlockError) as info:
            kernel.run()
        exc = info.value
        assert exc.blocked and exc.blocked[0]["thread"] == "r"
        assert exc.blocked[0]["on"] == "lonely"
        assert "empty" in exc.blocked[0]["detail"]
        bundle = load_bundle(exc.bundle_path)
        assert bundle["error"]["blocked"][0]["thread"] == "r"


class TestValidation:
    def test_rejects_wrong_schema(self, tmp_path):
        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        doc["schema"] = "something.else"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            load_bundle(bad)

    def test_rejects_future_version(self, tmp_path):
        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        doc["version"] = BUNDLE_VERSION + 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_bundle(bad)

    def test_rejects_missing_section(self, tmp_path):
        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        del doc["machine"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="machine"):
            load_bundle(bad)


class TestCoreRecording:
    """v2 bundles capture the execution core and replay under it."""

    def test_bundle_records_execution_core(self, tmp_path,
                                           execution_core):
        exc = crash(tmp_path)
        bundle = load_bundle(exc.bundle_path)
        assert bundle["config"]["core"] == execution_core

    def test_replay_sticks_to_recorded_core(self, tmp_path,
                                            execution_core,
                                            monkeypatch):
        """A bundle captured under one core must replay under that
        core even when the ambient ``$REPRO_CORE`` says otherwise —
        the recorded core is part of the replay identity.  The ambient
        value here is the *retired* generator name, which would raise
        if the replay ever consulted it."""
        from repro.runtime.batch import ENV_CORE, RETIRED_GENERATOR_CORE

        exc = crash(tmp_path / "orig")
        monkeypatch.setenv(ENV_CORE, RETIRED_GENERATOR_CORE)
        matched, new_path, detail = replay_bundle(
            exc.bundle_path, workdir=tmp_path / "replay")
        assert matched, detail
        bundle = load_bundle(new_path)
        assert bundle["config"]["core"] == execution_core

    def test_v1_bundle_without_core_still_loads(self, tmp_path):
        """Version-1 bundles (no recorded core) predate the field and
        must keep loading."""
        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        doc["version"] = 1
        del doc["config"]["core"]
        old = tmp_path / "v1.json"
        old.write_text(json.dumps(doc))
        bundle = load_bundle(old)
        assert bundle["version"] == 1
        assert "core" not in bundle["config"]


class TestReplay:
    @pytest.mark.parametrize("kind", [
        "register", "retval", "wim", "cwp", "trap_drop", "trap_dup",
        "store_corrupt", "store_fail", "store_delay", "sched"])
    def test_every_fault_class_survives_or_replays(self, tmp_path, kind):
        """The acceptance contract, per fault class: a crash always
        comes with a bundle whose seed + plan reproduce the identical
        failure bit-for-bit; anything else must leave results equal to
        the unfaulted reference."""
        from tests.faults.test_injection import (
            SPEC_OF,
            reference_output,
        )

        injector = FaultInjector(FaultPlan.parse(SPEC_OF[kind]))
        try:
            __, output = run_spellchecker(
                N_WINDOWS, SCHEME, CONFIG, verify_registers=True,
                faults=injector, audit=True, crash_dir=tmp_path / "orig")
        except ReproError as exc:
            assert exc.bundle_path is not None
            matched, __, detail = replay_bundle(
                exc.bundle_path, workdir=tmp_path / "replay")
            assert matched, "%s did not replay: %s" % (kind, detail)
        else:
            assert output == reference_output()

    def test_replay_reproduces_bit_for_bit(self, tmp_path):
        exc = crash(tmp_path / "orig")
        matched, new_path, detail = replay_bundle(
            exc.bundle_path, workdir=tmp_path / "replay")
        assert matched, detail
        assert new_path.name == exc.bundle_path.name
        assert new_path.read_text() == exc.bundle_path.read_text()

    def test_replay_cli_exit_codes(self, tmp_path):
        from repro.faults.__main__ import main

        exc = crash(tmp_path / "orig")
        assert main(["replay", str(exc.bundle_path),
                     "--workdir", str(tmp_path / "replay")]) == 0
        assert main(["show", str(exc.bundle_path)]) == 0

    def test_replay_refuses_non_spellcheck_workloads(self, tmp_path):
        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        doc["config"]["workload"] = "spellcheck-file"
        bad = tmp_path / "filebased.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="spellcheck"):
            replay_bundle(bad)
