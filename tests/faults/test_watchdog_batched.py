"""Watchdog + fault injection under the batched core's auto-fallback.

``core="batched"`` with a watchdog or fault injector armed must drop
onto the step-granular loop (the batch fast path has no per-step
hooks), detect livelock exactly as the generator core does, capture a
replayable LivelockError bundle, and round-trip that bundle through
the delta-debugging minimizer.
"""

import pytest

from repro.errors import ReproError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    load_bundle,
    minimize_bundle,
    replay_bundle,
    run_workload,
)
from repro.runtime import LivelockError
from repro.runtime.batch import ENV_CORE
from tests.support.trampoline import make_kernel


@pytest.fixture(autouse=True, params=["batched"])
def execution_core(request, monkeypatch):
    """Override the suite-wide two-core sweep: these tests pin the
    ambient core to ``batched`` (the fallback under test) and reach
    the reference trampoline via ``tests.support.trampoline``."""
    monkeypatch.setenv(ENV_CORE, request.param)
    return request.param


def storm_kernel(core, watchdog=80, faults=None, **kwargs):
    from repro.apps.synthetic import spawn_yield_storm

    kernel = make_kernel(core=core, n_windows=4, scheme="SP",
                         watchdog=watchdog, faults=faults, **kwargs)
    spawn_yield_storm(kernel, n_spinners=2, spins=300)
    return kernel


STORM_CONFIG = {
    "workload": "synthetic-yield-storm",
    "scheme": "SP", "n_windows": 4, "core": "batched",
    "n_spinners": 2, "spins": 300,
    "verify_registers": True, "audit": False, "watchdog": 80,
}


class TestAutoFallback:
    def test_watchdog_livelock_fires_under_batched_core(self):
        kernel = storm_kernel("batched")
        with pytest.raises(LivelockError) as info:
            kernel.run()
        assert info.value.context["max_stall"] == 80
        assert "step" in info.value.context

    def test_batched_matches_generator_with_watchdog(self):
        """The fallback is bit-identical: same failing step, same
        cycle count, same counters on both cores."""
        errors = {}
        for core in ("batched", "generator"):
            kernel = storm_kernel(core)
            with pytest.raises(LivelockError) as info:
                kernel.run()
            errors[core] = (info.value.context["step"],
                            info.value.context["cycle"],
                            kernel.counters.snapshot())
        assert errors["batched"] == errors["generator"]

    def test_watchdog_and_faults_combined_under_batched(self):
        """Both step-granular hooks armed at once: the survivable
        sched fault fires *and* the watchdog still catches the storm."""
        injector = FaultInjector(FaultPlan.parse("sched@2", seed=7))
        kernel = storm_kernel("batched", faults=injector)
        with pytest.raises(LivelockError) as info:
            kernel.run()
        assert injector.fired, "sched fault never fired"
        assert info.value.context["faults_fired"] == len(injector.fired)

    def test_combined_parity_across_cores(self):
        runs = {}
        for core in ("batched", "generator"):
            injector = FaultInjector(FaultPlan.parse("sched@2", seed=7))
            kernel = storm_kernel(core, faults=injector)
            with pytest.raises(LivelockError) as info:
                kernel.run()
            runs[core] = (info.value.context["step"],
                          [f for f in injector.fired])
        assert runs["batched"] == runs["generator"]


class TestLivelockBundle:
    def crash(self, tmp_path, plan_text=None):
        config = dict(STORM_CONFIG)
        injector = (FaultInjector(FaultPlan.parse(plan_text, seed=7))
                    if plan_text else None)
        with pytest.raises(LivelockError) as info:
            run_workload(config, faults=injector, crash_dir=tmp_path)
        return info.value

    def test_livelock_bundle_replays_bit_for_bit(self, tmp_path):
        exc = self.crash(tmp_path / "orig")
        assert exc.bundle_path is not None
        bundle = load_bundle(exc.bundle_path)
        assert bundle["error"]["type"] == "LivelockError"
        assert bundle["config"]["core"] == "batched"
        matched, __, detail = replay_bundle(exc.bundle_path,
                                            workdir=tmp_path / "replay")
        assert matched, detail

    def test_livelock_bundle_minimize_roundtrip(self, tmp_path):
        """A faulted livelock bundle shrinks to <=1 spec and a tighter
        storm, and the minimized artifact replays bit-for-bit."""
        exc = self.crash(tmp_path / "orig",
                         plan_text="sched@2,store_delay@1")
        result = minimize_bundle(exc.bundle_path,
                                 out_dir=tmp_path / "min")
        assert result.error_type == "LivelockError"
        assert result.final_specs <= 1
        assert result.verified
        # shrunk artifact is a first-class bundle: replay it again
        matched, __, detail = replay_bundle(result.path,
                                            workdir=tmp_path / "again")
        assert matched, detail
        # the minimizer shrank the schedule axis too
        final = load_bundle(result.path)
        assert final["config"]["spins"] <= STORM_CONFIG["spins"]
        assert final["minimization"]["original"]["specs"] == 2

    def test_unfaulted_livelock_minimizes_to_zero_specs(self, tmp_path):
        exc = self.crash(tmp_path / "orig")
        result = minimize_bundle(exc.bundle_path,
                                 out_dir=tmp_path / "min")
        assert result.final_specs == 0
        assert result.verified
        assert load_bundle(result.path)["fault_plan"] is None
