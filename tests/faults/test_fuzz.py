"""The fuzzer: deterministic draws, the survive-or-minimize gate, and
unexpected-outcome detection."""

import pytest

from repro.faults import FuzzReport, draw_trial, run_fuzz
from repro.faults.fuzz import FuzzTrial
from repro.faults.plan import FaultPlan
from repro.runtime.batch import ENV_CORE

#: a seed/trial window known (by construction, any works) to include
#: both survived and detected outcomes — see test_smoke_mixes_outcomes
SMOKE_SEED = 1993
SMOKE_TRIALS = 8

ALL_WORKLOADS = None  # default registry


@pytest.fixture(autouse=True, params=["batched"])
def execution_core(request, monkeypatch):
    """Fuzz trials draw their own execution core per trial; pin the
    ambient env so the suite-wide sweep does not double the cost."""
    monkeypatch.setenv(ENV_CORE, request.param)
    return request.param


class TestDraws:
    def test_draw_is_deterministic(self):
        a = draw_trial(42, 3, ("spellcheck", "synthetic-ping-pong"))
        b = draw_trial(42, 3, ("spellcheck", "synthetic-ping-pong"))
        assert (a.workload, a.scheme, a.n_windows, a.core,
                a.plan, a.config) == \
               (b.workload, b.scheme, b.n_windows, b.core,
                b.plan, b.config)

    def test_different_indices_differ(self):
        draws = {draw_trial(42, i, ("spellcheck",)).plan
                 for i in range(10)}
        assert len(draws) > 1

    def test_draw_arms_the_detection_battery(self):
        trial = draw_trial(7, 0, ("synthetic-ping-pong",))
        assert trial.config["verify_registers"]
        assert trial.config["audit"]
        assert trial.config["watchdog"] > 0
        assert trial.config["max_steps"] > 0
        assert 1 <= len(trial.plan.specs) <= 3

    def test_draw_respects_core_and_scheme_filters(self):
        for i in range(6):
            trial = draw_trial(7, i, ("synthetic-ping-pong",),
                               schemes=("NS",), cores=("generator",))
            assert trial.scheme == "NS"
            assert trial.core == "generator"
            assert trial.config["core"] == "generator"


class TestCampaign:
    def test_campaign_is_deterministic(self, tmp_path):
        a = run_fuzz(trials=4, seed=5, out_dir=tmp_path / "a")
        b = run_fuzz(trials=4, seed=5, out_dir=tmp_path / "b")
        assert [(t.outcome, t.error_type) for t in a.trials] \
            == [(t.outcome, t.error_type) for t in b.trials]
        for ta, tb in zip(a.trials, b.trials):
            if ta.bundle is not None:
                assert ta.bundle.name == tb.bundle.name

    def test_smoke_mixes_outcomes_and_passes_gate(self, tmp_path):
        """The CI fuzz-smoke configuration: fixed seed, few trials,
        must exercise both outcome classes and hold the gate."""
        report = run_fuzz(trials=SMOKE_TRIALS, seed=SMOKE_SEED,
                          out_dir=tmp_path)
        assert report.ok
        assert report.survived > 0
        assert report.detected > 0
        assert report.minimized == report.detected
        assert report.unexpected == 0
        for trial in report.trials:
            if trial.outcome == "detected":
                assert trial.minimized.verified
                assert trial.minimized.path.exists()
                assert trial.bundle.parent.name == "raw"

    def test_summary_counts(self, tmp_path):
        report = run_fuzz(trials=3, seed=5, out_dir=tmp_path)
        text = report.summary()
        assert "3 trials" in text and "seed=5" in text

    def test_no_minimize_keeps_raw_only(self, tmp_path):
        report = run_fuzz(trials=SMOKE_TRIALS, seed=SMOKE_SEED,
                          out_dir=tmp_path, minimize=False)
        assert report.minimized == 0
        assert not list(tmp_path.glob("*.min.json"))

    def test_unexpected_exception_fails_the_gate(self, tmp_path,
                                                 monkeypatch):
        def explode(config, faults=None, crash_dir=None,
                    trial_budget=None):
            raise RuntimeError("plain bug, no bundle")

        monkeypatch.setattr("repro.faults.fuzz.run_workload", explode)
        report = run_fuzz(trials=2, seed=5, out_dir=tmp_path)
        assert not report.ok
        assert report.unexpected == 2
        assert report.trials[0].error_type == "RuntimeError"
        assert "plain bug" in report.trials[0].detail

    def test_crash_without_bundle_fails_the_gate(self, tmp_path,
                                                 monkeypatch):
        from repro.errors import ReproError

        def crash_quietly(config, faults=None, crash_dir=None,
                          trial_budget=None):
            raise ReproError("detected but undumped")

        monkeypatch.setattr("repro.faults.fuzz.run_workload",
                            crash_quietly)
        report = run_fuzz(trials=1, seed=5, out_dir=tmp_path)
        assert not report.ok
        assert report.trials[0].outcome == "unexpected"
        assert "no bundle" in report.trials[0].detail

    def test_gate_requires_verified_minimization(self):
        trial = FuzzTrial(index=0, workload="w", scheme="SP",
                          n_windows=4, core="batched",
                          plan=FaultPlan(), outcome="detected")
        report = FuzzReport(seed=1, trials=[trial])
        assert not report.ok  # detected but never minimized
