"""FaultPlan parsing, seeded generation and serialisation."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    SITE_OF,
    SURVIVABLE_KINDS,
    FaultPlan,
    FaultSpec,
    plan_from_arg,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("register")
        assert spec.at == 1
        assert spec.arg is None
        assert spec.site == "save"

    def test_every_kind_has_a_site(self):
        assert set(SITE_OF) == set(FAULT_KINDS)
        for kind in FAULT_KINDS:
            assert FaultSpec(kind).site in (
                "save", "restore", "store", "enqueue")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor")

    def test_nonpositive_trigger_rejected(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            FaultSpec("register", at=0)

    def test_describe(self):
        assert FaultSpec("wim", at=3).describe() == "wim@3"
        assert FaultSpec("register", at=2, arg=5).describe() == \
            "register@2:5"

    def test_survivable_kinds_are_valid_kinds(self):
        assert set(SURVIVABLE_KINDS) <= set(FAULT_KINDS)


class TestParse:
    def test_single(self):
        plan = FaultPlan.parse("register@3")
        assert plan.specs == (FaultSpec("register", at=3),)

    def test_multiple_with_args(self):
        plan = FaultPlan.parse("register@3:0, store_fail@2", seed=7)
        assert plan.seed == 7
        assert plan.specs == (FaultSpec("register", at=3, arg=0),
                              FaultSpec("store_fail", at=2))

    def test_bare_kind_means_first_occurrence(self):
        assert FaultPlan.parse("cwp").specs == (FaultSpec("cwp", at=1),)

    def test_empty_text_is_empty_plan(self):
        plan = FaultPlan.parse("")
        assert plan.specs == ()
        assert not plan

    def test_bad_kind_propagates(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("meteor@1")

    def test_random_spec(self):
        plan = FaultPlan.parse("random:4", seed=11)
        assert len(plan.specs) == 4
        assert plan.seed == 11

    def test_plan_from_arg_none(self):
        assert plan_from_arg(None) is None
        assert plan_from_arg("") is None
        assert plan_from_arg("wim@2").specs == (FaultSpec("wim", at=2),)


class TestRandom:
    def test_same_seed_same_plan(self):
        assert FaultPlan.random(7, count=6) == FaultPlan.random(7, count=6)

    def test_different_seed_different_plan(self):
        assert FaultPlan.random(7, count=6) != FaultPlan.random(8, count=6)

    def test_kinds_restriction(self):
        plan = FaultPlan.random(1, count=20, kinds=("sched",))
        assert all(s.kind == "sched" for s in plan.specs)

    def test_triggers_in_horizon(self):
        plan = FaultPlan.random(3, count=50, horizon=10)
        assert all(1 <= s.at <= 10 for s in plan.specs)


class TestPayloadRoundtrip:
    def test_roundtrip_exact(self):
        plan = FaultPlan.parse("register@3:0,wim@2,store_delay@1:500",
                               seed=42)
        assert FaultPlan.from_payload(plan.to_payload()) == plan

    def test_payload_is_json_plain(self):
        import json

        payload = FaultPlan.random(5, count=3).to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_describe_mentions_seed(self):
        assert "seed=42" in FaultPlan.parse("wim@1", seed=42).describe()
        assert "no faults" in FaultPlan(seed=1).describe()
