"""The delta-debugging engine: generic reducers, the reproduction
signature, and end-to-end bundle minimization."""

import json

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    MinimizeError,
    load_bundle,
    minimize_bundle,
    run_workload,
)
from repro.faults.minimize import (
    ddmin,
    failure_signature,
    shrink_float,
    shrink_int,
)
from repro.errors import ReproError
from repro.runtime.batch import ENV_CORE


@pytest.fixture(autouse=True, params=["batched"])
def execution_core(request, monkeypatch):
    """End-to-end minimizations pin their core in the bundle config;
    skip the suite-wide two-core sweep."""
    monkeypatch.setenv(ENV_CORE, request.param)
    return request.param


class TestDdmin:
    def test_single_culprit_found(self):
        culprit = 7
        calls = []

        def test(subset):
            calls.append(tuple(subset))
            return culprit in subset

        assert ddmin(list(range(10)), test) == [culprit]

    def test_pair_of_culprits_in_different_halves(self):
        def test(subset):
            return 1 in subset and 8 in subset

        assert sorted(ddmin(list(range(10)), test)) == [1, 8]

    def test_everything_needed_stays(self):
        items = [1, 2, 3]
        assert sorted(ddmin(items, lambda s: sorted(s) == items)) \
            == items

    def test_nothing_needed_shrinks_to_empty(self):
        assert ddmin([1, 2, 3], lambda s: True) == []

    def test_single_item_input(self):
        assert ddmin([5], lambda s: 5 in s) == [5]
        assert ddmin([5], lambda s: True) == []

    def test_preserves_order(self):
        result = ddmin(list(range(20)), lambda s: {3, 11, 17} <= set(s))
        assert result == [3, 11, 17]


class TestShrinkers:
    def test_shrink_int_finds_threshold(self):
        assert shrink_int(1000, 1, lambda v: v >= 37) == 37

    def test_shrink_int_respects_floor(self):
        assert shrink_int(100, 10, lambda v: True) == 10

    def test_shrink_int_already_at_floor(self):
        assert shrink_int(5, 5, lambda v: pytest.fail("no probes")) == 5

    def test_shrink_int_no_improvement(self):
        assert shrink_int(8, 1, lambda v: v >= 8) == 8

    def test_shrink_float_converges(self):
        best = shrink_float(1.0, 0.01, lambda v: v >= 0.25)
        assert 0.25 <= best <= 0.26

    def test_shrink_float_takes_floor_when_it_reproduces(self):
        assert shrink_float(0.5, 0.01, lambda v: True) == 0.01


class TestSignature:
    def test_same_class_same_keys_matches(self):
        a = failure_signature("WindowIntegrityError",
                              {"step": 10, "thread": "T1", "cwp": 2})
        b = failure_signature("WindowIntegrityError",
                              {"step": 99, "thread": "T1", "cwp": 5})
        assert a == b

    def test_different_thread_differs(self):
        a = failure_signature("RuntimeFault", {"thread": "T1"})
        b = failure_signature("RuntimeFault", {"thread": "T2"})
        assert a != b

    def test_different_class_differs(self):
        a = failure_signature("DeadlockError", {"step": 1})
        b = failure_signature("LivelockError", {"step": 1})
        assert a != b

    def test_extra_context_key_differs(self):
        a = failure_signature("RuntimeFault", {"step": 1})
        b = failure_signature("RuntimeFault",
                              {"step": 1, "faults_fired": 2})
        assert a != b


CRASH_CONFIG = {
    "workload": "synthetic-fork-join", "scheme": "SNP",
    "n_windows": 6, "n_children": 3, "items": 12, "flush_hint": True,
    "verify_registers": True, "audit": True, "watchdog": 0,
    "core": "batched",
}
CHAFF_PLAN = "sched@1,store_delay@2,retval@2,store_delay@7"


def crash_bundle(tmp_path, config=None, plan_text=CHAFF_PLAN):
    injector = FaultInjector(FaultPlan.parse(plan_text, seed=11))
    with pytest.raises(ReproError) as info:
        run_workload(dict(config or CRASH_CONFIG), faults=injector,
                     crash_dir=tmp_path)
    assert info.value.bundle_path is not None
    return info.value.bundle_path


class TestMinimizeBundle:
    def test_chaff_is_dropped_and_result_verified(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        result = minimize_bundle(path, out_dir=tmp_path / "min")
        assert result.original_specs == 4
        assert result.final_specs == 1
        assert result.verified
        plan = load_bundle(result.path)["fault_plan"]
        assert [s["kind"] for s in plan["specs"]] == ["retval"]

    def test_firing_point_shrinks_toward_one(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        result = minimize_bundle(path, out_dir=tmp_path / "min")
        spec = load_bundle(result.path)["fault_plan"]["specs"][0]
        assert spec["at"] <= 2

    def test_workload_schedule_shrinks(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        result = minimize_bundle(path, out_dir=tmp_path / "min")
        config = load_bundle(result.path)["config"]
        original = load_bundle(path)["config"]
        assert config["n_children"] <= original["n_children"]
        assert config["items"] <= original["items"]

    def test_provenance_names_the_original(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        result = minimize_bundle(path, out_dir=tmp_path / "min")
        mini = load_bundle(result.path)["minimization"]
        assert mini["original"]["file"] == path.name
        assert len(mini["original"]["sha256"]) == 64
        assert mini["candidates"] == result.candidates
        assert result.summary().startswith("WindowIntegrityError: 4 -> 1")

    def test_minimized_name_is_content_addressed(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        a = minimize_bundle(path, out_dir=tmp_path / "a")
        b = minimize_bundle(path, out_dir=tmp_path / "b")
        assert a.path.name == b.path.name
        assert a.path.name.endswith(".min.json")
        assert a.path.read_text() == b.path.read_text()

    def test_non_reproducing_bundle_is_rejected(self, tmp_path):
        path = crash_bundle(tmp_path / "orig")
        doc = json.loads(path.read_text())
        doc["error"]["type"] = "DeadlockError"  # forged identity
        forged = tmp_path / "forged.json"
        forged.write_text(json.dumps(doc, indent=2, sort_keys=True))
        with pytest.raises(MinimizeError, match="does not reproduce"):
            minimize_bundle(forged, out_dir=tmp_path / "min")

    def test_minimize_cli_exit_code(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        path = crash_bundle(tmp_path / "orig")
        assert main(["minimize", str(path),
                     "--out", str(tmp_path / "min")]) == 0
        out = capsys.readouterr().out
        assert "4 -> 1 spec(s)" in out
        assert "verified" in out
