"""CLI error paths: bad bundle files exit non-zero with a structured
``ReproError`` line on stderr — never a raw traceback."""

import json

import pytest

from repro.errors import ReproError
from repro.faults import BundleError, load_bundle
from repro.faults.__main__ import main

pytestmark = pytest.mark.usefixtures("execution_core")


@pytest.fixture(params=["show", "replay", "minimize"])
def command(request):
    return request.param


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBundleErrorType:
    def test_bundle_error_is_repro_and_value_error(self):
        assert issubclass(BundleError, ReproError)
        assert issubclass(BundleError, ValueError)

    def test_missing_path_raises_bundle_error(self, tmp_path):
        with pytest.raises(BundleError, match="cannot read"):
            load_bundle(tmp_path / "nope.json")

    def test_corrupt_json_raises_bundle_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{half a docu")
        with pytest.raises(BundleError, match="not valid JSON"):
            load_bundle(bad)

    def test_directory_raises_bundle_error(self, tmp_path):
        with pytest.raises(BundleError, match="cannot read"):
            load_bundle(tmp_path)

    def test_error_carries_the_path_as_context(self, tmp_path):
        with pytest.raises(BundleError) as info:
            load_bundle(tmp_path / "nope.json")
        assert info.value.context["path"].endswith("nope.json")


class TestCliExitCodes:
    def test_missing_bundle_exits_2_without_traceback(self, capsys,
                                                      tmp_path,
                                                      command):
        code, out, err = run_cli(capsys, command,
                                 str(tmp_path / "nope.json"))
        assert code == 2
        assert "error: BundleError: cannot read crash bundle" in err
        assert "Traceback" not in err and "Traceback" not in out

    def test_corrupt_bundle_exits_2(self, capsys, tmp_path, command):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all {{{")
        code, out, err = run_cli(capsys, command, str(bad))
        assert code == 2
        assert "error: BundleError:" in err
        assert "not valid JSON" in err

    def test_foreign_schema_exits_2(self, capsys, tmp_path, command):
        bad = tmp_path / "foreign.json"
        bad.write_text(json.dumps({"schema": "other.tool", "data": 1}))
        code, out, err = run_cli(capsys, command, str(bad))
        assert code == 2
        assert "error: BundleError:" in err
        assert "schema" in err

    def test_future_version_exits_2(self, capsys, tmp_path, command):
        bad = tmp_path / "future.json"
        bad.write_text(json.dumps(
            {"schema": "repro.crash-bundle", "version": 99}))
        code, out, err = run_cli(capsys, command, str(bad))
        assert code == 2
        assert "version" in err

    def test_unknown_workload_exits_2_on_replay(self, capsys, tmp_path):
        """A structurally valid bundle naming a workload this build
        cannot rerun is a WorkloadError, not a silent replay miss."""
        from tests.faults.test_bundle import crash

        exc = crash(tmp_path)
        doc = json.loads(exc.bundle_path.read_text())
        doc["config"]["workload"] = "not-a-workload"
        bad = tmp_path / "renamed.json"
        bad.write_text(json.dumps(doc))
        code, out, err = run_cli(capsys, "replay", str(bad))
        assert code == 2
        assert "error: WorkloadError:" in err
        assert "not-a-workload" in err
