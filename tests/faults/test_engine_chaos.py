"""Chaos at the sweep level: a real engine run where injected point
failures are quarantined while every healthy point still comes back
identical to a serial reference run."""

import json
from dataclasses import replace

import pytest

from repro.experiments.engine import (
    MANIFEST_SCHEMA,
    Engine,
    EngineError,
    PointSpec,
    sweep_specs,
)
from repro.experiments.harness import run_report_point

SCALE = 0.02


def healthy_specs():
    return sweep_specs("high", "coarse", [5, 6], ("SP",), SCALE)


class TestQuarantineSweep:
    def test_faulty_point_quarantined_healthy_points_exact(self, tmp_path):
        specs = list(healthy_specs())
        faulty = replace(specs[0], faults="retval@5")
        all_specs = specs + [faulty]
        engine = Engine(jobs=2, cache_dir=tmp_path / "cache",
                        retries=1, keep_going=True)
        reports = engine.run_reports(all_specs)

        # the injected point is a hole, never a wrong result
        assert reports[-1] is None
        assert all(r is not None for r in reports[:-1])

        # healthy points match a serial in-process reference exactly
        for spec, report in zip(specs, reports[:-1]):
            reference = run_report_point(
                spec.scheme, spec.n_windows, spec.concurrency,
                spec.granularity, scale=spec.scale, seed=spec.seed)
            assert report == reference

        manifest = json.loads(
            engine.failure_manifest_path().read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert len(manifest["failures"]) == 1
        failure = manifest["failures"][0]
        assert failure["error_type"] == "WindowIntegrityError"
        assert failure["transient"] is False
        assert failure["attempts"] == 1  # deterministic: no retry
        assert failure["spec"]["faults"] == "retval@5"

    def test_transient_fault_exhausts_retries_then_quarantines(
            self, tmp_path):
        spec = PointSpec("SP", 6, "high", "coarse", SCALE,
                         faults="store_fail@1")
        engine = Engine(jobs=1, cache_dir=tmp_path / "cache",
                        retries=1, keep_going=True)
        reports = engine.run_reports([spec])
        assert reports == [None]
        manifest = json.loads(
            engine.failure_manifest_path().read_text())
        failure = manifest["failures"][0]
        assert failure["error_type"] == "InjectedStoreError"
        assert failure["transient"] is True
        assert failure["attempts"] == 2  # initial + one retry

    def test_without_keep_going_the_sweep_aborts(self, tmp_path):
        spec = PointSpec("SP", 6, "high", "coarse", SCALE,
                         faults="retval@5")
        engine = Engine(jobs=1, cache_dir=tmp_path / "cache", retries=1)
        with pytest.raises(EngineError) as info:
            engine.run_reports([spec])
        assert "WindowIntegrityError" in str(info.value)

    def test_sweep_windows_skips_quarantined_points(self, tmp_path):
        from repro.experiments.harness import sweep_windows

        engine = Engine(jobs=1, cache_dir=tmp_path / "cache",
                        keep_going=True,
                        spec_defaults={"faults": "retval@5"})
        out = sweep_windows("high", "coarse", windows=[6],
                            schemes=("SP",), scale=SCALE, engine=engine)
        assert out["SP"] == []  # every point quarantined, none invented


class TestFaultedPointsStillCache:
    def test_surviving_faulted_point_is_cached_and_keyed(self, tmp_path):
        """A survivable fault (sched shuffle) completes, caches, and its
        cache entry never collides with the unfaulted point's."""
        base = PointSpec("SP", 6, "high", "coarse", SCALE)
        faulted = replace(base, faults="sched@3")
        engine = Engine(jobs=1, cache_dir=tmp_path / "cache")
        r_base = engine.run_reports([base])[0]
        r_faulted = engine.run_reports([faulted])[0]
        assert engine.last_stats.executed == 1  # not a cache hit
        assert r_faulted["config"]["faults"] == "sched@3"
        assert "faults" not in r_base["config"]
        # the architectural counters survive the shuffle unchanged
        assert (r_faulted["counters"]["total_cycles"] > 0)
