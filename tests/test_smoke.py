"""End-to-end smoke tests: deep recursion and producer/consumer under
every scheme and several window counts, with full register verification
and invariant checks."""

import pytest

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.core.invariants import check_invariants


def fib(n):
    if n < 2:
        yield Tick(1)
        return n
    a = yield Call(fib, n - 1)
    b = yield Call(fib, n - 2)
    return a + b


@pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
@pytest.mark.parametrize("n_windows", [4, 5, 7, 8, 16])
def test_single_thread_deep_recursion(scheme, n_windows):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    kernel.spawn(fib, 12, name="fib")
    result = kernel.run(max_steps=2_000_000)
    assert result.result_of("fib") == 144
    check_invariants(kernel.cpu, kernel.scheme,
                     [t.windows for t in kernel.threads])


def producer(stream, count):
    for i in range(count):
        yield Write(stream, bytes([i % 251]))
    yield CloseStream(stream)
    return count


def consumer(stream):
    total = 0
    while True:
        data = yield Read(stream, 64)
        if not data:
            return total
        total += sum(data)


@pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
@pytest.mark.parametrize("n_windows", [4, 6, 8])
def test_producer_consumer(scheme, n_windows):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    stream = kernel.stream(4, "s")
    kernel.spawn(producer, stream, 100, name="prod")
    kernel.spawn(consumer, stream, name="cons")
    result = kernel.run(max_steps=1_000_000)
    expected = sum(i % 251 for i in range(100))
    assert result.result_of("cons") == expected
    assert result.counters.context_switches > 10


@pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
def test_nested_calls_across_blocking(scheme):
    """Return values must survive context switches mid-call-chain."""

    def leaf(stream, i):
        yield Write(stream, b"x")
        return i * 3

    def mid(stream, i):
        v = yield Call(leaf, stream, i)
        return v + 1

    def chain(stream):
        total = 0
        for i in range(20):
            total += yield Call(mid, stream, i)
        yield CloseStream(stream)
        return total

    def drain(stream):
        n = 0
        while True:
            data = yield Read(stream, 8)
            if not data:
                return n
            n += len(data)

    kernel = Kernel(n_windows=5, scheme=scheme)
    stream = kernel.stream(2, "s")
    kernel.spawn(chain, stream, name="chain")
    kernel.spawn(drain, stream, name="drain")
    result = kernel.run(max_steps=1_000_000)
    assert result.result_of("chain") == sum(i * 3 + 1 for i in range(20))
    assert result.result_of("drain") == 20
