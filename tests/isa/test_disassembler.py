"""Disassembler round-trips and the heavier validation programs."""

import pytest

from repro.isa import Machine, assemble
from repro.isa.disassembler import disassemble, roundtrip
from repro.isa.programs import (
    ACKERMANN,
    DEEP_SUM,
    FACTORIAL,
    FACTORIAL_RETADD,
    FIBONACCI,
    MUTUAL,
    TAK,
    TWO_COUNTERS,
)

ALL_PROGRAMS = {
    "factorial": FACTORIAL,
    "factorial_retadd": FACTORIAL_RETADD,
    "fibonacci": FIBONACCI,
    "mutual": MUTUAL,
    "two_counters": TWO_COUNTERS,
    "deep_sum": DEEP_SUM,
    "tak": TAK,
    "ackermann": ACKERMANN,
}


def _tak(x, y, z):
    if y < x:
        return _tak(_tak(x - 1, y, z), _tak(y - 1, z, x),
                    _tak(z - 1, x, y))
    return z


def _ack(m, n):
    if m == 0:
        return n + 1
    if n == 0:
        return _ack(m - 1, 1)
    return _ack(m - 1, _ack(m, n - 1))


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_roundtrip_reassembles(self, name):
        program = assemble(ALL_PROGRAMS[name])
        again = roundtrip(program)
        assert len(again) == len(program)
        for a, b in zip(program.instructions, again.instructions):
            assert a.op == b.op
            assert a.label == b.label
            assert len(a.operands) == len(b.operands)

    @pytest.mark.parametrize("name", ["factorial", "fibonacci", "tak"])
    def test_roundtrip_executes_identically(self, name):
        original = Machine(assemble(ALL_PROGRAMS[name]), n_windows=5)
        t1 = original.add_thread("start")
        original.run(max_steps=5_000_000)
        recycled = Machine(roundtrip(assemble(ALL_PROGRAMS[name])),
                           n_windows=5)
        t2 = recycled.add_thread("start")
        recycled.run(max_steps=5_000_000)
        assert t1.exit_value == t2.exit_value
        assert (original.counters.saves == recycled.counters.saves)

    def test_disassembly_has_labels(self):
        text = disassemble(assemble(FACTORIAL))
        assert "factorial:" in text
        assert "base:" in text
        assert "call" in text


class TestHeavyPrograms:
    @pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
    @pytest.mark.parametrize("n_windows", [4, 6, 8])
    def test_tak(self, scheme, n_windows):
        machine = Machine(assemble(TAK), n_windows=n_windows,
                          scheme=scheme)
        thread = machine.add_thread("start")
        machine.run(max_steps=5_000_000)
        assert thread.exit_value == _tak(10, 5, 3)
        if n_windows == 4:
            assert machine.counters.overflow_traps > 0

    @pytest.mark.parametrize("scheme", ["NS", "SNP", "SP"])
    @pytest.mark.parametrize("n_windows", [4, 6, 8])
    def test_ackermann(self, scheme, n_windows):
        machine = Machine(assemble(ACKERMANN), n_windows=n_windows,
                          scheme=scheme)
        thread = machine.add_thread("start")
        machine.run(max_steps=5_000_000)
        assert thread.exit_value == _ack(2, 3) == 9

    def test_tak_save_count_scheme_independent(self):
        counts = set()
        for scheme in ("NS", "SNP", "SP"):
            machine = Machine(assemble(TAK), n_windows=5, scheme=scheme)
            machine.add_thread("start")
            machine.run(max_steps=5_000_000)
            counts.add(machine.counters.saves)
        assert len(counts) == 1
