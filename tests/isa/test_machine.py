"""Interpreter semantics: ALU, branches, memory, call/ret, windows."""

import pytest

from repro.isa import Machine, MachineFault, assemble


def run_one(source, scheme="SP", n_windows=8, args=(), entry="start"):
    machine = Machine(assemble(source), n_windows=n_windows, scheme=scheme)
    thread = machine.add_thread(entry, args=args, name="t")
    machine.run()
    return thread.exit_value, machine


class TestALU:
    def test_arithmetic(self):
        value, __ = run_one("""
        start:
            mov  7, %l0
            add  %l0, 5, %l1
            sub  %l1, 2, %l2
            smul %l2, 3, %l3
            mov  %l3, %o0
            halt
        """)
        assert value == 30

    def test_logic_and_shifts(self):
        value, __ = run_one("""
        start:
            mov  0xf0, %l0
            and  %l0, 0x3c, %l1   ; 0x30
            or   %l1, 0x03, %l2   ; 0x33
            xor  %l2, 0x11, %l3   ; 0x22
            sll  %l3, 2, %l4      ; 0x88
            srl  %l4, 3, %o0      ; 0x11
            halt
        """)
        assert value == 0x11

    def test_g0_reads_zero_and_ignores_writes(self):
        value, __ = run_one("""
        start:
            mov  99, %g0
            add  %g0, 1, %o0
            halt
        """)
        assert value == 1


class TestBranches:
    @pytest.mark.parametrize("op,a,b,expect", [
        ("be", 3, 3, 1), ("be", 3, 4, 0),
        ("bne", 3, 4, 1), ("bne", 3, 3, 0),
        ("bg", 5, 4, 1), ("bg", 4, 5, 0),
        ("bge", 4, 4, 1), ("bl", -1, 0, 1),
        ("ble", 4, 4, 1), ("ble", 5, 4, 0),
    ])
    def test_conditions(self, op, a, b, expect):
        value, __ = run_one("""
        start:
            cmp  %d, %d
            %s   yes
            mov  0, %%o0
            halt
        yes:
            mov  1, %%o0
            halt
        """ % (a, b, op))
        assert value == expect


class TestMemory:
    def test_ld_st_roundtrip(self):
        value, machine = run_one("""
        start:
            mov  100, %g1
            mov  42, %l0
            st   %l0, [%g1 + 8]
            ld   [%g1 + 8], %o0
            halt
        """)
        assert value == 42
        assert machine.peek(108) == 42

    def test_poke_visible_to_program(self):
        source = """
        start:
            ld   [%g0 + 0], %o0
            halt
        """
        machine = Machine(assemble(source))
        machine.poke(0, 77)
        thread = machine.add_thread("start")
        machine.run()
        assert thread.exit_value == 77


class TestCallsAndWindows:
    def test_leaf_call_retl(self):
        value, __ = run_one("""
        start:
            mov  20, %o0
            call double
            nop
            halt
        double:
            add  %o0, %o0, %o0
            retl
        """)
        assert value == 40

    def test_save_with_add_function(self):
        """save rs1, rs2, rd: computed in the old window, written in
        the new one (the SPARC stack-pointer idiom)."""
        value, __ = run_one("""
        start:
            mov  1000, %o6
            call func
            nop
            halt
        func:
            save %o6, -96, %o6
            mov  %o6, %i0         ; new %sp
            ret
        """)
        assert value == 904

    def test_arguments_through_overlap(self):
        value, __ = run_one("""
        start:
            mov  3, %o0
            mov  4, %o1
            call addup
            nop
            halt
        addup:
            save
            add  %i0, %i1, %i0
            ret
        """)
        assert value == 7

    def test_thread_args_in_ins(self):
        source = """
        start:
            add %i0, %i1, %o0
            halt
        """
        value, __ = run_one(source, args=(30, 12))
        assert value == 42


class TestFaults:
    def test_step_budget(self):
        machine = Machine(assemble("start: ba start"))
        machine.add_thread("start")
        with pytest.raises(MachineFault):
            machine.run(max_steps=1000)

    def test_pc_out_of_range(self):
        machine = Machine(assemble("start: nop"))
        machine.add_thread("start")
        with pytest.raises(MachineFault):
            machine.run()
