"""Assembler unit tests."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Operand
from repro.isa.registers import RegisterError, parse_register


class TestRegisters:
    def test_banks(self):
        assert parse_register("%g0") == ("g", 0)
        assert parse_register("%o3") == ("o", 3)
        assert parse_register("%l7") == ("l", 7)
        assert parse_register("%i1") == ("i", 1)

    def test_synonyms(self):
        assert parse_register("%sp") == ("o", 6)
        assert parse_register("%fp") == ("i", 6)

    @pytest.mark.parametrize("bad", ["%x0", "g0", "%g8", "%gg", "%g"])
    def test_bad_names(self, bad):
        with pytest.raises(RegisterError):
            parse_register(bad)


class TestAssemble:
    def test_labels_resolved_to_indices(self):
        program = assemble("""
        start:  mov 1, %o0
                ba end
                nop
        end:    halt
        """)
        assert program.entry("start") == 0
        assert program.entry("end") == 3
        assert program.instructions[1].label == 3

    def test_alu_operands(self):
        program = assemble("add %i0, -5, %o2")
        instr = program.instructions[0]
        assert instr.op == "add"
        assert instr.operands[0].kind == Operand.REG
        assert instr.operands[1].value == -5
        assert (instr.operands[2].bank, instr.operands[2].index) == ("o", 2)

    def test_memory_operands(self):
        program = assemble("ld [%g1 + 8], %o0\nst %o0, [%g1 - 4]")
        ld, st = program.instructions
        assert ld.operands[0].kind == Operand.MEM
        assert ld.operands[0].offset == 8
        assert st.operands[1].offset == -4

    def test_bare_memory_operand(self):
        program = assemble("ld [%l2], %o0")
        operand = program.instructions[0].operands[0]
        assert operand.offset == 0
        assert (operand.bank, operand.index) == ("l", 2)

    def test_comments_stripped(self):
        program = assemble("mov 1, %o0 ; comment\nnop ! also comment")
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("mov 0x10, %o0")
        assert program.instructions[0].operands[0].value == 16

    def test_label_on_same_line(self):
        program = assemble("here: nop")
        assert program.entry("here") == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate %o0")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ba nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: nop")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add %o0, %o1")

    def test_st_operand_order_enforced(self):
        with pytest.raises(AssemblyError):
            assemble("st [%g1], %o0")

    def test_restore_zero_or_three_operands(self):
        assert len(assemble("restore")) == 1
        assert len(assemble("restore %l0, %g0, %o0")) == 1
        with pytest.raises(AssemblyError):
            assemble("restore %l0, %g0")

    def test_missing_entry_label(self):
        with pytest.raises(AssemblyError):
            assemble("nop").entry("start")
