"""Trap-level validation: real recursive programs over every scheme
and window count must compute identical results, with identical
dynamic save counts, while exercising overflow and in-place underflow
traps with live register data."""

import pytest

from repro.isa import Machine, assemble
from repro.isa.programs import (
    DEEP_SUM,
    FACTORIAL,
    FACTORIAL_RETADD,
    FIBONACCI,
    MUTUAL,
    TWO_COUNTERS,
)

SCHEMES = ("NS", "SNP", "SP")
WINDOW_COUNTS = (4, 5, 6, 8, 16)


def run(source, scheme, n_windows, args=()):
    machine = Machine(assemble(source), n_windows=n_windows, scheme=scheme)
    thread = machine.add_thread("start", args=args)
    machine.run(max_steps=3_000_000)
    return thread.exit_value, machine


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("n_windows", WINDOW_COUNTS)
class TestPrograms:
    def test_factorial(self, scheme, n_windows):
        value, machine = run(FACTORIAL, scheme, n_windows)
        assert value == 720
        if n_windows <= 5:
            assert machine.counters.overflow_traps > 0

    def test_factorial_retadd_peephole(self, scheme, n_windows):
        """§4.3: the restore instruction that also adds must survive
        underflow traps (the handler emulates the add)."""
        value, machine = run(FACTORIAL_RETADD, scheme, n_windows)
        assert value == 5040
        if n_windows == 4:
            assert machine.counters.underflow_traps > 0

    def test_fibonacci(self, scheme, n_windows):
        value, __ = run(FIBONACCI, scheme, n_windows)
        assert value == 55

    def test_mutual_recursion(self, scheme, n_windows):
        value, __ = run(MUTUAL, scheme, n_windows)
        assert value == 0

    def test_deep_sum(self, scheme, n_windows):
        machine = Machine(assemble(DEEP_SUM), n_windows=n_windows,
                          scheme=scheme)
        machine.poke(0, 40)
        thread = machine.add_thread("start")
        machine.run(max_steps=3_000_000)
        assert thread.exit_value == sum(range(1, 41))
        assert machine.counters.overflow_traps >= 40 - n_windows


def test_save_counts_scheme_independent():
    counts = set()
    for scheme in SCHEMES:
        for n_windows in (4, 8):
            __, machine = run(FIBONACCI, scheme, n_windows)
            counts.add(machine.counters.saves)
    assert len(counts) == 1


@pytest.mark.parametrize("scheme", SCHEMES)
def test_two_threads_share_windows(scheme):
    machine = Machine(assemble(TWO_COUNTERS), n_windows=6, scheme=scheme)
    t1 = machine.add_thread("start", args=(0, 512), name="c1")
    t2 = machine.add_thread("start", args=(0, 768), name="c2")
    results = machine.run(max_steps=200_000)
    assert results == {"c1": 8, "c2": 8}
    assert machine.peek(512) == 8
    assert machine.peek(768) == 8
    assert machine.counters.context_switches > 10


@pytest.mark.parametrize("scheme", ("SNP", "SP"))
def test_inplace_underflow_preserves_live_registers(scheme):
    """After the deep recursion unwinds through in-place restores, the
    caller's locals and the return value must both be intact — this is
    the register-level proof of §3.2's correctness."""
    source = """
    start:
        mov  1234, %l5        ; live local in the root frame
        mov  25, %o0
        call sum
        nop
        add  %o0, %l5, %o0    ; root local must have survived
        halt
    sum:
        save
        cmp  %i0, 1
        ble  base
        add  %i0, -1, %o0
        call sum
        nop
        add  %o0, %i0, %i0
        ret
    base:
        mov  %i0, %i0
        ret
    """
    value, machine = run(source, scheme, 4)
    assert value == sum(range(1, 26)) + 1234
    assert machine.counters.underflow_traps > 0
