"""Assembler/disassembler round-trip property: for every committed
program AND for randomly generated ones, ``assemble(disassemble(p))``
is bit-identical to ``p`` (same opcode, operand encodings, and
resolved branch targets for every instruction), and disassembly is a
fixpoint (one trip through the printer is canonical)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import ALU_OPS, BRANCH_OPS
from repro.isa.programs import (
    ACKERMANN,
    DEEP_SUM,
    FACTORIAL,
    FACTORIAL_RETADD,
    FIBONACCI,
    MUTUAL,
    TAK,
    TWO_COUNTERS,
)

ALL_PROGRAMS = {
    "factorial": FACTORIAL,
    "factorial_retadd": FACTORIAL_RETADD,
    "fibonacci": FIBONACCI,
    "mutual": MUTUAL,
    "two_counters": TWO_COUNTERS,
    "deep_sum": DEEP_SUM,
    "tak": TAK,
    "ackermann": ACKERMANN,
}


def _encode(program):
    """Canonical bit-level encoding of a program's instruction stream."""
    return tuple(
        (instr.op,
         instr.label,
         tuple((o.kind, o.bank, o.index, o.value, o.offset)
               for o in instr.operands))
        for instr in program.instructions)


def test_committed_programs_roundtrip_bit_identical():
    for name, source in ALL_PROGRAMS.items():
        program = assemble(source)
        again = assemble(disassemble(program))
        assert _encode(again) == _encode(program), name


def test_disassembly_is_a_fixpoint():
    for name, source in ALL_PROGRAMS.items():
        once = disassemble(assemble(source))
        twice = disassemble(assemble(once))
        assert twice == once, name


# -- random-program generation --------------------------------------------

_reg = st.builds("%%%s%d".__mod__,
                 st.tuples(st.sampled_from("goli"),
                           st.integers(0, 7)))
_imm = st.integers(-1024, 1024).map(str)
_reg_or_imm = st.one_of(_reg, _imm)
_mem = st.builds(
    lambda bank, idx, off: ("[%%%s%d]" % (bank, idx) if off == 0 else
                            "[%%%s%d %s %d]" % (bank, idx,
                                                "+" if off > 0 else "-",
                                                abs(off))),
    st.sampled_from("goli"), st.integers(0, 7), st.integers(-64, 64))


def _instruction(n_labels):
    """One random instruction line, given valid target labels L0..Ln."""
    target = st.integers(0, n_labels).map("L%d".__mod__)
    return st.one_of(
        st.tuples(st.sampled_from(ALU_OPS), _reg, _reg_or_imm, _reg).map(
            lambda t: "%s %s, %s, %s" % t),
        st.tuples(st.sampled_from(BRANCH_OPS + ("call",)), target).map(
            lambda t: "%s %s" % t),
        st.tuples(st.just("mov"), _reg_or_imm, _reg).map(
            lambda t: "mov %s, %s" % t[1:]),
        st.tuples(st.just("cmp"), _reg, _reg_or_imm).map(
            lambda t: "cmp %s, %s" % t[1:]),
        st.tuples(_mem, _reg).map(lambda t: "ld %s, %s" % t),
        st.tuples(_reg, _mem).map(lambda t: "st %s, %s" % t),
        st.tuples(st.sampled_from(("save", "restore")), _reg,
                  _reg_or_imm, _reg).map(
            lambda t: "%s %s, %s, %s" % t),
        st.sampled_from(("save", "restore", "ret", "retl",
                         "nop", "halt", "yield")))


@st.composite
def _programs(draw):
    n = draw(st.integers(1, 12))
    lines = []
    for index in range(n):
        lines.append("L%d:" % index)
        lines.append("    " + draw(_instruction(n)))
    lines.append("L%d:" % n)  # one-past-end targets are legal
    return "\n".join(lines) + "\n"


@settings(max_examples=200, deadline=None)
@given(_programs())
def test_random_programs_roundtrip_bit_identical(source):
    program = assemble(source)
    again = assemble(disassemble(program))
    assert _encode(again) == _encode(program)
    once = disassemble(program)
    assert disassemble(assemble(once)) == once
