"""The ISA machine's precomputed opcode dispatch table: one bound
handler per opcode, built once at construction, covering exactly the
assembler's opcode set."""

from repro.isa import Machine, assemble
from repro.isa.instructions import ALL_OPS


def _machine(source: str = "start:\n  halt\n") -> Machine:
    return Machine(assemble(source), n_windows=8, scheme="NS")


def test_dispatch_covers_every_opcode():
    machine = _machine()
    missing = [op for op in ALL_OPS if op not in machine._dispatch]
    assert not missing, "no handler for %s" % missing


def test_dispatch_handlers_are_bound_to_their_machine():
    machine = _machine()
    for op, handler in machine._dispatch.items():
        bound_to = getattr(handler, "__self__", None)
        if bound_to is not None:
            assert bound_to is machine, op
        else:
            # ALU/branch handlers are closures minted per machine;
            # they must capture *this* machine, not share state
            assert handler.__closure__ is not None, op


def test_dispatch_table_is_stable_across_runs():
    machine = _machine()
    table = machine._dispatch
    machine.add_thread("start")
    machine.run()
    assert machine._dispatch is table


def test_alu_and_branch_semantics_via_table():
    machine = _machine("""
start:
  mov  6, %l0
  mov  7, %l1
  smul %l0, %l1, %l2
  cmp  %l2, 42
  be   done
  mov  0, %l2
done:
  mov  %l2, %o0
  halt
""")
    thread = machine.add_thread("start")
    machine.run()
    assert thread.exit_value == 42
