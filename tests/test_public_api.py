"""The documented public API surface must exist and stay importable."""

import inspect

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_schemes_registry(self):
        assert set(repro.SCHEMES) == {"NS", "SNP", "SP"}

    def test_kernel_signature_stable(self):
        params = inspect.signature(repro.Kernel).parameters
        for expected in ("n_windows", "scheme", "queue_policy",
                         "cost_model", "allocation",
                         "verify_registers", "scheme_kwargs"):
            assert expected in params

    def test_ops_are_exported(self):
        for op in ("Call", "Tick", "Read", "ReadLine", "Write",
                   "CloseStream", "YieldCPU", "FlushHint", "Spawn",
                   "Join"):
            assert hasattr(repro, op)

    def test_readme_quickstart_runs(self):
        """The snippet in the package docstring must actually work."""
        from repro import Call, Kernel, Tick

        def leaf(n):
            yield Tick(5)
            return n * n

        def root():
            total = 0
            for i in range(4):
                total += yield Call(leaf, i)
            return total

        kernel = Kernel(n_windows=8, scheme="SP")
        kernel.spawn(root, name="main")
        result = kernel.run()
        assert result.result_of("main") == 14
        assert result.total_cycles > 0


class TestSubpackageImports:
    def test_experiments(self):
        from repro.experiments import (
            run_fig11, run_fig15, run_table1, run_table2, run_point)
        assert callable(run_fig11) and callable(run_point)
        assert callable(run_fig15) and callable(run_table1)
        assert callable(run_table2)

    def test_apps(self):
        from repro.apps.spellcheck import (
            BUFFER_CONFIGS, SpellConfig, build_spellchecker,
            run_spellchecker)
        assert len(BUFFER_CONFIGS) == 6
        assert SpellConfig.named("high", "fine").m == 1

    def test_isa(self):
        from repro.isa import Machine, assemble
        machine = Machine(assemble("start: mov 1, %o0\n halt"))
        thread = machine.add_thread("start")
        machine.run()
        assert thread.exit_value == 1

    def test_metrics(self):
        from repro.metrics.behavior import BehaviorTracker
        from repro.metrics.tracing import OccupancyTimeline
        assert BehaviorTracker() and OccupancyTimeline()

    def test_diagrams(self):
        from repro.windows.diagrams import reenact_figure8
        assert reenact_figure8("SP").facts["cwp_did_not_move"]
