"""Figure 12 — average context-switch time vs number of windows, high
concurrency.

The paper's point: with enough windows the sharing schemes' average
switch time approaches their Table 2 *best case* (especially at fine
granularity), meaning most switches transfer no windows at all — the
property that makes the algorithm attractive for multi-threaded
architectures (§6.3).
"""

import pytest

from benchmarks.conftest import series_from, value_at, write_series_report
from repro.core.costs import CostModel

GRANULARITIES = ("coarse", "medium", "fine")


@pytest.fixture(scope="module")
def fig12(high_sweep):
    return series_from(high_sweep, lambda p: p.avg_switch_cycles)


@pytest.fixture(scope="module")
def model():
    return CostModel()


def test_regenerate_fig12(benchmark, fig12, results_dir, scale):
    def render():
        write_series_report(
            results_dir / "fig12.txt",
            "Figure 12: average context-switch time (cycles), high "
            "concurrency, scale=%.2f" % scale,
            fig12, fmt="%.1f")
        return fig12

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestFig12Shape:
    def test_sp_approaches_best_case_at_fine_granularity(self, fig12,
                                                         model):
        sp = fig12["fine"]["SP"]
        last = max(x for x, __ in sp)
        best = model.sp_switch_cost(0, 0, False)
        assert value_at(sp, last) <= best * 1.10

    def test_snp_approaches_best_case_at_fine_granularity(self, fig12,
                                                          model):
        snp = fig12["fine"]["SNP"]
        last = max(x for x, __ in snp)
        best = model.snp_switch_cost(0, 0)
        assert value_at(snp, last) <= best * 1.10

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_ns_never_below_its_minimum(self, fig12, granularity,
                                        model):
        floor = model.ns_switch_cost(1, 0)
        for __, y in fig12[granularity]["NS"]:
            assert y >= floor

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_sharing_switch_time_falls_with_windows(self, fig12,
                                                    granularity, scheme):
        points = fig12[granularity][scheme]
        first = points[0][1]
        last = points[-1][1]
        assert last < first

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sp_cheaper_than_snp_with_enough_windows(self, fig12,
                                                     granularity):
        """The PRW pays for itself: no outs transfer on switches."""
        sp = fig12[granularity]["SP"]
        snp = fig12[granularity]["SNP"]
        last = max(x for x, __ in sp)
        assert value_at(sp, last) < value_at(snp, last)
