"""Figure 13 — probability of window traps vs number of windows, high
concurrency.

Traps divided by executed save+restore instructions.  Since the number
of function calls is constant, a falling curve means the sharing
schemes keep procedure calls fast too (§6.3): with enough windows
their trap probability approaches zero, while NS keeps a floor of
underflow traps caused by flushing on every switch.
"""

import pytest

from benchmarks.conftest import series_from, value_at, write_series_report

GRANULARITIES = ("coarse", "medium", "fine")


@pytest.fixture(scope="module")
def fig13(high_sweep):
    return series_from(high_sweep, lambda p: p.trap_probability)


def test_regenerate_fig13(benchmark, fig13, results_dir, scale):
    def render():
        write_series_report(
            results_dir / "fig13.txt",
            "Figure 13: window-trap probability, high concurrency, "
            "scale=%.2f" % scale,
            fig13, fmt="%.4f")
        return fig13

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestFig13Shape:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_sharing_traps_vanish_with_enough_windows(self, fig13,
                                                      granularity,
                                                      scheme):
        points = fig13[granularity][scheme]
        last = max(x for x, __ in points)
        assert value_at(points, last) < 0.05

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_sharing_traps_high_when_windows_scarce(self, fig13,
                                                    granularity, scheme):
        assert value_at(fig13[granularity][scheme], 4) > 0.10

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_ns_probability_flat(self, fig13, granularity):
        values = [y for __, y in fig13[granularity]["NS"]]
        assert max(values) - min(values) < 0.01

    @pytest.mark.parametrize("granularity", ["medium", "fine"])
    def test_ns_keeps_a_trap_floor(self, fig13, granularity):
        """The hidden underflow cost of flush-on-switch (§6.2)."""
        values = [y for __, y in fig13[granularity]["NS"]]
        assert min(values) > 0.05

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sharing_beats_ns_with_enough_windows(self, fig13,
                                                  granularity):
        last = max(x for x, __ in fig13[granularity]["SP"])
        for scheme in ("SP", "SNP"):
            assert (value_at(fig13[granularity][scheme], last)
                    < value_at(fig13[granularity]["NS"], last))

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_probability_decreases_overall(self, fig13, granularity,
                                           scheme):
        points = fig13[granularity][scheme]
        assert points[-1][1] < points[0][1]
