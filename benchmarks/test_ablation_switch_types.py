"""Ablation — the two types of context switching (§4.4).

Leaving a long sleeper's windows in place wastes them: they get
evicted one overflow trap at a time (trap entry/exit paid per window).
Flushing them at switch time is cheaper per window.  The paper argues
this qualitatively; we measure it on the fork/join workload whose
parent sleeps while its children grind.
"""

import pytest

from repro import Kernel
from repro.apps.synthetic import (
    expected_fork_join_total,
    spawn_fork_join,
)
from repro.metrics.reporting import format_table


def _run(flush_hint, scheme="SP", n_windows=6, items=150):
    kernel = Kernel(n_windows=n_windows, scheme=scheme)
    spawn_fork_join(kernel, n_children=4, items=items,
                    flush_hint=flush_hint)
    result = kernel.run(max_steps=4_000_000)
    assert result.result_of("parent") == expected_fork_join_total(items)
    return result.counters


@pytest.fixture(scope="module")
def switch_type_results():
    return {
        ("SP", False): _run(False, "SP"),
        ("SP", True): _run(True, "SP"),
        ("SNP", False): _run(False, "SNP"),
        ("SNP", True): _run(True, "SNP"),
    }


def test_regenerate_switch_type_ablation(benchmark, switch_type_results,
                                         results_dir):
    def render():
        rows = []
        for (scheme, flush), c in sorted(switch_type_results.items()):
            rows.append([scheme, "flush" if flush else "in situ",
                         c.overflow_traps, c.trap_cycles,
                         c.total_cycles])
        text = format_table(
            ["scheme", "long-sleep switch", "overflow traps",
             "trap cycles", "total cycles"],
            rows, title="Flush-type vs leave-in-situ context switches "
                        "(fork/join, 6 windows)")
        (results_dir / "ablation_switch_types.txt").write_text(text)
        return rows

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestSwitchTypes:
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_flush_reduces_overflow_traps(self, switch_type_results,
                                          scheme):
        in_situ = switch_type_results[(scheme, False)]
        flushed = switch_type_results[(scheme, True)]
        assert flushed.overflow_traps <= in_situ.overflow_traps

    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_flush_reduces_trap_cycles(self, switch_type_results,
                                       scheme):
        in_situ = switch_type_results[(scheme, False)]
        flushed = switch_type_results[(scheme, True)]
        assert flushed.trap_cycles <= in_situ.trap_cycles
