"""Figure 14 — execution time vs number of windows, low concurrency
(M = 1024, so the I/O threads almost never switch).

Paper §6.4: the variation in total window activity is greater than in
the high-concurrency case — the coarse-granularity SP curve needs many
more windows to saturate — and the SNP scheme misbehaves at fine
granularity because of the simple allocation policy.
"""

import pytest

from benchmarks.conftest import series_from, value_at, write_series_report

GRANULARITIES = ("coarse", "medium", "fine")


@pytest.fixture(scope="module")
def fig14(low_sweep):
    return series_from(low_sweep, lambda p: p.total_cycles)


def test_regenerate_fig14(benchmark, fig14, results_dir, scale):
    def render():
        write_series_report(
            results_dir / "fig14.txt",
            "Figure 14: execution time (cycles), low concurrency, "
            "scale=%.2f" % scale,
            fig14)
        return fig14

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestFig14Shape:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sp_best_with_enough_windows(self, fig14, granularity):
        by_scheme = fig14[granularity]
        last = max(x for x, __ in by_scheme["SP"])
        sp = value_at(by_scheme["SP"], last)
        assert sp < value_at(by_scheme["NS"], last)
        assert sp <= value_at(by_scheme["SNP"], last) * 1.01

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_ns_flat(self, fig14, granularity):
        values = [y for __, y in fig14[granularity]["NS"]]
        assert max(values) <= min(values) * 1.02

    def test_coarse_needs_many_windows_to_saturate(self, fig14):
        """§6.4: "20 or more windows are required for the SP scheme at
        the coarse granularity" — at 12 windows the low-concurrency
        coarse SP curve is still measurably above its floor."""
        low = fig14["coarse"]["SP"]
        last = max(x for x, __ in low)
        assert value_at(low, 12) > value_at(low, last) * 1.03

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sharing_improves_with_windows(self, fig14, granularity):
        for scheme in ("SP", "SNP"):
            points = fig14[granularity][scheme]
            assert points[-1][1] < points[0][1]

    def test_low_concurrency_runs_fewer_cycles_than_high(self, fig14,
                                                         high_sweep):
        """Fewer context switches overall (Table 1's low columns)."""
        high = series_from(high_sweep,
                           lambda p: p.total_cycles)
        for granularity in GRANULARITIES:
            last = max(x for x, __ in fig14[granularity]["SP"])
            assert (value_at(fig14[granularity]["SP"], last)
                    < value_at(high[granularity]["SP"], last))
