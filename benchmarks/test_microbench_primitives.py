"""Microbenchmarks of the simulator primitives themselves (host-side
performance, measured by pytest-benchmark): the save/restore hot path,
trap handling, context switches, and a full tiny pipeline."""

import pytest

from repro import Call, CloseStream, Kernel, Read, Tick, Write
from repro.isa import Machine, assemble
from repro.isa.programs import FIBONACCI
from tests.helpers import (
    call,
    call_to_depth,
    dispatch,
    make_machine,
    new_thread,
    ret,
)


def test_save_restore_hot_path(benchmark):
    """Trap-free call/return oscillation."""
    cpu, scheme = make_machine(8, "SP")
    tw = new_thread(scheme, 0)
    dispatch(cpu, scheme, None, tw)
    call_to_depth(cpu, tw, 3)

    def oscillate():
        call(cpu, tw)
        ret(cpu, tw)

    benchmark(oscillate)


def test_overflow_underflow_cycle(benchmark):
    """Unwind through an in-place underflow, climb back through an
    overflow — one full trap cycle per iteration."""
    cpu, scheme = make_machine(4, "SNP")
    tw = new_thread(scheme, 0)
    dispatch(cpu, scheme, None, tw)
    call_to_depth(cpu, tw, 6)

    def trap_cycle():
        while tw.resident > 1:
            ret(cpu, tw)
        ret(cpu, tw)              # in-place underflow
        call_to_depth(cpu, tw, 6)  # overflow on the way back up

    benchmark(trap_cycle)
    assert cpu.counters.overflow_traps > 0
    assert cpu.counters.underflow_traps > 0


@pytest.mark.parametrize("scheme_name", ["NS", "SNP", "SP"])
def test_context_switch_cost(benchmark, scheme_name):
    cpu, scheme = make_machine(10, scheme_name)
    t1 = new_thread(scheme, 0)
    t2 = new_thread(scheme, 1)
    dispatch(cpu, scheme, None, t1)
    call_to_depth(cpu, t1, 3)
    dispatch(cpu, scheme, t1, t2)
    call_to_depth(cpu, t2, 3)
    state = {"current": t2, "other": t1}

    def switch():
        scheme.context_switch(state["current"], state["other"])
        state["current"], state["other"] = (state["other"],
                                            state["current"])

    benchmark(switch)


def test_kernel_pipeline_throughput(benchmark):
    """End-to-end: a small producer/consumer run per iteration."""

    def run_once():
        kernel = Kernel(n_windows=8, scheme="SP",
                        verify_registers=False)
        stream = kernel.stream(4, "s")

        def producer(s):
            for i in range(50):
                yield Write(s, bytes([i]))
            yield CloseStream(s)
            return None

        def consumer(s):
            total = 0
            while True:
                data = yield Read(s, 8)
                if not data:
                    return total
                total += sum(data)
                yield Call(_leaf, len(data))

        def _leaf(n):
            yield Tick(n)
            return n

        kernel.spawn(producer, stream, name="p")
        kernel.spawn(consumer, stream, name="c")
        return kernel.run().result_of("c")

    assert benchmark(run_once) == sum(range(50))


def test_isa_interpreter_throughput(benchmark):
    program = assemble(FIBONACCI)

    def run_fib():
        machine = Machine(program, n_windows=6, scheme="SP")
        thread = machine.add_thread("start")
        machine.run()
        return thread.exit_value

    assert benchmark(run_fib) == 55
