"""Figure 15 — the working-set concept on register windows (§4.6,
§6.5): high concurrency, the awoken-thread-with-windows-jumps-the-queue
policy.

Paper claims reproduced:

* performance at a small number of windows improves dramatically — the
  sharing schemes "work well with even seven or eight windows";
* at four or five windows the scheduling cannot push total window
  activity low enough, so the sharing schemes still lose;
* there is no significant performance loss versus FIFO at a large
  number of windows.
"""

import pytest

from benchmarks.conftest import series_from, value_at, write_series_report

GRANULARITIES = ("coarse", "medium", "fine")


@pytest.fixture(scope="module")
def fig15(ws_sweep):
    return series_from(ws_sweep, lambda p: p.total_cycles)


@pytest.fixture(scope="module")
def fig11_series(high_sweep):
    return series_from(high_sweep, lambda p: p.total_cycles)


def test_regenerate_fig15(benchmark, fig15, results_dir, scale):
    def render():
        write_series_report(
            results_dir / "fig15.txt",
            "Figure 15: execution time (cycles), high concurrency, "
            "working-set scheduling, scale=%.2f" % scale,
            fig15)
        return fig15

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestFig15Shape:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_sharing_works_well_at_seven_or_eight_windows(
            self, fig15, granularity, scheme):
        points = fig15[granularity][scheme]
        last = max(x for x, __ in points)
        floor = value_at(points, last)
        at8 = value_at(points, 8)
        assert at8 <= floor * 1.30

    @pytest.mark.parametrize("granularity", ["medium", "fine"])
    def test_four_windows_still_not_enough(self, fig15, granularity):
        """§6.5: scheduling cannot reduce total window activity below
        the four-five window level."""
        sp = fig15[granularity]["SP"]
        last = max(x for x, __ in sp)
        assert value_at(sp, 4) > value_at(sp, last) * 1.25

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_improves_on_fifo_when_windows_scarce(self, fig15,
                                                  fig11_series,
                                                  granularity):
        """The headline of Figure 15 vs Figure 11."""
        improved = 0
        for n in (6, 7, 8):
            ws = value_at(fig15[granularity]["SP"], n)
            fifo = value_at(fig11_series[granularity]["SP"], n)
            if ws < fifo * 0.97:
                improved += 1
        assert improved >= 2

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_no_significant_loss_at_many_windows(self, fig15,
                                                 fig11_series,
                                                 granularity, scheme):
        last = max(x for x, __ in fig15[granularity][scheme])
        ws = value_at(fig15[granularity][scheme], last)
        fifo = value_at(fig11_series[granularity][scheme], last)
        assert ws <= fifo * 1.05
