"""Table 2 — cycles for a context switch (§6.2).

The calibrated cost model must land inside the paper's measured S-20
range for every (scheme, saves, restores) row, and the running system
must only ever produce switch shapes the schemes allow.
"""

import pytest

from repro.core.costs import CostModel
from repro.experiments.table2 import render_table2, run_table2


@pytest.fixture(scope="module")
def table2():
    return run_table2(scale=0.05)


def test_regenerate_table2(benchmark, results_dir):
    result = benchmark.pedantic(lambda: run_table2(scale=0.05),
                                rounds=1, iterations=1)
    (results_dir / "table2.txt").write_text(render_table2(result))


class TestTable2:
    def test_every_model_row_inside_paper_range(self, table2):
        for row, value, ok in table2.rows:
            assert ok, (row, value)

    def test_snp_switches_transfer_at_most_one_each_way(self, table2):
        """Table 2 lists SNP rows only up to (1, 1): the scheme never
        moves more than one window per direction at a switch."""
        for (saves, restores) in table2.observed_histograms["SNP"]:
            assert saves <= 1 and restores <= 1

    def test_sp_switches_transfer_at_most_two_saves(self, table2):
        for (saves, restores) in table2.observed_histograms["SP"]:
            assert saves <= 2 and restores <= 1

    def test_sp_best_case_dominates_when_windows_suffice(self, table2):
        """Most SP switches move nothing (the (0,0) row), which is the
        whole argument for PRWs."""
        hist = table2.observed_histograms["SP"]
        best = hist.get((0, 0), 0)
        assert best >= max(v for k, v in hist.items() if k != (0, 0)) * 0.3

    def test_ns_always_restores_resumed_threads(self, table2):
        """NS switches to a *resumed* thread always restore exactly the
        stack-top window."""
        hist = table2.observed_histograms["NS"]
        resumed = {k: v for k, v in hist.items() if k[1] == 1}
        fresh = {k: v for k, v in hist.items() if k[1] == 0}
        assert sum(resumed.values()) > 100
        assert sum(fresh.values()) <= 7 + 1  # at most one per thread


def test_cost_model_switch_cost_microbench(benchmark):
    """Microbenchmark: the cost-model lookup itself (used in every
    simulated switch) must stay trivial."""
    model = CostModel()

    def lookup():
        total = 0
        for saves in range(3):
            total += model.snp_switch_cost(saves, 1)
            total += model.sp_switch_cost(saves, 1, True)
            total += model.ns_switch_cost(saves + 1, 1)
        return total

    assert benchmark(lookup) > 0
