"""Ablation — the multi-threaded-architecture implication (§6.2, §7).

The paper argues the algorithm transfers directly to multi-threaded
architectures: the best-case switch "will be reduced to zero or a few
cycles, if the proposed algorithm is implemented in multi-threaded
architecture", leaving only genuine window-transfer memory traffic.
We rerun the high-concurrency fine-granularity sweep under a
hardware-assisted cost model and measure the residual switching cost.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.apps.spellcheck import SpellConfig, build_spellchecker
from repro.core.costs import CostModel
from repro.metrics.reporting import format_table
from repro.runtime.kernel import Kernel


def _run(scheme, n_windows, cost_model, scale):
    config = SpellConfig.named("high", "fine", scale=scale)
    kernel = Kernel(n_windows=n_windows, scheme=scheme,
                    cost_model=cost_model, verify_registers=False)
    build_spellchecker(kernel, config)
    return kernel.run().counters


@pytest.fixture(scope="module")
def hw_results():
    scale = min(bench_scale(), 0.08)
    out = {}
    for scheme in ("NS", "SP"):
        for label, model in (("software", CostModel()),
                             ("hardware", CostModel.hardware_assisted())):
            out[(scheme, label)] = _run(scheme, 12, model, scale)
    return out


def test_regenerate_hw_assist_ablation(benchmark, hw_results,
                                       results_dir):
    def render():
        rows = []
        for (scheme, label), c in sorted(hw_results.items()):
            rows.append([scheme, label, c.avg_switch_cycles,
                         c.switch_cycles, c.trap_cycles,
                         c.total_cycles])
        text = format_table(
            ["scheme", "cost model", "avg switch", "switch cycles",
             "trap cycles", "total cycles"],
            rows, title="Software trap handlers vs hardware-assisted "
                        "(spell checker, high/fine, 12 windows)")
        (results_dir / "ablation_hardware_assist.txt").write_text(text)
        return rows

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestHardwareAssist:
    def test_sp_best_case_becomes_a_few_cycles(self, hw_results):
        hw = hw_results[("SP", "hardware")]
        assert hw.avg_switch_cycles < 15

    def test_hardware_helps_sp_more_than_ns(self, hw_results):
        """NS still moves every window through memory; SP's switches
        were mostly fixed overhead, which hardware eliminates."""
        sp_gain = (hw_results[("SP", "software")].switch_cycles
                   / max(1, hw_results[("SP", "hardware")].switch_cycles))
        ns_gain = (hw_results[("NS", "software")].switch_cycles
                   / max(1, hw_results[("NS", "hardware")].switch_cycles))
        assert sp_gain > ns_gain

    def test_event_counts_unchanged_by_cost_model(self, hw_results):
        for scheme in ("NS", "SP"):
            sw = hw_results[(scheme, "software")]
            hw = hw_results[(scheme, "hardware")]
            assert sw.saves == hw.saves
            assert sw.context_switches == hw.context_switches
            assert sw.window_traps == hw.window_traps
