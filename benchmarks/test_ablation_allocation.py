"""Ablation — window-allocation policies (§4.2).

The paper evaluates only the simple policy and *predicts* that (a) the
simple policy can ping-pong ("unnecessary spillage and restoration"
when two threads alternate and one is windowless), and (b) searching
for free windows or evicting an LRU stack-bottom "may be worth the
extra cost".  These benches measure that prediction.
"""

import pytest

from repro import Kernel
from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.apps.synthetic import spawn_ping_pong
from repro.core.allocation import (
    FreeSearchAllocation,
    LRUBottomAllocation,
    SimpleAllocation,
)
from repro.metrics.reporting import format_table

POLICIES = {
    "simple": SimpleAllocation,
    "free-search": FreeSearchAllocation,
    "lru-bottom": LRUBottomAllocation,
}


def _ping_pong_transfers(scheme, policy_cls, n_windows=6, rounds=200):
    kernel = Kernel(n_windows=n_windows, scheme=scheme,
                    allocation=policy_cls())
    spawn_ping_pong(kernel, rounds)
    result = kernel.run(max_steps=2_000_000)
    c = result.counters
    return c.windows_spilled + c.windows_restored, c.total_cycles


@pytest.fixture(scope="module")
def ping_pong_results():
    out = {}
    for scheme in ("SNP", "SP"):
        for name, cls in POLICIES.items():
            out[(scheme, name)] = _ping_pong_transfers(scheme, cls)
    return out


def test_regenerate_allocation_ablation(benchmark, ping_pong_results,
                                        results_dir):
    def render():
        rows = [[scheme, name, moved, cycles]
                for (scheme, name), (moved, cycles)
                in sorted(ping_pong_results.items())]
        text = format_table(
            ["scheme", "allocation", "windows moved", "cycles"], rows,
            title="Ping-pong pathology (6 windows, 200 rounds), by "
                  "allocation policy")
        (results_dir / "ablation_allocation.txt").write_text(text)
        return rows

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestAllocationAblation:
    @pytest.mark.parametrize("scheme", ["SNP", "SP"])
    def test_free_search_never_moves_more(self, ping_pong_results,
                                          scheme):
        simple = ping_pong_results[(scheme, "simple")][0]
        free = ping_pong_results[(scheme, "free-search")][0]
        assert free <= simple

    @pytest.mark.parametrize("scheme", ["SNP", "SP"])
    def test_lru_never_moves_more(self, ping_pong_results, scheme):
        simple = ping_pong_results[(scheme, "simple")][0]
        lru = ping_pong_results[(scheme, "lru-bottom")][0]
        assert lru <= simple

    def test_policies_agree_on_the_spell_checker(self):
        """With the real application and plentiful windows the policy
        barely matters — allocation only triggers for windowless
        threads; results must be identical regardless."""
        outputs = set()
        for cls in POLICIES.values():
            config = SpellConfig.named("high", "fine", scale=0.02)
            __, output = run_spellchecker(6, "SP", config,
                                          allocation=cls())
            outputs.add(output)
        assert len(outputs) == 1
