"""Ablation — Tamir & Sequin transfer depth (paper §2).

"Tamir and Sequin studied the effect of the number of windows to be
saved or restored for each overflow or underflow trap, and showed that
transferring one window is the best in most cases."  We re-verify the
claim on our workload: NS with transfer depths 1, 2 and 4.
"""

import pytest

from repro.apps.spellcheck import SpellConfig
from repro.metrics.reporting import format_table

DEPTHS = (1, 2, 4)


def _run_with_depth(depth, n_windows=7, scale=0.05):
    from repro.core.working_set import FIFOPolicy
    from repro.runtime.kernel import Kernel
    from repro.apps.spellcheck import build_spellchecker

    config = SpellConfig.named("high", "medium", scale=scale)
    kernel = Kernel(n_windows=n_windows, scheme="NS",
                    queue_policy=FIFOPolicy(), verify_registers=False,
                    scheme_kwargs={"transfer_depth": depth})
    build_spellchecker(kernel, config)
    return kernel.run()


@pytest.fixture(scope="module")
def depth_results():
    return {depth: _run_with_depth(depth) for depth in DEPTHS}


def test_regenerate_transfer_depth_ablation(benchmark, depth_results,
                                            results_dir):
    def render():
        rows = []
        for depth, result in sorted(depth_results.items()):
            c = result.counters
            rows.append([depth, c.overflow_traps, c.underflow_traps,
                         c.windows_spilled + c.windows_restored,
                         c.trap_cycles, c.total_cycles])
        text = format_table(
            ["transfer depth", "overflows", "underflows",
             "windows moved", "trap cycles", "total cycles"],
            rows, title="NS scheme, spell checker (high/medium, "
                        "7 windows): windows per trap")
        (results_dir / "ablation_transfer_depth.txt").write_text(text)
        return rows

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestTransferDepth:
    def test_results_identical(self, depth_results):
        outputs = {r.result_of("T5.output")
                   for r in depth_results.values()}
        assert len(outputs) == 1

    def test_deeper_transfers_mean_fewer_traps(self, depth_results):
        traps = {d: r.counters.window_traps
                 for d, r in depth_results.items()}
        assert traps[4] <= traps[2] <= traps[1]

    def test_deeper_transfers_move_more_windows(self, depth_results):
        moved = {d: (r.counters.windows_spilled
                     + r.counters.windows_restored)
                 for d, r in depth_results.items()}
        assert moved[4] >= moved[2] >= moved[1]

    def test_depth_one_is_best_or_near_best(self, depth_results):
        """The Tamir & Sequin conclusion the paper adopts: on total
        cycles, depth 1 wins (deeper prefetch moves windows that are
        never used before the next flush)."""
        cycles = {d: r.counters.total_cycles
                  for d, r in depth_results.items()}
        assert cycles[1] <= min(cycles[2], cycles[4]) * 1.02
