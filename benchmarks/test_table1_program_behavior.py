"""Table 1 — program behaviour of the spell checker (§5.2).

Regenerates the per-thread context-switch counts for all six
(concurrency, granularity) configurations and the dynamic save counts,
and checks the structural properties the paper's analysis rests on.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.table1 import CONFIGS, render_table1, run_table1


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale=bench_scale())


def test_regenerate_table1(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table1(scale=bench_scale()), rounds=1, iterations=1)
    (results_dir / "table1.txt").write_text(render_table1(result))


class TestTable1Shape:
    def test_switches_decrease_with_coarser_granularity(self, table1):
        for concurrency in ("high", "low"):
            fine = table1.total_switches((concurrency, "fine"))
            medium = table1.total_switches((concurrency, "medium"))
            coarse = table1.total_switches((concurrency, "coarse"))
            assert fine > medium > coarse

    def test_low_concurrency_switches_less(self, table1):
        for granularity in ("fine", "medium", "coarse"):
            high = table1.total_switches(("high", granularity))
            low = table1.total_switches(("low", granularity))
            assert low < high

    def test_dictionary_threads_pinned_to_buffer_size(self, table1):
        """T6/T7 block about once per M bytes: the column signature
        that pins the paper's buffer sizes (50001/12501/3126/49)."""
        dict_bytes = 50000 * bench_scale()
        for (concurrency, granularity), switches in table1.switches.items():
            m = {"fine": 1, "medium": 4, "coarse": 16}[granularity]
            if concurrency == "low":
                m = 1024
            expected = dict_bytes / m
            for name in ("T6.dict1", "T7.dict2"):
                got = switches[name]
                assert expected * 0.8 - 3 <= got <= expected * 1.3 + 3, (
                    (concurrency, granularity, name, got, expected))

    def test_output_thread_switches_least_at_high_concurrency(self,
                                                              table1):
        """At high concurrency T5 switches least (paper: 1005 vs
        ≥2653).  At low concurrency the dictionary threads drop below
        it (paper: 49 vs 135-197), so only the high configs apply."""
        for config in CONFIGS:
            if config[0] != "high":
                continue
            switches = table1.switches[config]
            assert switches["T5.output"] == min(switches.values())

    def test_dictionary_threads_switch_least_at_low_concurrency(self,
                                                                table1):
        """The low-concurrency signature (paper: T6/T7 at 49)."""
        for config in CONFIGS:
            if config[0] != "low":
                continue
            switches = table1.switches[config]
            least = min(switches.values())
            assert switches["T6.dict1"] == least
            assert switches["T7.dict2"] == least

    def test_save_counts_nonzero_for_every_thread(self, table1):
        for name, count in table1.saves.items():
            assert count > 0, name

    def test_spell_threads_dominate_saves(self, table1):
        """As in the paper, the filter threads (T1-T3) execute far
        more calls than the I/O threads."""
        filters = sum(table1.saves[n] for n in
                      ("T1.delatex", "T2.spell1", "T3.spell2"))
        io = sum(table1.saves[n] for n in
                 ("T4.input", "T5.output", "T6.dict1", "T7.dict2"))
        assert filters > io
