"""Shared fixtures for the benchmark suite.

Environment knobs:

* ``REPRO_BENCH_SCALE``   corpus scale (default 0.08; 1.0 = the paper's
  full 40 500-byte draft — expect several minutes per figure);
* ``REPRO_BENCH_WINDOWS`` comma-separated window counts.

Figures 11, 12 and 13 come from the *same* runs in the paper, so the
high-concurrency sweep is computed once per session and shared.
Rendered tables/charts are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import sweep_windows

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_SCALE = 0.08
DEFAULT_WINDOWS = (4, 5, 6, 7, 8, 10, 12, 16, 24, 32)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_windows():
    raw = os.environ.get("REPRO_BENCH_WINDOWS")
    if not raw:
        return list(DEFAULT_WINDOWS)
    return [int(x) for x in raw.split(",") if x.strip()]


@pytest.fixture(autouse=True)
def _benchmark_anchor(benchmark):
    """pytest-benchmark's ``--benchmark-only`` skips any test that does
    not use the ``benchmark`` fixture.  The shape-assertion tests in
    this directory *are* part of the benchmark suite (they check the
    regenerated figures), so anchor the fixture into every test here.
    """
    yield


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def windows():
    return bench_windows()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _sweep_all_granularities(concurrency, windows, scale,
                             working_set=False):
    points = {}
    for granularity in ("coarse", "medium", "fine"):
        points[granularity] = sweep_windows(
            concurrency, granularity, windows=windows, scale=scale,
            working_set=working_set)
    return points


@pytest.fixture(scope="session")
def high_sweep(windows, scale):
    """scheme x granularity x window sweep at high concurrency
    (feeds Figures 11, 12 and 13)."""
    return _sweep_all_granularities("high", windows, scale)


@pytest.fixture(scope="session")
def low_sweep(windows, scale):
    """The low-concurrency sweep (Figure 14)."""
    return _sweep_all_granularities("low", windows, scale)


@pytest.fixture(scope="session")
def ws_sweep(windows, scale):
    """High concurrency under working-set scheduling (Figure 15)."""
    return _sweep_all_granularities("high", windows, scale,
                                    working_set=True)


def series_from(sweep, metric):
    """{granularity: {scheme: [(windows, value)]}} from a sweep."""
    out = {}
    for granularity, by_scheme in sweep.items():
        out[granularity] = {
            scheme: [(p.n_windows, metric(p)) for p in points]
            for scheme, points in by_scheme.items()}
    return out


def value_at(points, n_windows):
    for x, y in points:
        if x == n_windows:
            return y
    raise KeyError(n_windows)


def write_series_report(path, title, series_by_gran, fmt="%.0f"):
    """Dump every series as aligned text plus ASCII charts.

    Written atomically (temp file + rename) so parallel pytest workers
    or an interrupted run can never leave a truncated report in
    ``benchmarks/results/``.
    """
    from repro.experiments.engine import atomic_write_text
    from repro.metrics.reporting import ascii_chart

    lines = [title, "=" * len(title), ""]
    for granularity, by_scheme in series_by_gran.items():
        lines.append("-- %s granularity" % granularity)
        for scheme, points in sorted(by_scheme.items()):
            lines.append("  %-4s %s" % (scheme, "  ".join(
                "%d:%s" % (x, fmt % y) for x, y in points)))
        chart = ascii_chart(
            {s: pts for s, pts in by_scheme.items()},
            width=60, height=14,
            title="%s (%s)" % (title, granularity),
            xlabel="number of windows")
        lines.append(chart)
        lines.append("")
    atomic_write_text(path, "\n".join(lines))
