"""Smoke coverage for the tracked perf suite.

No throughput thresholds here — wall-clock assertions are flaky under
CI load.  The regression gate is the separate ``bench`` CI job running
``python -m benchmarks.perf --check`` against ``BENCH_5.json``.
"""

import json

from benchmarks.perf.bench import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    check_against_baseline,
    run_suite,
)

TINY = dict(micro_scale=0.01, sweep_scale=0.01, repeats=1, quiet=True)


def test_run_suite_document_shape(tmp_path):
    doc = run_suite(**TINY)
    assert doc["schema"] == SCHEMA_NAME
    assert doc["version"] == SCHEMA_VERSION
    assert len(doc["micro"]) == 6  # 3 schemes x {8, 32} windows
    for point in doc["micro"]:
        assert point["steps"] > 0
        assert point["steps_per_sec"] > 0
    assert doc["spellcheck_steps_per_sec"] > 0
    assert doc["sweep"]["points"] == 18
    # round-trips through JSON (what --update commits)
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    assert json.loads(path.read_text()) == doc


def test_check_flags_regressions_only():
    doc = run_suite(**TINY)
    assert check_against_baseline(doc, doc, tolerance=0.2) == []

    slower = json.loads(json.dumps(doc))
    slower["spellcheck_steps_per_sec"] = (
        doc["spellcheck_steps_per_sec"] * 0.5)
    failures = check_against_baseline(slower, doc, tolerance=0.2)
    assert any("spellcheck steps/sec" in f for f in failures)

    # a faster tree never fails the check
    faster = json.loads(json.dumps(doc))
    faster["spellcheck_steps_per_sec"] = (
        doc["spellcheck_steps_per_sec"] * 2.0)
    assert check_against_baseline(faster, doc, tolerance=0.2) == []
