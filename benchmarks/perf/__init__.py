"""Tracked performance suite: simulator steps/sec + sweep wall-clock.

Run ``python -m benchmarks.perf`` (repo root on the path, ``src`` on
``PYTHONPATH``) to measure, ``--update`` to rewrite the committed
baseline ``BENCH_5.json``, ``--check`` to fail when the current tree
regresses more than the tolerance against that baseline.
"""

from benchmarks.perf.bench import (  # noqa: F401
    BASELINE_PATH,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    check_against_baseline,
    load_baseline,
    run_suite,
)
