"""Measure simulator throughput and compare against the tracked baseline.

Two measurements, both against the spell-checker workload (the paper's
evaluation program):

* **micro** — steps/sec of one end-to-end run per (scheme, window
  count) point: NS/SNP/SP at 8 and 32 windows.  ``steps`` is the
  kernel's own step counter, so the number is a direct measure of
  simulator (not workload) throughput and is comparable across PRs as
  long as the counters stay bit-identical — which the differential and
  golden suites enforce.
* **sweep** — wall-clock of the full Table-2-style grid (3 schemes x
  {high, low} concurrency x {coarse, medium, fine} granularity) through
  the serial harness, i.e. what one engine worker pays per grid.

Both measurements run on one *execution backend* — the pure-Python
loop or the optional compiled fast path (:mod:`repro._fast`) —
selected with ``--backend`` / ``$REPRO_BACKEND`` / auto-detection and
recorded in the document's ``settings`` (together with the Python
version and compiler, so numbers are only ever read like-with-like).

Baselines are committed at the repo root as ``BENCH_<n>.json`` and
form the perf history: each PR that re-baselines appends the next id
instead of overwriting.  ``--check`` compares against the latest
baseline *measured on the same backend* (pre-backend documents count
as pure) and fails (exit 1) when the current tree's headline steps/sec
or sweep throughput regresses more than ``--tolerance`` (default 20%,
override with ``REPRO_BENCH_TOLERANCE``); ``--update`` writes the next
``BENCH_<n+1>.json``, preserving the recorded pre-optimization
reference numbers under ``baseline_pre_pr``.  ``--ab-backends`` runs
the micro suite on both backends back-to-back and reports the
speedup; its result rides along in the updated baseline under
``backends_ab``.

Two additional modes:

* ``--history`` — trend table over every committed ``BENCH_*.json``
  (headline, per-scheme micro at 8 windows, sweep throughput, deltas
  between consecutive baselines, regression flags);
* ``--ab-metrics`` — interleaved A/B of the telemetry subsystem:
  the same SP/8-window spell-check run with metrics detached vs
  attached, failing if the enabled overhead exceeds
  ``--ab-tolerance`` (default 3%, ``REPRO_BENCH_AB_TOLERANCE``).
  This is the CI gate on the zero-cost-guard contract.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.experiments.harness import run_point
from repro.ioutil import atomic_write_text
from repro.runtime import backend as backend_mod

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

#: repo root holding the committed BENCH_<n>.json history
REPO_ROOT = Path(__file__).resolve().parents[2]


def bench_history_paths(root: Optional[Path] = None):
    """Committed baselines as ``[(n, path)]`` in ascending-id order."""
    root = Path(root) if root is not None else REPO_ROOT
    entries = []
    for path in root.glob("BENCH_*.json"):
        suffix = path.stem[len("BENCH_"):]
        if suffix.isdigit():
            entries.append((int(suffix), path))
    return sorted(entries)


def latest_bench_path(root: Optional[Path] = None) -> Optional[Path]:
    history = bench_history_paths(root)
    return history[-1][1] if history else None


def next_bench_id(root: Optional[Path] = None) -> str:
    history = bench_history_paths(root)
    return "BENCH_%d" % ((history[-1][0] + 1) if history else 1)


#: the committed baseline this suite checks against (repo root)
BASELINE_PATH = latest_bench_path() \
    or REPO_ROOT / (next_bench_id() + ".json")

SCHEMES = ("NS", "SNP", "SP")
MICRO_WINDOWS = (8, 32)
MICRO_CONCURRENCY = "high"
MICRO_GRANULARITY = "medium"

DEFAULT_MICRO_SCALE = 0.25
DEFAULT_SWEEP_SCALE = 0.05
DEFAULT_REPEATS = 3
DEFAULT_TOLERANCE = 0.20
#: single micro points have far higher run-to-run variance than the
#: aggregate headline (one point is ~1s of wall time on a shared
#: host), so --check gives them this much extra headroom on top of
#: --tolerance before calling a regression
MICRO_POINT_MARGIN = 1.75
DEFAULT_AB_TOLERANCE = 0.03
AB_SCHEME = "SP"
AB_WINDOWS = 8

SWEEP_GRID = [(scheme, concurrency, granularity)
              for scheme in SCHEMES
              for concurrency in ("high", "low")
              for granularity in ("coarse", "medium", "fine")]
SWEEP_WINDOWS = 8


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def bench_micro_point(scheme: str, n_windows: int, scale: float,
                      repeats: int,
                      backend: Optional[str] = None) -> Dict[str, object]:
    """Best-of-``repeats`` steps/sec for one (scheme, windows) point."""
    config = SpellConfig.named(MICRO_CONCURRENCY, MICRO_GRANULARITY,
                               scale=scale)
    best = None
    steps = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result, _out = run_spellchecker(n_windows, scheme, config,
                                        backend=backend)
        elapsed = time.perf_counter() - start
        steps = result.steps
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None and best > 0
    return {
        "scheme": scheme,
        "n_windows": n_windows,
        "steps": steps,
        "wall_s": round(best, 6),
        "steps_per_sec": round(steps / best, 1),
    }


def bench_sweep(scale: float) -> Dict[str, object]:
    """Wall-clock of the full scheme x concurrency x granularity grid."""
    start = time.perf_counter()
    for scheme, concurrency, granularity in SWEEP_GRID:
        run_point(scheme, SWEEP_WINDOWS, concurrency, granularity,
                  scale=scale)
    elapsed = time.perf_counter() - start
    return {
        "points": len(SWEEP_GRID),
        "n_windows": SWEEP_WINDOWS,
        "wall_s": round(elapsed, 6),
        "points_per_sec": round(len(SWEEP_GRID) / elapsed, 3),
    }


def run_suite(micro_scale: Optional[float] = None,
              sweep_scale: Optional[float] = None,
              repeats: Optional[int] = None,
              backend: Optional[str] = None,
              quiet: bool = False) -> Dict[str, object]:
    """Run the full suite on one backend; returns the bench document."""
    micro_scale = (micro_scale if micro_scale is not None
                   else _env_float("REPRO_BENCH_SCALE", DEFAULT_MICRO_SCALE))
    sweep_scale = (sweep_scale if sweep_scale is not None
                   else _env_float("REPRO_BENCH_SWEEP_SCALE",
                                   DEFAULT_SWEEP_SCALE))
    repeats = (repeats if repeats is not None
               else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS))
    backend = backend_mod.select_backend(backend)

    micro: List[Dict[str, object]] = []
    for scheme in SCHEMES:
        for n_windows in MICRO_WINDOWS:
            point = bench_micro_point(scheme, n_windows, micro_scale,
                                      repeats, backend=backend)
            micro.append(point)
            if not quiet:
                print("micro %-3s w=%-2d  %8d steps  %7.3fs  %10.0f steps/s"
                      % (scheme, n_windows, point["steps"],
                         point["wall_s"], point["steps_per_sec"]))

    total_steps = sum(p["steps"] for p in micro)
    total_wall = sum(p["wall_s"] for p in micro)
    headline = round(total_steps / total_wall, 1)

    # the sweep goes through the experiment harness, which builds its
    # kernels internally — pin its backend through the environment
    saved = os.environ.get(backend_mod.ENV_BACKEND)
    os.environ[backend_mod.ENV_BACKEND] = backend
    try:
        sweep = bench_sweep(sweep_scale)
    finally:
        if saved is None:
            os.environ.pop(backend_mod.ENV_BACKEND, None)
        else:
            os.environ[backend_mod.ENV_BACKEND] = saved
    if not quiet:
        print("sweep %d points in %.3fs (%.2f points/s)"
              % (sweep["points"], sweep["wall_s"],
                 sweep["points_per_sec"]))
        print("headline spellcheck steps/sec (%s backend): %.0f"
              % (backend, headline))

    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "bench_id": next_bench_id(),
        "settings": {
            "micro_scale": micro_scale,
            "sweep_scale": sweep_scale,
            "repeats": repeats,
            "concurrency": MICRO_CONCURRENCY,
            "granularity": MICRO_GRANULARITY,
            "backend": backend,
            "python": platform.python_version(),
            "compiler": platform.python_compiler(),
        },
        "micro": micro,
        "spellcheck_steps_per_sec": headline,
        "sweep": sweep,
    }


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    path = Path(path) if path is not None else BASELINE_PATH
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA_NAME:
        raise ValueError("not a %s document: %r"
                         % (SCHEMA_NAME, doc.get("schema")))
    return doc


def doc_backend(doc: Dict[str, object]) -> str:
    """The backend a bench document was measured on.

    Documents from before the compiled backend existed carry no record
    — they were necessarily measured on the pure loop.
    """
    return str(doc.get("settings", {}).get("backend") or "pure")


def latest_matching_baseline(backend: str, root: Optional[Path] = None):
    """Newest committed baseline measured on ``backend`` (or None).

    The like-with-like rule for ``--check``: a compiled run is never
    gated against pure numbers (a broken build would look like a 2x
    win) and a pure run is never gated against compiled numbers (every
    pure run would look like a regression).
    """
    for __, path in reversed(bench_history_paths(root)):
        doc = load_baseline(path)
        if doc_backend(doc) == backend:
            return path, doc
    return None, None


def check_against_baseline(current: Dict[str, object],
                           baseline: Dict[str, object],
                           tolerance: float) -> List[str]:
    """Regressions beyond ``tolerance``, as readable failure lines.

    The headline and sweep aggregates gate at ``tolerance``; each
    micro point gates at ``tolerance * MICRO_POINT_MARGIN``, because a
    single ~1s point carries much more scheduling noise than the
    aggregate and a tight per-point gate flakes on shared hosts.
    """
    failures = []

    def compare(label: str, now: float, then: float,
                margin: float = 1.0) -> None:
        if then <= 0:
            return
        allowed = tolerance * margin
        floor = then * (1.0 - allowed)
        if now < floor:
            failures.append(
                "%s regressed: %.0f -> %.0f (-%.1f%%, tolerance %.0f%%)"
                % (label, then, now, 100.0 * (1.0 - now / then),
                   100.0 * allowed))

    compare("spellcheck steps/sec",
            float(current["spellcheck_steps_per_sec"]),
            float(baseline["spellcheck_steps_per_sec"]))
    base_micro = {(p["scheme"], p["n_windows"]): p
                  for p in baseline.get("micro", [])}
    for point in current["micro"]:
        key = (point["scheme"], point["n_windows"])
        if key in base_micro:
            compare("micro %s w=%d steps/sec" % key,
                    float(point["steps_per_sec"]),
                    float(base_micro[key]["steps_per_sec"]),
                    margin=MICRO_POINT_MARGIN)
    if "sweep" in baseline:
        compare("sweep points/sec",
                float(current["sweep"]["points_per_sec"]),
                float(baseline["sweep"]["points_per_sec"]))
    return failures


def bench_ab_metrics(scale: Optional[float] = None,
                     repeats: Optional[int] = None,
                     quiet: bool = False) -> Dict[str, object]:
    """Telemetry-overhead gate: deterministic counts x measured unit costs.

    Naive A/B wall-clock comparison cannot resolve a ~1% effect on a
    shared host — co-tenant load makes individual 0.5s runs scatter by
    5-15%, and no pairing/median/min statistic survives that.  Instead
    the gate builds a **cost model**:

    1. one fully-instrumented run yields the exact, deterministic event
       counts (quanta, switches, traps, profiler checks, samples) and
       the one-shot ``finalize`` fold time;
    2. tight-loop microbenchmarks measure each telemetry primitive's
       unit cost (best-of-5 over 200k iterations, so per-iteration
       noise averages out within a single timed region);
    3. ``overhead = sum(count * unit_cost) / baseline_run_time``.

    Unit costs and the baseline are measured on the same host under the
    same load, so ambient slowdown inflates numerator and denominator
    together and cancels to first order — the model is reproducible on
    a noisy box to a few tenths of a percent, where direct A/B flapped
    by whole percents.  The loop-emulation unit costs *include* the
    bench loop overhead, biasing the model conservatively high.
    """
    from repro.metrics.counters import Counters
    from repro.metrics.profiler import CycleProfiler
    from repro.metrics.telemetry import RunTelemetry

    scale = (scale if scale is not None
             else _env_float("REPRO_BENCH_SCALE", DEFAULT_MICRO_SCALE))
    repeats = (repeats if repeats is not None
               else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS))
    config = SpellConfig.named(MICRO_CONCURRENCY, MICRO_GRANULARITY,
                               scale=scale)

    # 1. counted run: exact event counts + fold cost ---------------------
    telemetry = RunTelemetry()
    start = time.process_time()
    result, _out = run_spellchecker(AB_WINDOWS, AB_SCHEME, config,
                                    instrument=telemetry.attach)
    enabled_cpu = time.process_time() - start
    start = time.process_time()
    telemetry.finalize(result)
    finalize_s = time.process_time() - start
    prof = telemetry.profiler
    snap = result.counters.snapshot()
    counts = {
        # each quantum executes the profiler guard once (decrement +
        # compare in the dispatch loop's finally)
        "quanta": prof.checks * prof.check_every
                  + (prof.check_every - prof._cd),
        "switch_appends": snap["context_switches"],
        "trap_appends": snap["overflow_traps"] + snap["underflow_traps"],
        "checks": prof.checks,
        "samples": prof.samples,
    }
    steps = result.steps

    # 2. baseline: the disabled run this overhead is relative to --------
    baseline = None
    for _ in range(max(1, repeats)):
        start = time.process_time()
        run_spellchecker(AB_WINDOWS, AB_SCHEME, config)
        elapsed = time.process_time() - start
        baseline = elapsed if baseline is None else min(baseline, elapsed)

    # 3. unit costs ------------------------------------------------------
    def unit_ns(body, iters=200_000, rounds=5):
        best = None
        for _ in range(rounds):
            t0 = time.process_time()
            body(iters)
            dt = time.process_time() - t0
            best = dt if best is None else min(best, dt)
        return best / iters * 1e9

    uprof = CycleProfiler()
    ucounters = Counters()
    ucounters.compute_cycles = 1  # keep total_cycles below the grid

    def guard_body(n):
        # the per-quantum finally: None-check, decrement, threshold test
        prof = uprof
        prof._cd = 1 << 40
        for _ in range(n):
            if prof is not None:
                prof._cd -= 1
                if prof._cd <= 0:
                    prof._check(None, None, ucounters)

    def append_body(n):
        buf = []
        append_cycles = 37
        for i in range(n):
            if buf is not None:
                buf.append(append_cycles)
            if len(buf) >= 4096:
                del buf[:]

    def check_body(n):
        # countdown expiry that reads the clock but crosses no boundary
        prof = uprof
        prof._next_cycle = 1 << 60
        check = prof._check
        for _ in range(n):
            check(None, None, ucounters)

    class _Thread:
        pass

    def _gen():
        yield

    sample_thread = _Thread()
    sample_thread.name = "ab"
    sample_thread.gen_stack = [_gen(), _gen(), _gen()]

    def sample_body(n):
        # forced grid crossing every call: stack build + dicts +
        # occupancy append (the real sample path)
        prof = uprof
        check = prof._check
        for _ in range(n):
            prof._next_cycle = 0
            check(sample_thread, None, ucounters)
        prof.occupancy.clear()
        prof.stack_cycles.clear()

    unit = {
        "guard_ns": unit_ns(guard_body),
        "append_ns": unit_ns(append_body),
        "check_ns": unit_ns(check_body, iters=50_000),
        "sample_ns": unit_ns(sample_body, iters=50_000),
    }

    modeled_s = (
        counts["quanta"] * unit["guard_ns"]
        + (counts["switch_appends"] + counts["trap_appends"])
        * unit["append_ns"]
        + counts["checks"] * unit["check_ns"]
        + counts["samples"] * unit["sample_ns"]) * 1e-9 + finalize_s
    overhead = modeled_s / baseline

    doc = {
        "scheme": AB_SCHEME,
        "n_windows": AB_WINDOWS,
        "scale": scale,
        "repeats": repeats,
        "steps": steps,
        "counts": counts,
        "unit_ns": {k: round(v, 1) for k, v in unit.items()},
        "finalize_s": round(finalize_s, 6),
        "modeled_overhead_s": round(modeled_s, 6),
        "baseline_cpu_s": round(baseline, 6),
        "enabled_cpu_s": round(enabled_cpu, 6),
        "disabled_steps_per_sec": round(steps / baseline, 1),
        "overhead": round(overhead, 4),
    }
    if not quiet:
        print("ab %s w=%d  baseline %8.0f steps/s   modeled telemetry "
              "cost %.1f ms on %.0f ms  ->  overhead %+.2f%%"
              % (AB_SCHEME, AB_WINDOWS, doc["disabled_steps_per_sec"],
                 1e3 * modeled_s, 1e3 * baseline, 100.0 * overhead))
        print("   counts %s" % json.dumps(counts, sort_keys=True))
        print("   unit costs (ns) %s" % json.dumps(doc["unit_ns"],
                                                   sort_keys=True))
    return doc


def bench_ab_backends(micro_scale: Optional[float] = None,
                      repeats: Optional[int] = None,
                      quiet: bool = False) -> Dict[str, object]:
    """Pure-vs-compiled A/B of the micro suite (same workloads, same
    scale, interleaved by point so ambient load hits both sides)."""
    micro_scale = (micro_scale if micro_scale is not None
                   else _env_float("REPRO_BENCH_SCALE", DEFAULT_MICRO_SCALE))
    repeats = (repeats if repeats is not None
               else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS))
    if not backend_mod.compiled_available():
        raise SystemExit("--ab-backends needs the compiled extension; "
                         "build it with: python setup.py build_ext "
                         "--inplace")
    sides: Dict[str, List[Dict[str, object]]] = {"pure": [],
                                                 "compiled": []}
    for scheme in SCHEMES:
        for n_windows in MICRO_WINDOWS:
            for backend in ("pure", "compiled"):
                point = bench_micro_point(scheme, n_windows, micro_scale,
                                          repeats, backend=backend)
                sides[backend].append(point)
    doc: Dict[str, object] = {"micro_scale": micro_scale,
                              "repeats": repeats}
    for backend, points in sides.items():
        steps = sum(p["steps"] for p in points)
        wall = sum(p["wall_s"] for p in points)
        doc[backend] = {
            "micro": points,
            "spellcheck_steps_per_sec": round(steps / wall, 1),
        }
    speedup = (doc["compiled"]["spellcheck_steps_per_sec"]
               / doc["pure"]["spellcheck_steps_per_sec"])
    doc["speedup"] = round(speedup, 3)
    if not quiet:
        for backend in ("pure", "compiled"):
            for point in doc[backend]["micro"]:
                print("ab %-8s %-3s w=%-2d  %10.0f steps/s"
                      % (backend, point["scheme"], point["n_windows"],
                         point["steps_per_sec"]))
        print("ab backends: pure %.0f vs compiled %.0f steps/s "
              "(x%.2f)"
              % (doc["pure"]["spellcheck_steps_per_sec"],
                 doc["compiled"]["spellcheck_steps_per_sec"], speedup))
    return doc


def render_history(docs: List[Dict[str, object]],
                   tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Trend table over successive benchmark documents.

    Deltas compare each baseline to its predecessor *on the same
    backend* (numbers are only comparable like-with-like); a drop
    beyond ``tolerance`` on the headline is flagged REGRESSED.
    """
    from repro.metrics.reporting import format_table

    rows = []
    prev_by_backend: Dict[str, float] = {}
    for doc in docs:
        backend = doc_backend(doc)
        headline = float(doc["spellcheck_steps_per_sec"])
        micro8 = {p["scheme"]: p["steps_per_sec"]
                  for p in doc.get("micro", []) if p["n_windows"] == 8}
        sweep = float(doc.get("sweep", {}).get("points_per_sec", 0))
        prev = prev_by_backend.get(backend)
        if prev is None or prev <= 0:
            delta, flag = "", ""
        else:
            change = headline / prev - 1.0
            delta = "%+.1f%%" % (100.0 * change)
            flag = "REGRESSED" if change < -tolerance else ""
        rows.append([doc.get("bench_id", "?"), backend,
                     "%.0f" % headline, delta,
                     "%.0f" % micro8.get("NS", 0),
                     "%.0f" % micro8.get("SNP", 0),
                     "%.0f" % micro8.get("SP", 0),
                     "%.2f" % sweep, flag])
        prev_by_backend[backend] = headline
    return format_table(
        ["bench", "backend", "steps/s", "delta", "NS w=8", "SNP w=8",
         "SP w=8", "sweep pts/s", ""],
        rows, title="perf history (headline spellcheck steps/sec)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="simulator throughput suite (baselines: the repo's "
                    "BENCH_<n>.json history)")
    parser.add_argument("--update", action="store_true",
                        help="commit the measurement as the next "
                             "BENCH_<n+1>.json baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail if the tree regresses vs the baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: the latest repo "
                             "BENCH_<n>.json)")
    parser.add_argument("--out", default=None,
                        help="also write the measured document here")
    parser.add_argument("--tolerance", type=float,
                        default=_env_float("REPRO_BENCH_TOLERANCE",
                                           DEFAULT_TOLERANCE),
                        help="allowed fractional regression for --check")
    parser.add_argument("--history", action="store_true",
                        help="print the trend table over all committed "
                             "BENCH_*.json baselines and exit")
    parser.add_argument("--ab-metrics", action="store_true",
                        help="A/B the telemetry overhead (enabled vs "
                             "disabled) and fail beyond --ab-tolerance")
    parser.add_argument("--ab-tolerance", type=float,
                        default=_env_float("REPRO_BENCH_AB_TOLERANCE",
                                           DEFAULT_AB_TOLERANCE),
                        help="max fractional telemetry overhead for "
                             "--ab-metrics (default 0.03)")
    parser.add_argument("--backend", choices=("compiled", "pure"),
                        default=None,
                        help="execution backend to measure (default: "
                             "$REPRO_BACKEND or auto-detect); recorded "
                             "in the document, and --check gates only "
                             "against a baseline measured on the same "
                             "backend")
    parser.add_argument("--ab-backends", action="store_true",
                        help="run the micro suite on both backends "
                             "back-to-back and report the speedup "
                             "(needs the compiled extension built)")
    parser.add_argument("--micro-scale", type=float, default=None)
    parser.add_argument("--sweep-scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.history:
        history = bench_history_paths()
        if not history:
            print("no BENCH_*.json baselines at %s" % REPO_ROOT,
                  file=sys.stderr)
            return 2
        docs = [load_baseline(path) for __, path in history]
        print(render_history(docs, tolerance=args.tolerance))
        return 0

    if args.ab_metrics:
        ab = bench_ab_metrics(scale=args.micro_scale,
                              repeats=args.repeats)
        if args.out:
            atomic_write_text(Path(args.out),
                              json.dumps(ab, indent=2, sort_keys=True)
                              + "\n")
            print("wrote %s" % args.out)
        if ab["overhead"] > args.ab_tolerance:
            print("FAIL: telemetry overhead %.2f%% exceeds %.0f%% budget"
                  % (100.0 * ab["overhead"], 100.0 * args.ab_tolerance),
                  file=sys.stderr)
            return 1
        print("ab check OK: telemetry overhead %+.2f%% "
              "(budget %.0f%%)" % (100.0 * ab["overhead"],
                                   100.0 * args.ab_tolerance))
        return 0

    if args.ab_backends:
        ab = bench_ab_backends(micro_scale=args.micro_scale,
                               repeats=args.repeats)
        if args.out:
            atomic_write_text(Path(args.out),
                              json.dumps(ab, indent=2, sort_keys=True)
                              + "\n")
            print("wrote %s" % args.out)
        return 0

    current = run_suite(micro_scale=args.micro_scale,
                        sweep_scale=args.sweep_scale,
                        repeats=args.repeats,
                        backend=args.backend)
    backend = str(current["settings"]["backend"])
    if args.baseline:
        baseline_path = Path(args.baseline)
    elif args.check:
        # like-with-like: gate against the newest baseline measured on
        # the same backend, never across backends
        baseline_path, _doc = latest_matching_baseline(backend)
    else:
        baseline_path = BASELINE_PATH

    if args.out:
        atomic_write_text(Path(args.out),
                          json.dumps(current, indent=2, sort_keys=True)
                          + "\n")
        print("wrote %s" % args.out)

    if args.update:
        if args.baseline:
            target = baseline_path
        else:
            # append the next id so the committed history accumulates
            target = REPO_ROOT / (current["bench_id"] + ".json")
        previous = latest_bench_path()
        if previous is not None and previous != target \
                and previous.exists():
            old = load_baseline(previous)
            if "baseline_pre_pr" in old:
                current["baseline_pre_pr"] = old["baseline_pre_pr"]
        elif target.exists():
            old = load_baseline(target)
            current["bench_id"] = old.get("bench_id",
                                          current["bench_id"])
            if "baseline_pre_pr" in old:
                current["baseline_pre_pr"] = old["baseline_pre_pr"]
        atomic_write_text(target,
                          json.dumps(current, indent=2, sort_keys=True)
                          + "\n")
        print("baseline updated: %s" % target)
        return 0

    if args.check:
        if baseline_path is None or not baseline_path.exists():
            print("no committed %s-backend baseline; run with --update "
                  "first" % backend, file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)
        base_backend = doc_backend(baseline)
        if base_backend != backend:
            print("baseline %s was measured on the %s backend, current "
                  "run on %s; refusing a cross-backend gate"
                  % (baseline_path.name, base_backend, backend),
                  file=sys.stderr)
            return 2
        failures = check_against_baseline(current, baseline,
                                          args.tolerance)
        if failures:
            for line in failures:
                print("FAIL: %s" % line, file=sys.stderr)
            return 1
        print("bench check OK: headline %.0f steps/s vs baseline %.0f "
              "(%s backend, tolerance %.0f%%)"
              % (current["spellcheck_steps_per_sec"],
                 baseline["spellcheck_steps_per_sec"],
                 backend, 100.0 * args.tolerance))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
