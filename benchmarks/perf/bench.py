"""Measure simulator throughput and compare against the tracked baseline.

Two measurements, both against the spell-checker workload (the paper's
evaluation program):

* **micro** — steps/sec of one end-to-end run per (scheme, window
  count) point: NS/SNP/SP at 8 and 32 windows.  ``steps`` is the
  kernel's own step counter, so the number is a direct measure of
  simulator (not workload) throughput and is comparable across PRs as
  long as the counters stay bit-identical — which the differential and
  golden suites enforce.
* **sweep** — wall-clock of the full Table-2-style grid (3 schemes x
  {high, low} concurrency x {coarse, medium, fine} granularity) through
  the serial harness, i.e. what one engine worker pays per grid.

The committed baseline lives at the repo root as ``BENCH_5.json``.
``--check`` fails (exit 1) when the current tree's headline steps/sec
or sweep throughput regresses more than ``--tolerance`` (default 20%,
override with ``REPRO_BENCH_TOLERANCE``) against it; ``--update``
rewrites the baseline, preserving the recorded pre-optimization
reference numbers under ``baseline_pre_pr``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.experiments.harness import run_point
from repro.ioutil import atomic_write_text

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

#: the committed baseline this suite checks against (repo root)
BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_5.json"

SCHEMES = ("NS", "SNP", "SP")
MICRO_WINDOWS = (8, 32)
MICRO_CONCURRENCY = "high"
MICRO_GRANULARITY = "medium"

DEFAULT_MICRO_SCALE = 0.25
DEFAULT_SWEEP_SCALE = 0.05
DEFAULT_REPEATS = 3
DEFAULT_TOLERANCE = 0.20

SWEEP_GRID = [(scheme, concurrency, granularity)
              for scheme in SCHEMES
              for concurrency in ("high", "low")
              for granularity in ("coarse", "medium", "fine")]
SWEEP_WINDOWS = 8


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def bench_micro_point(scheme: str, n_windows: int, scale: float,
                      repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` steps/sec for one (scheme, windows) point."""
    config = SpellConfig.named(MICRO_CONCURRENCY, MICRO_GRANULARITY,
                               scale=scale)
    best = None
    steps = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result, _out = run_spellchecker(n_windows, scheme, config)
        elapsed = time.perf_counter() - start
        steps = result.steps
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None and best > 0
    return {
        "scheme": scheme,
        "n_windows": n_windows,
        "steps": steps,
        "wall_s": round(best, 6),
        "steps_per_sec": round(steps / best, 1),
    }


def bench_sweep(scale: float) -> Dict[str, object]:
    """Wall-clock of the full scheme x concurrency x granularity grid."""
    start = time.perf_counter()
    for scheme, concurrency, granularity in SWEEP_GRID:
        run_point(scheme, SWEEP_WINDOWS, concurrency, granularity,
                  scale=scale)
    elapsed = time.perf_counter() - start
    return {
        "points": len(SWEEP_GRID),
        "n_windows": SWEEP_WINDOWS,
        "wall_s": round(elapsed, 6),
        "points_per_sec": round(len(SWEEP_GRID) / elapsed, 3),
    }


def run_suite(micro_scale: Optional[float] = None,
              sweep_scale: Optional[float] = None,
              repeats: Optional[int] = None,
              quiet: bool = False) -> Dict[str, object]:
    """Run the full suite and return the benchmark document."""
    micro_scale = (micro_scale if micro_scale is not None
                   else _env_float("REPRO_BENCH_SCALE", DEFAULT_MICRO_SCALE))
    sweep_scale = (sweep_scale if sweep_scale is not None
                   else _env_float("REPRO_BENCH_SWEEP_SCALE",
                                   DEFAULT_SWEEP_SCALE))
    repeats = (repeats if repeats is not None
               else _env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS))

    micro: List[Dict[str, object]] = []
    for scheme in SCHEMES:
        for n_windows in MICRO_WINDOWS:
            point = bench_micro_point(scheme, n_windows, micro_scale,
                                      repeats)
            micro.append(point)
            if not quiet:
                print("micro %-3s w=%-2d  %8d steps  %7.3fs  %10.0f steps/s"
                      % (scheme, n_windows, point["steps"],
                         point["wall_s"], point["steps_per_sec"]))

    total_steps = sum(p["steps"] for p in micro)
    total_wall = sum(p["wall_s"] for p in micro)
    headline = round(total_steps / total_wall, 1)

    sweep = bench_sweep(sweep_scale)
    if not quiet:
        print("sweep %d points in %.3fs (%.2f points/s)"
              % (sweep["points"], sweep["wall_s"],
                 sweep["points_per_sec"]))
        print("headline spellcheck steps/sec: %.0f" % headline)

    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "bench_id": "BENCH_5",
        "settings": {
            "micro_scale": micro_scale,
            "sweep_scale": sweep_scale,
            "repeats": repeats,
            "concurrency": MICRO_CONCURRENCY,
            "granularity": MICRO_GRANULARITY,
            "python": platform.python_version(),
        },
        "micro": micro,
        "spellcheck_steps_per_sec": headline,
        "sweep": sweep,
    }


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    path = Path(path) if path is not None else BASELINE_PATH
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA_NAME:
        raise ValueError("not a %s document: %r"
                         % (SCHEMA_NAME, doc.get("schema")))
    return doc


def check_against_baseline(current: Dict[str, object],
                           baseline: Dict[str, object],
                           tolerance: float) -> List[str]:
    """Regressions beyond ``tolerance``, as readable failure lines."""
    failures = []

    def compare(label: str, now: float, then: float) -> None:
        if then <= 0:
            return
        floor = then * (1.0 - tolerance)
        if now < floor:
            failures.append(
                "%s regressed: %.0f -> %.0f (-%.1f%%, tolerance %.0f%%)"
                % (label, then, now, 100.0 * (1.0 - now / then),
                   100.0 * tolerance))

    compare("spellcheck steps/sec",
            float(current["spellcheck_steps_per_sec"]),
            float(baseline["spellcheck_steps_per_sec"]))
    base_micro = {(p["scheme"], p["n_windows"]): p
                  for p in baseline.get("micro", [])}
    for point in current["micro"]:
        key = (point["scheme"], point["n_windows"])
        if key in base_micro:
            compare("micro %s w=%d steps/sec" % key,
                    float(point["steps_per_sec"]),
                    float(base_micro[key]["steps_per_sec"]))
    if "sweep" in baseline:
        compare("sweep points/sec",
                float(current["sweep"]["points_per_sec"]),
                float(baseline["sweep"]["points_per_sec"]))
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="simulator throughput suite (see BENCH_5.json)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail if the tree regresses vs the baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: repo BENCH_5.json)")
    parser.add_argument("--out", default=None,
                        help="also write the measured document here")
    parser.add_argument("--tolerance", type=float,
                        default=_env_float("REPRO_BENCH_TOLERANCE",
                                           DEFAULT_TOLERANCE),
                        help="allowed fractional regression for --check")
    parser.add_argument("--micro-scale", type=float, default=None)
    parser.add_argument("--sweep-scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    current = run_suite(micro_scale=args.micro_scale,
                        sweep_scale=args.sweep_scale,
                        repeats=args.repeats)
    baseline_path = (Path(args.baseline) if args.baseline
                     else BASELINE_PATH)

    if args.out:
        atomic_write_text(Path(args.out),
                          json.dumps(current, indent=2, sort_keys=True)
                          + "\n")
        print("wrote %s" % args.out)

    if args.update:
        if baseline_path.exists():
            old = load_baseline(baseline_path)
            if "baseline_pre_pr" in old:
                current["baseline_pre_pr"] = old["baseline_pre_pr"]
        atomic_write_text(baseline_path,
                          json.dumps(current, indent=2, sort_keys=True)
                          + "\n")
        print("baseline updated: %s" % baseline_path)
        return 0

    if args.check:
        if not baseline_path.exists():
            print("no baseline at %s; run with --update first"
                  % baseline_path, file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)
        failures = check_against_baseline(current, baseline,
                                          args.tolerance)
        if failures:
            for line in failures:
                print("FAIL: %s" % line, file=sys.stderr)
            return 1
        print("bench check OK: headline %.0f steps/s vs baseline %.0f "
              "(tolerance %.0f%%)"
              % (current["spellcheck_steps_per_sec"],
                 baseline["spellcheck_steps_per_sec"],
                 100.0 * args.tolerance))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
