"""Figure 11 — execution time vs number of windows, high concurrency.

Shape claims reproduced (paper §6.3):

* with enough windows the best scheme is SP;
* with very few windows the NS scheme is best;
* NS is flat in the window count (it flushes everything anyway);
* the sharing advantage grows as granularity becomes finer;
* the sharing curves saturate once the window count covers the total
  window activity.
"""

import pytest

from benchmarks.conftest import series_from, value_at, write_series_report

GRANULARITIES = ("coarse", "medium", "fine")


@pytest.fixture(scope="module")
def fig11(high_sweep):
    return series_from(high_sweep, lambda p: p.total_cycles)


def test_regenerate_fig11(benchmark, fig11, results_dir, scale):
    def render():
        write_series_report(
            results_dir / "fig11.txt",
            "Figure 11: execution time (cycles), high concurrency, "
            "scale=%.2f" % scale,
            fig11)
        return fig11

    benchmark.pedantic(render, rounds=1, iterations=1)


class TestFig11Shape:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_ns_best_with_few_windows(self, fig11, granularity):
        by_scheme = fig11[granularity]
        ns = value_at(by_scheme["NS"], 4)
        assert ns <= value_at(by_scheme["SNP"], 4)
        assert ns <= value_at(by_scheme["SP"], 4)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sp_best_with_enough_windows(self, fig11, granularity):
        by_scheme = fig11[granularity]
        last = max(x for x, __ in by_scheme["SP"])
        sp = value_at(by_scheme["SP"], last)
        assert sp < value_at(by_scheme["NS"], last)
        assert sp <= value_at(by_scheme["SNP"], last) * 1.01

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_ns_flat_in_window_count(self, fig11, granularity):
        values = [y for __, y in fig11[granularity]["NS"]]
        assert max(values) <= min(values) * 1.02

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("scheme", ["SP", "SNP"])
    def test_sharing_curves_nonincreasing(self, fig11, granularity,
                                          scheme):
        values = [y for __, y in fig11[granularity][scheme]]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier * 1.03

    def test_sharing_advantage_grows_with_finer_granularity(self, fig11):
        def advantage(granularity):
            by_scheme = fig11[granularity]
            last = max(x for x, __ in by_scheme["SP"])
            return (value_at(by_scheme["NS"], last)
                    / value_at(by_scheme["SP"], last))

        assert advantage("fine") > advantage("coarse")

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_sharing_saturates(self, fig11, granularity):
        """More windows beyond the total window activity stop helping."""
        sp = fig11[granularity]["SP"]
        last = max(x for x, __ in sp)
        assert value_at(sp, 16) <= value_at(sp, last) * 1.08

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_crossover_exists(self, fig11, granularity):
        """Somewhere between 4 and 32 windows SP overtakes NS."""
        by_scheme = fig11[granularity]
        diffs = [value_at(by_scheme["NS"], x) - y
                 for x, y in by_scheme["SP"]]
        assert diffs[0] <= 0 or abs(diffs[0]) < diffs[-1]
        assert diffs[-1] > 0
