"""RunReport emission — the cross-PR perf-trajectory artifact.

Each benchmark session writes one versioned RunReport JSON per scheme
into ``benchmarks/results/``; CI uploads them so run-to-run performance
(cycles, traps, switch-cost percentiles) can be diffed mechanically.
"""

import json

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.harness import run_report_point
from repro.metrics.report import from_json, to_json

SCHEMES = ("NS", "SNP", "SP")


@pytest.fixture(scope="module", params=SCHEMES)
def scheme_report(request):
    return request.param, run_report_point(
        request.param, 8, "high", "coarse", scale=bench_scale())


def test_emit_run_reports(benchmark, results_dir, scheme_report):
    scheme, report = scheme_report
    path = results_dir / ("run_report_%s_w8.json" % scheme)
    benchmark.pedantic(lambda: path.write_text(to_json(report)),
                       rounds=1, iterations=1)
    assert from_json(path.read_text()) == json.loads(path.read_text())


class TestRunReportIntegrity:
    def test_totals_consistent(self, scheme_report):
        __, report = scheme_report
        c = report["counters"]
        assert c["total_cycles"] == (c["compute_cycles"]
                                     + c["call_cycles"] + c["trap_cycles"]
                                     + c["switch_cycles"])
        assert sum(c["per_thread_saves"].values()) == c["saves"]
        assert sum(c["per_thread_restores"].values()) == c["restores"]

    def test_event_stream_matches_counters(self, scheme_report):
        __, report = scheme_report
        by_kind = report["events"]["by_kind"]
        c = report["counters"]
        assert by_kind["save"] == c["saves"]
        assert by_kind["restore"] == c["restores"]
        assert by_kind["switch"] == c["context_switches"]
        assert by_kind.get("overflow", 0) == c["overflow_traps"]
        assert by_kind.get("underflow", 0) == c["underflow_traps"]

    def test_switch_cost_stats_present(self, scheme_report):
        __, report = scheme_report
        stats = report["events"]["switch_cost"]
        assert stats["count"] == report["counters"]["context_switches"]
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
