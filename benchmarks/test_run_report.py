"""RunReport emission — the cross-PR perf-trajectory artifact.

Each benchmark session produces one versioned RunReport JSON per
scheme through the sweep engine (serial, uncached, so the benchmark
always measures a fresh run) and writes it atomically into
``benchmarks/results/``; CI uploads them so run-to-run performance
(cycles, traps, switch-cost percentiles) can be diffed mechanically.
"""

import json

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.engine import Engine, PointSpec
from repro.metrics.report import from_json, to_json, write_report

SCHEMES = ("NS", "SNP", "SP")


@pytest.fixture(scope="module", params=SCHEMES)
def scheme_report(request):
    engine = Engine(jobs=1, cache_dir=None)
    [report] = engine.run_reports([PointSpec(
        scheme=request.param, n_windows=8, concurrency="high",
        granularity="coarse", scale=bench_scale())])
    assert engine.last_stats.executed == 1
    return request.param, report


def test_emit_run_reports(benchmark, results_dir, scheme_report):
    scheme, report = scheme_report
    path = results_dir / ("run_report_%s_w8.json" % scheme)
    benchmark.pedantic(lambda: write_report(report, str(path)),
                       rounds=1, iterations=1)
    assert from_json(path.read_text()) == json.loads(path.read_text())
    assert path.read_text() == to_json(report)
    leftovers = list(results_dir.glob(path.name + ".*.tmp"))
    assert not leftovers, "atomic write left temp files: %s" % leftovers


class TestRunReportIntegrity:
    def test_totals_consistent(self, scheme_report):
        __, report = scheme_report
        c = report["counters"]
        assert c["total_cycles"] == (c["compute_cycles"]
                                     + c["call_cycles"] + c["trap_cycles"]
                                     + c["switch_cycles"])
        assert sum(c["per_thread_saves"].values()) == c["saves"]
        assert sum(c["per_thread_restores"].values()) == c["restores"]

    def test_event_stream_matches_counters(self, scheme_report):
        __, report = scheme_report
        by_kind = report["events"]["by_kind"]
        c = report["counters"]
        assert by_kind["save"] == c["saves"]
        assert by_kind["restore"] == c["restores"]
        assert by_kind["switch"] == c["context_switches"]
        assert by_kind.get("overflow", 0) == c["overflow_traps"]
        assert by_kind.get("underflow", 0) == c["underflow_traps"]

    def test_switch_cost_stats_present(self, scheme_report):
        __, report = scheme_report
        stats = report["events"]["switch_cost"]
        assert stats["count"] == report["counters"]["context_switches"]
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
