#!/usr/bin/env python
"""The working-set concept on register windows (§4.6 / Figure 15):
an awoken thread whose windows are still resident jumps the ready
queue, keeping the aggregate window working set on the processor.

Run:  python examples/working_set_demo.py [scale]
"""

import sys

from repro.experiments.harness import run_point
from repro.metrics.reporting import format_table


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    rows = []
    for n_windows in (5, 6, 7, 8, 10, 12, 16):
        fifo = run_point("SP", n_windows, "high", "fine", scale=scale)
        wset = run_point("SP", n_windows, "high", "fine", scale=scale,
                         working_set=True)
        rows.append([
            n_windows,
            fifo.total_cycles,
            wset.total_cycles,
            "%.2fx" % (fifo.total_cycles / wset.total_cycles),
            fifo.overflow_traps + fifo.underflow_traps,
            wset.overflow_traps + wset.underflow_traps,
        ])
    print(format_table(
        ["windows", "FIFO cycles", "working-set cycles", "speedup",
         "FIFO traps", "WS traps"],
        rows,
        title="SP scheme, high concurrency, fine granularity "
              "(scale %.2f)" % scale))
    print()
    print("The paper's finding: with the working-set queue the sharing")
    print("schemes already work well at 7-8 windows, and lose nothing")
    print("when windows are plentiful.")


if __name__ == "__main__":
    main()
