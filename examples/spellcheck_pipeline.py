#!/usr/bin/env python
"""The paper's evaluation application end to end: the seven-thread
spell checker (Figure 10) over a synthetic LaTeX document, with the
§5 program-behaviour measures printed afterwards.

Run:  python examples/spellcheck_pipeline.py [scale]
"""

import sys

from repro import Kernel
from repro.apps.spellcheck import SpellConfig, build_spellchecker
from repro.metrics.behavior import BehaviorTracker
from repro.metrics.reporting import format_table


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1

    # High concurrency, medium granularity: M = N = 4 bytes.
    config = SpellConfig.named("high", "medium", scale=scale)
    kernel = Kernel(n_windows=12, scheme="SP")
    kernel.tracker = BehaviorTracker()
    parts = build_spellchecker(kernel, config)

    result = kernel.run()
    report = result.result_of("T5.output")

    print("corpus: %d bytes, dictionaries: %d + %d bytes"
          % (len(parts["corpus"]), len(parts["dicts"][0]),
             len(parts["dicts"][1])))
    print("misspellings found: %d (%d bytes)"
          % (report.count(b"\n"), len(report)))
    print("first few:", b" ".join(report.split(b"\n")[:6]).decode())
    print()

    names = {t.tid: t.name for t in result.threads}
    activity = kernel.tracker.window_activity_per_thread()
    rows = []
    for thread in result.threads:
        rows.append([
            thread.name,
            result.counters.per_thread_switches.get(thread.tid, 0),
            result.counters.per_thread_saves.get(thread.tid, 0),
            round(activity.get(thread.tid, 0.0), 2),
        ])
    print(format_table(
        ["thread", "switches", "saves", "win activity/quantum"], rows,
        title="Per-thread behaviour (cf. paper Table 1 / section 5)"))
    print()
    print("mean concurrency       : %.2f"
          % kernel.tracker.mean_concurrency())
    print("total window activity  : %.1f windows/period"
          % kernel.tracker.mean_total_window_activity())
    print("mean run length        : %.0f cycles"
          % kernel.tracker.granularity())
    print("total simulated cycles : %d" % result.counters.total_cycles)
    del names


if __name__ == "__main__":
    main()
