#!/usr/bin/env python
"""Compare the NS / SNP / SP schemes across window counts on the spell
checker — a miniature of the paper's Figure 11, drawn in the terminal.

Run:  python examples/scheme_comparison.py [scale]
"""

import sys

from repro.experiments.figures import run_fig11
from repro.metrics.reporting import format_table


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    windows = [4, 6, 8, 12, 16, 24, 32]

    print("sweeping %s windows x 3 schemes x 3 granularities "
          "(scale %.2f)..." % (windows, scale))
    figure = run_fig11(windows=windows, scale=scale)

    for granularity in ("coarse", "medium", "fine"):
        print()
        print(figure.chart(granularity))

    # The paper's headline claims, checked numerically:
    print()
    rows = []
    for granularity in ("coarse", "medium", "fine"):
        ns4 = figure.value("NS", granularity, 4)
        sp4 = figure.value("SP", granularity, 4)
        ns32 = figure.value("NS", granularity, 32)
        sp32 = figure.value("SP", granularity, 32)
        rows.append([granularity,
                     "NS" if ns4 < sp4 else "SP",
                     "SP" if sp32 < ns32 else "NS",
                     "%.2fx" % (ns32 / sp32)])
    print(format_table(
        ["granularity", "best @ 4 windows", "best @ 32", "NS/SP @ 32"],
        rows, title="Who wins where (paper: NS at few windows, SP with "
                    "enough; gap widens as granularity gets finer)"))


if __name__ == "__main__":
    main()
