#!/usr/bin/env python
"""Watch the window file over time: one row per physical window, one
column per context switch.  Under NS the file is wiped every column;
under SP the suspended threads' frames (and their PRWs, lowercase)
visibly stay put — which is exactly why its switches are cheap.

Run:  python examples/timeline_demo.py
"""

from repro import Kernel
from repro.apps.spellcheck import SpellConfig, build_spellchecker
from repro.metrics.tracing import OccupancyTimeline


def run(scheme):
    kernel = Kernel(n_windows=12, scheme=scheme, verify_registers=False)
    kernel.timeline = OccupancyTimeline()
    build_spellchecker(kernel, SpellConfig.named("high", "coarse",
                                                 scale=0.02))
    kernel.run()
    return kernel.timeline


def main():
    for scheme in ("NS", "SNP", "SP"):
        timeline = run(scheme)
        print("=== %s scheme (occupancy %.0f%%)"
              % (scheme, 100 * timeline.occupancy_ratio()))
        print(timeline.render(max_columns=72))
        print()


if __name__ == "__main__":
    main()
