#!/usr/bin/env python
"""Regenerate the paper's explanatory figures (3, 4 and 8) from live
simulator state: the basic overflow/underflow traps, and the proposed
in-place underflow restore that makes window sharing possible.

Run:  python examples/paper_figures.py
"""

from repro.windows.diagrams import reenact_all


def main():
    for item in reenact_all():
        print("=" * 64)
        print(item)
        print()


if __name__ == "__main__":
    main()
