#!/usr/bin/env python
"""Trap-level demo on the micro-SPARC: recursive factorial whose
epilogue uses the restore-as-add peephole (§4.3), run on a tiny
4-window file under all three schemes, plus two hardware threads
sharing one window file.

Run:  python examples/isa_demo.py
"""

from repro.isa import Machine, assemble
from repro.isa.programs import FACTORIAL_RETADD, TWO_COUNTERS
from repro.metrics.reporting import format_table


def main():
    rows = []
    for scheme in ("NS", "SNP", "SP"):
        machine = Machine(assemble(FACTORIAL_RETADD), n_windows=4,
                          scheme=scheme)
        thread = machine.add_thread("start", name="fact")
        machine.run()
        c = machine.counters
        rows.append([scheme, thread.exit_value, c.saves, c.restores,
                     c.overflow_traps, c.underflow_traps])
    print(format_table(
        ["scheme", "7! =", "saves", "restores", "overflows",
         "underflows"],
        rows,
        title="factorial(7) on a 4-window file (restore-as-add "
              "epilogue, underflow traps emulate the add)"))

    print()
    rows = []
    for scheme in ("NS", "SNP", "SP"):
        machine = Machine(assemble(TWO_COUNTERS), n_windows=6,
                          scheme=scheme)
        machine.add_thread("start", args=(0, 512), name="c1")
        machine.add_thread("start", args=(0, 768), name="c2")
        results = machine.run()
        c = machine.counters
        rows.append([scheme, results["c1"], results["c2"],
                     c.context_switches,
                     c.windows_spilled + c.windows_restored])
    print(format_table(
        ["scheme", "c1", "c2", "switches", "windows moved"],
        rows,
        title="two hardware threads sharing a 6-window file "
              "(yield-driven switches)"))


if __name__ == "__main__":
    main()
