#!/usr/bin/env python
"""Quickstart: simulated threads, procedure calls through register
windows, and a context-switching pipeline.

Run:  python examples/quickstart.py
"""

from repro import Call, CloseStream, Kernel, Read, Tick, Write


def worker(n):
    """A procedure is a generator; Call executes a simulated ``save``,
    returning executes a simulated ``restore``."""
    yield Tick(5)                 # charge 5 cycles of computation
    if n <= 1:
        return 1
    below = yield Call(worker, n - 1)   # nested procedure call
    return below * n


def producer(stream, items):
    for i in range(items):
        yield Write(stream, bytes([i]))   # blocks when the stream fills
    yield CloseStream(stream)
    return items


def consumer(stream):
    total = 0
    while True:
        data = yield Read(stream, 16)     # blocks while empty
        if not data:                      # b"" = end of stream
            return total
        for byte in data:
            total += yield Call(worker, (byte % 5) + 1)


def main():
    # 8 physical windows managed by the paper's SP scheme (sharing with
    # private reserved windows). Try "NS" or "SNP" and other window
    # counts to see the cost difference.
    kernel = Kernel(n_windows=8, scheme="SP")
    stream = kernel.stream(4, "pipe")
    kernel.spawn(producer, stream, 50, name="producer")
    kernel.spawn(consumer, stream, name="consumer")

    result = kernel.run()

    print("consumer computed:", result.result_of("consumer"))
    c = result.counters
    print("simulated cycles :", c.total_cycles)
    print("context switches :", c.context_switches)
    print("save/restore     : %d/%d" % (c.saves, c.restores))
    print("window traps     : %d overflow, %d underflow"
          % (c.overflow_traps, c.underflow_traps))
    print("avg switch cost  : %.1f cycles" % c.avg_switch_cycles)


if __name__ == "__main__":
    main()
