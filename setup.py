"""Build glue for the optional compiled backend (``repro._fast``).

A plain ``pip install -e .`` stays a pure-Python no-op build — no
compiler required.  The C extension is only wired in when explicitly
requested, either via the environment gate::

    REPRO_BUILD_FAST=1 pip install -e .

or by invoking the build command directly::

    python setup.py build_ext --inplace

The extension is marked ``optional``: a missing/broken compiler fails
the extension, not the install, and the runtime falls back to the
pure-Python backend (see ``repro.runtime.backend``).
"""

import os
import sys

from setuptools import setup

kwargs = {}
if os.environ.get("REPRO_BUILD_FAST") or "build_ext" in sys.argv:
    from setuptools import Extension

    kwargs["ext_modules"] = [
        Extension(
            "repro._fast",
            sources=["src/repro/_fastcore.c"],
            optional=True,
        )
    ]

setup(**kwargs)
