/* repro._fast: the optional compiled execution backend.
 *
 * Two entry points, each a faithful transcription of a pure-Python hot
 * loop (bit-identical by construction and enforced by the differential
 * harness, tests/core/test_batched_vs_trampoline.py):
 *
 *   run_batched(kernel)       <->  Kernel._run_batched
 *   machine_run(machine, n)   <->  Machine._run_thread
 *
 * The transcription discipline:
 *
 *   - Every counter/statistic accumulates in C integers and folds into
 *     the Python objects exactly where the pure loop's ``finally``
 *     blocks fold theirs (quantum boundary / run exit), including on
 *     exceptional exits, so crash-context identity holds.
 *   - All simulator *policy* stays in Python: trap handlers, context
 *     switches, scheduling policy, retirement, blocking bookkeeping
 *     and the trace-event fallbacks are called as the same bound
 *     methods the pure loop calls.
 *   - Error construction is delegated to repro.runtime._fastsupport so
 *     messages (and ReproError context) are byte-identical.
 *   - Geometry (wf.cwp, tw.depth/resident) is read and written through
 *     the same attributes at the same points as the pure loop -- no
 *     shadow state that a trap handler could make stale.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* ---------------------------------------------------------------------
 * Interned attribute names.
 * ------------------------------------------------------------------ */

#define ATTR_NAMES(X) \
    X(cpu) X(wf) X(map) X(counters) X(scheme) X(ready) X(current) \
    X(last_suspended) X(verify_registers) X(_profiler) X(_tracing) \
    X(_steps) X(_progress) X(_save_instr_cost) X(_restore_instr_cost) \
    X(_regs) X(_wim) X(_kind) X(_tid) X(cwp) X(global_regs) \
    X(_above) X(_below) X(_in_base) X(_out_base) \
    X(handle_overflow) X(handle_underflow) X(context_switch) X(retire) \
    X(_queue) X(_fifo) X(faults) X(sample_slackness) \
    X(slackness_samples) X(push_woken) X(push_yielded) X(popleft) \
    X(extend) X(windows) X(gen_stack) X(resume_value) X(pending) \
    X(state) X(result) X(name) X(tid) X(join_waiters) X(blocked_on) \
    X(blocks) X(calls) X(returns) X(flush_on_switch) X(start_root) \
    X(depth) X(resident) X(stat_saves) X(stat_restores) \
    X(_data) X(closed) X(capacity) X(read_waiters) X(write_waiters) \
    X(bytes_written) X(bytes_read) \
    X(cycles) X(args) X(factory) X(stream) X(max_bytes) X(data) \
    X(flush) X(thread) \
    X(compute_cycles) X(call_cycles) X(saves) X(restores) \
    X(_cd) X(_check) X(_block) X(_spawn) X(_do_close) \
    X(_wake_readers) X(_wake_writers) \
    X(pc) X(cc) X(instructions) X(program) X(memory) X(_dispatch) \
    X(op) X(operands) X(label) X(kind) X(bank) X(index) X(value) \
    X(offset) X(exit_value)

#define DECLARE_ATTR(n) static PyObject *a_##n;
ATTR_NAMES(DECLARE_ATTR)
#undef DECLARE_ATTR

/* op classes (repro.runtime.ops) */
static PyObject *TickT, *CallT, *ReadT, *WriteT, *ReadLineT,
    *CloseStreamT, *YieldCPUT, *FlushHintT, *SpawnT, *JoinT;
/* thread-state / occupancy string constants */
static PyObject *S_READY, *S_RUNNING, *S_DONE, *S_FREE, *S_FRAME;
/* pending-op kind strings + the frame-signature tag */
static PyObject *K_write, *K_read, *K_readline, *K_join, *S_sig, *K_imm;
/* _fastsupport raise helpers */
static PyObject *sup_finish_depth, *sup_bad_signature, *sup_restore_depth,
    *sup_return_corrupt, *sup_overflow_invalid, *sup_arg_corrupt,
    *sup_write_closed, *sup_readline_too_long, *sup_join_self,
    *sup_bad_op, *sup_unknown_pending;
/* machine side */
static PyObject *EXIT_BUDGET_O;
static PyObject *MachineFaultT;
static PyObject *py_read_register, *py_write_register;
static PyObject *op_codes;        /* opcode str -> small int (inlined ops) */
static PyObject *long_zero, *long_one;

static int fast_initialized = 0;

/* Inlined machine opcode codes (everything else delegates to the
 * Python dispatch table). */
enum {
    OPC_ADD = 1, OPC_SUB, OPC_AND, OPC_OR, OPC_XOR, OPC_SLL, OPC_SRL,
    OPC_SMUL,
    OPC_BE = 10, OPC_BNE, OPC_BG, OPC_BGE, OPC_BL, OPC_BLE,
    OPC_MOV = 16, OPC_CMP, OPC_BA, OPC_NOP, OPC_CALL, OPC_RETL,
    OPC_LD, OPC_ST
};

static int
ensure_init(void)
{
    PyObject *m = NULL;

    if (fast_initialized)
        return 0;

#define INTERN_ATTR(n) \
    if (!(a_##n = PyUnicode_InternFromString(#n))) return -1;
    ATTR_NAMES(INTERN_ATTR)
#undef INTERN_ATTR

    if (!(K_write = PyUnicode_InternFromString("write"))) return -1;
    if (!(K_read = PyUnicode_InternFromString("read"))) return -1;
    if (!(K_readline = PyUnicode_InternFromString("readline"))) return -1;
    if (!(K_join = PyUnicode_InternFromString("join"))) return -1;
    if (!(S_sig = PyUnicode_InternFromString("sig"))) return -1;
    if (!(K_imm = PyUnicode_InternFromString("imm"))) return -1;
    if (!(long_zero = PyLong_FromLong(0))) return -1;
    if (!(long_one = PyLong_FromLong(1))) return -1;

    m = PyImport_ImportModule("repro.runtime.ops");
    if (m == NULL)
        return -1;
#define GET(var, name) \
    if (!(var = PyObject_GetAttrString(m, name))) { Py_DECREF(m); return -1; }
    GET(TickT, "Tick") GET(CallT, "Call") GET(ReadT, "Read")
    GET(WriteT, "Write") GET(ReadLineT, "ReadLine")
    GET(CloseStreamT, "CloseStream") GET(YieldCPUT, "YieldCPU")
    GET(FlushHintT, "FlushHint") GET(SpawnT, "Spawn") GET(JoinT, "Join")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.runtime.thread");
    if (m == NULL)
        return -1;
    GET(S_READY, "READY") GET(S_RUNNING, "RUNNING") GET(S_DONE, "DONE")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.windows.occupancy");
    if (m == NULL)
        return -1;
    GET(S_FREE, "FREE") GET(S_FRAME, "FRAME")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.runtime._fastsupport");
    if (m == NULL)
        return -1;
    GET(sup_finish_depth, "raise_finish_depth")
    GET(sup_bad_signature, "raise_bad_signature")
    GET(sup_restore_depth, "raise_restore_depth")
    GET(sup_return_corrupt, "raise_return_corrupt")
    GET(sup_overflow_invalid, "raise_overflow_invalid")
    GET(sup_arg_corrupt, "raise_arg_corrupt")
    GET(sup_write_closed, "raise_write_closed")
    GET(sup_readline_too_long, "raise_readline_too_long")
    GET(sup_join_self, "raise_join_self")
    GET(sup_bad_op, "raise_bad_op")
    GET(sup_unknown_pending, "raise_unknown_pending")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.runtime.batch");
    if (m == NULL)
        return -1;
    GET(EXIT_BUDGET_O, "EXIT_BUDGET")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.isa.machine");
    if (m == NULL)
        return -1;
    GET(MachineFaultT, "MachineFault")
    Py_DECREF(m);

    m = PyImport_ImportModule("repro.isa.registers");
    if (m == NULL)
        return -1;
    GET(py_read_register, "read_register")
    GET(py_write_register, "write_register")
    Py_DECREF(m);
#undef GET

    op_codes = PyDict_New();
    if (op_codes == NULL)
        return -1;
    {
        static const struct { const char *name; int code; } table[] = {
            {"add", OPC_ADD}, {"sub", OPC_SUB}, {"and", OPC_AND},
            {"or", OPC_OR}, {"xor", OPC_XOR}, {"sll", OPC_SLL},
            {"srl", OPC_SRL}, {"smul", OPC_SMUL},
            {"be", OPC_BE}, {"bne", OPC_BNE}, {"bg", OPC_BG},
            {"bge", OPC_BGE}, {"bl", OPC_BL}, {"ble", OPC_BLE},
            {"mov", OPC_MOV}, {"cmp", OPC_CMP}, {"ba", OPC_BA},
            {"nop", OPC_NOP}, {"call", OPC_CALL}, {"retl", OPC_RETL},
            {"ld", OPC_LD}, {"st", OPC_ST},
            {NULL, 0},
        };
        int i;
        for (i = 0; table[i].name != NULL; i++) {
            PyObject *code = PyLong_FromLong(table[i].code);
            if (code == NULL)
                return -1;
            if (PyDict_SetItemString(op_codes, table[i].name, code) < 0) {
                Py_DECREF(code);
                return -1;
            }
            Py_DECREF(code);
        }
    }

    fast_initialized = 1;
    return 0;
}

/* ---------------------------------------------------------------------
 * Small attribute helpers.
 * ------------------------------------------------------------------ */

static int
get_ssize(PyObject *o, PyObject *name, Py_ssize_t *out)
{
    PyObject *v = PyObject_GetAttr(o, name);
    Py_ssize_t r;
    if (v == NULL)
        return -1;
    r = PyLong_AsSsize_t(v);
    Py_DECREF(v);
    if (r == -1 && PyErr_Occurred())
        return -1;
    *out = r;
    return 0;
}

static int
set_ssize(PyObject *o, PyObject *name, Py_ssize_t x)
{
    PyObject *v = PyLong_FromSsize_t(x);
    int r;
    if (v == NULL)
        return -1;
    r = PyObject_SetAttr(o, name, v);
    Py_DECREF(v);
    return r;
}

/* attr += delta (through PyNumber_Add: counters may be arbitrary ints) */
static int
add_ssize_attr(PyObject *o, PyObject *name, long long delta)
{
    PyObject *cur, *d, *sum;
    int r;
    if (delta == 0)
        return 0;
    cur = PyObject_GetAttr(o, name);
    if (cur == NULL)
        return -1;
    d = PyLong_FromLongLong(delta);
    if (d == NULL) {
        Py_DECREF(cur);
        return -1;
    }
    sum = PyNumber_Add(cur, d);
    Py_DECREF(cur);
    Py_DECREF(d);
    if (sum == NULL)
        return -1;
    r = PyObject_SetAttr(o, name, sum);
    Py_DECREF(sum);
    return r;
}

static int
get_truth(PyObject *o, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(o, name);
    int r;
    if (v == NULL)
        return -1;
    r = PyObject_IsTrue(v);
    Py_DECREF(v);
    return r;
}

/* list[i] = v without stealing the caller's reference */
static int
list_set(PyObject *list, Py_ssize_t i, PyObject *v)
{
    Py_INCREF(v);
    return PyList_SetItem(list, i, v);
}

/* Call a _fastsupport raise helper (always raises); returns -1. */
static int
sup_raise(PyObject *fn, ...)
{
    va_list va;
    PyObject *argv[8];
    Py_ssize_t argc = 0, i;
    PyObject *res;
    va_start(va, fn);
    for (;;) {
        PyObject *o = va_arg(va, PyObject *);
        if (o == NULL)
            break;
        argv[argc++] = o;
    }
    va_end(va);
    res = PyObject_Vectorcall(fn, argv, (size_t)argc, NULL);
    for (i = 0; i < argc; i++)
        ;
    if (res != NULL) {
        /* helpers raise unconditionally; reaching here is a bug */
        Py_DECREF(res);
        PyErr_SetString(PyExc_SystemError,
                        "_fastsupport helper returned without raising");
    }
    return -1;
}

/* ---------------------------------------------------------------------
 * run_batched context + stream/wake primitives.
 * ------------------------------------------------------------------ */

typedef struct {
    PyObject *kernel;
    PyObject *cpu, *wf, *regs, *wim, *kinds, *tids;
    PyObject *counters, *prof;        /* prof NULL when no profiler */
    PyObject *scheme;
    PyObject *m_overflow, *m_underflow, *m_switch, *m_retire;
    PyObject *m_push_woken, *m_push_yielded, *m_popleft, *m_qextend;
    PyObject *m_wake_readers, *m_wake_writers, *m_do_close, *m_block,
        *m_spawn;
    PyObject *ready, *queue;
    int verify, fifo_wake;
    long long save_cost, restore_cost;
    Py_ssize_t n;
    Py_ssize_t *above, *below, *in_base, *out_base;  /* one allocation */
    /* run-global accumulators (outer finally) */
    long long steps, progress, compute, call_cyc, saves_total,
        restores_total;
    long long prof_cd;
} Ctx;

/* Wake every thread on `waiters` (a list).  Fast path: plain FIFO, no
 * faults, tracing off -> set state and batch-extend the deque.
 * Fallback: the kernel's _wake_readers/_wake_writers bound method. */
static int
wake_list(Ctx *c, PyObject *stream, PyObject *waiters, PyObject *fallback)
{
    int tracing;
    PyObject *res;
    if (c->fifo_wake) {
        tracing = get_truth(c->kernel, a__tracing);
        if (tracing < 0)
            return -1;
        if (!tracing) {
            Py_ssize_t i, n = PyList_GET_SIZE(waiters);
            for (i = 0; i < n; i++) {
                PyObject *w = PyList_GET_ITEM(waiters, i);
                if (PyObject_SetAttr(w, a_blocked_on, Py_None) < 0)
                    return -1;
                if (PyObject_SetAttr(w, a_state, S_READY) < 0)
                    return -1;
            }
            res = PyObject_CallOneArg(c->m_qextend, waiters);
            if (res == NULL)
                return -1;
            Py_DECREF(res);
            return PyList_SetSlice(waiters, 0,
                                   PyList_GET_SIZE(waiters), NULL);
        }
    }
    res = PyObject_CallOneArg(fallback, stream);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Wake a stream's readers/writers when the list attribute is nonempty;
 * `which` is a_read_waiters or a_write_waiters. */
static int
wake_stream(Ctx *c, PyObject *stream, PyObject *which)
{
    PyObject *waiters = PyObject_GetAttr(stream, which);
    int r = 0;
    if (waiters == NULL)
        return -1;
    if (PyList_GET_SIZE(waiters) > 0)
        r = wake_list(c, stream, waiters,
                      which == a_read_waiters ? c->m_wake_readers
                                              : c->m_wake_writers);
    Py_DECREF(waiters);
    return r;
}

/* Is stream.<which> nonempty?  (-1 on error) */
static int
waiters_nonempty(PyObject *stream, PyObject *which)
{
    PyObject *waiters = PyObject_GetAttr(stream, which);
    int r;
    if (waiters == NULL)
        return -1;
    r = PyList_GET_SIZE(waiters) > 0;
    Py_DECREF(waiters);
    return r;
}

/* bytearray helpers: buffer pointers are re-fetched around every
 * resize (and never held across Python calls). */

static int
ba_extend(PyObject *ba, const char *src, Py_ssize_t k)
{
    Py_ssize_t old = PyByteArray_GET_SIZE(ba);
    if (PyByteArray_Resize(ba, old + k) < 0)
        return -1;
    memcpy(PyByteArray_AS_STRING(ba) + old, src, (size_t)k);
    return 0;
}

static int
ba_delfront(PyObject *ba, Py_ssize_t k)
{
    Py_ssize_t n = PyByteArray_GET_SIZE(ba);
    char *b = PyByteArray_AS_STRING(ba);
    memmove(b, b + k, (size_t)(n - k));
    return PyByteArray_Resize(ba, n - k);
}

/* One write attempt against a stream (Stream.push inlined, matching
 * both the op-site and the pending-resume site of the pure loop).
 * Returns -1 on error; on success *out_offset is the new offset and
 * *done says whether the write completed. */
static int
stream_write_step(Ctx *c, PyObject *stream, PyObject *data,
                  Py_ssize_t offset, Py_ssize_t *out_offset, int *done)
{
    PyObject *sdata;
    Py_ssize_t capacity, space, want, total, k;
    int closed, r;
    Py_buffer view;

    closed = get_truth(stream, a_closed);
    if (closed < 0)
        return -1;
    if (closed)
        return sup_raise(sup_write_closed, stream, NULL);
    sdata = PyObject_GetAttr(stream, a__data);
    if (sdata == NULL)
        return -1;
    if (!PyByteArray_CheckExact(sdata)) {
        Py_DECREF(sdata);
        PyErr_SetString(PyExc_TypeError, "stream._data is not a bytearray");
        return -1;
    }
    if (get_ssize(stream, a_capacity, &capacity) < 0) {
        Py_DECREF(sdata);
        return -1;
    }
    if (PyObject_GetBuffer(data, &view, PyBUF_SIMPLE) < 0) {
        Py_DECREF(sdata);
        return -1;
    }
    total = view.len;
    space = capacity - PyByteArray_GET_SIZE(sdata);
    want = total - offset;
    k = 0;
    if (space > 0 && want > 0)
        k = space < want ? space : want;
    if (k > 0) {
        if (ba_extend(sdata, (const char *)view.buf + offset, k) < 0)
            goto fail;
        if (add_ssize_attr(stream, a_bytes_written, k) < 0)
            goto fail;
        offset += k;
        r = waiters_nonempty(stream, a_read_waiters);
        if (r < 0)
            goto fail;
        if (r && wake_stream(c, stream, a_read_waiters) < 0)
            goto fail;
    }
    PyBuffer_Release(&view);
    Py_DECREF(sdata);
    *out_offset = offset;
    *done = offset >= total;
    return 0;
fail:
    PyBuffer_Release(&view);
    Py_DECREF(sdata);
    return -1;
}

/* Stream.pull inlined: take up to `take` bytes; bumps bytes_read.
 * Returns the new bytes object (never NULL on success) and the pulled
 * count via *npulled. */
static PyObject *
stream_pull_c(Ctx *c, PyObject *stream, PyObject *sdata, Py_ssize_t take,
              Py_ssize_t *npulled)
{
    Py_ssize_t avail = PyByteArray_GET_SIZE(sdata);
    PyObject *data;
    if (take >= avail) {
        take = avail;
        data = PyBytes_FromStringAndSize(PyByteArray_AS_STRING(sdata),
                                         avail);
        if (data == NULL)
            return NULL;
        if (PyByteArray_Resize(sdata, 0) < 0) {
            Py_DECREF(data);
            return NULL;
        }
    }
    else {
        data = PyBytes_FromStringAndSize(PyByteArray_AS_STRING(sdata),
                                         take);
        if (data == NULL)
            return NULL;
        if (ba_delfront(sdata, take) < 0) {
            Py_DECREF(data);
            return NULL;
        }
    }
    if (take > 0 && add_ssize_attr(stream, a_bytes_read, take) < 0) {
        Py_DECREF(data);
        return NULL;
    }
    *npulled = take;
    return data;
}

/* has_line/at_eof/pull_line inlined.  Returns 1 with *line set when a
 * line (possibly empty, at EOF) is ready, 0 when the caller must
 * block, -1 on error (including the line-too-long fault). */
static int
stream_readline_c(Ctx *c, PyObject *stream, PyObject *sdata,
                  PyObject **line)
{
    Py_ssize_t n = PyByteArray_GET_SIZE(sdata);
    const char *buf = PyByteArray_AS_STRING(sdata);
    const char *p = (const char *)memchr(buf, '\n', (size_t)n);
    Py_ssize_t capacity;
    int closed;

    if (p != NULL) {
        Py_ssize_t idx = (p - buf) + 1;
        *line = PyBytes_FromStringAndSize(buf, idx);
        if (*line == NULL)
            return -1;
        if (ba_delfront(sdata, idx) < 0 ||
                add_ssize_attr(stream, a_bytes_read, idx) < 0) {
            Py_CLEAR(*line);
            return -1;
        }
        return 1;
    }
    closed = get_truth(stream, a_closed);
    if (closed < 0)
        return -1;
    if (closed) {
        *line = PyBytes_FromStringAndSize(buf, n);
        if (*line == NULL)
            return -1;
        if (n > 0) {
            if (PyByteArray_Resize(sdata, 0) < 0 ||
                    add_ssize_attr(stream, a_bytes_read, n) < 0) {
                Py_CLEAR(*line);
                return -1;
            }
        }
        return 1;
    }
    if (get_ssize(stream, a_capacity, &capacity) < 0)
        return -1;
    if (n >= capacity)
        return sup_raise(sup_readline_too_long, stream, NULL);
    return 0;
}

/* Block the current thread on its pending op: delegates to the
 * kernel's _block (identical bookkeeping to the pure loop's inlined
 * block sites, including the trace emit when tracing flipped on
 * mid-quantum). */
static int
block_thread(Ctx *c, PyObject *thread, PyObject *pending)
{
    PyObject *res;
    if (PyObject_SetAttr(thread, a_pending, pending) < 0)
        return -1;
    res = PyObject_CallOneArg(c->m_block, thread);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* strings compare by identity first (kind strings are interned) */
static int
str_eq(PyObject *a, PyObject *b)
{
    if (a == b)
        return 1;
    return PyObject_RichCompareBool(a, b, Py_EQ);
}

/* max_bytes as Py_ssize_t, clamped on overflow (a huge take pulls
 * everything, same as the pure comparison `take >= avail`). */
static Py_ssize_t
as_take(PyObject *o, int *err)
{
    Py_ssize_t v = PyLong_AsSsize_t(o);
    if (v == -1 && PyErr_Occurred()) {
        if (PyErr_ExceptionMatches(PyExc_OverflowError)) {
            PyErr_Clear();
            return PY_SSIZE_T_MAX;
        }
        *err = 1;
    }
    return v;
}

/* ---------------------------------------------------------------------
 * run_batched(kernel): Kernel._run_batched, compiled.
 * ------------------------------------------------------------------ */

static PyObject *
fast_run_batched(PyObject *self, PyObject *kernel)
{
    Ctx c;
    PyObject *ret = NULL;
    PyObject *tmp = NULL, *wmap = NULL, *m_prof_check = NULL;
    int run_fail = 0;

    if (ensure_init() < 0)
        return NULL;
    memset(&c, 0, sizeof(c));
    c.kernel = kernel;

#define FETCH(dst, o, n) \
    do { (dst) = PyObject_GetAttr((o), (n)); \
         if ((dst) == NULL) goto cleanup; } while (0)

    FETCH(c.cpu, kernel, a_cpu);
    FETCH(c.wf, c.cpu, a_wf);
    FETCH(c.regs, c.wf, a__regs);
    FETCH(c.wim, c.wf, a__wim);
    if (!PyList_CheckExact(c.regs) || !PyByteArray_CheckExact(c.wim)) {
        PyErr_SetString(PyExc_TypeError,
                        "window file storage has unexpected types");
        goto cleanup;
    }
    FETCH(wmap, c.cpu, a_map);
    FETCH(c.kinds, wmap, a__kind);
    FETCH(c.tids, wmap, a__tid);
    if (!PyList_CheckExact(c.kinds) || !PyList_CheckExact(c.tids)) {
        PyErr_SetString(PyExc_TypeError,
                        "occupancy map storage has unexpected types");
        goto cleanup;
    }
    FETCH(c.counters, c.cpu, a_counters);
    FETCH(c.scheme, kernel, a_scheme);
    FETCH(c.m_overflow, c.scheme, a_handle_overflow);
    FETCH(c.m_underflow, c.scheme, a_handle_underflow);
    FETCH(c.m_switch, c.scheme, a_context_switch);
    FETCH(c.m_retire, c.scheme, a_retire);
    FETCH(c.ready, kernel, a_ready);
    FETCH(c.queue, c.ready, a__queue);
    FETCH(c.m_popleft, c.queue, a_popleft);
    FETCH(c.m_qextend, c.queue, a_extend);
    FETCH(c.m_push_woken, c.ready, a_push_woken);
    FETCH(c.m_push_yielded, c.ready, a_push_yielded);
    FETCH(c.m_wake_readers, kernel, a__wake_readers);
    FETCH(c.m_wake_writers, kernel, a__wake_writers);
    FETCH(c.m_do_close, kernel, a__do_close);
    FETCH(c.m_block, kernel, a__block);
    FETCH(c.m_spawn, kernel, a__spawn);

    c.verify = get_truth(kernel, a_verify_registers);
    if (c.verify < 0)
        goto cleanup;
    {
        Py_ssize_t sc, rc;
        if (get_ssize(c.cpu, a__save_instr_cost, &sc) < 0 ||
                get_ssize(c.cpu, a__restore_instr_cost, &rc) < 0)
            goto cleanup;
        c.save_cost = sc;
        c.restore_cost = rc;
    }
    {
        int fifo = get_truth(c.ready, a__fifo);
        if (fifo < 0)
            goto cleanup;
        FETCH(tmp, c.ready, a_faults);
        c.fifo_wake = fifo && tmp == Py_None;
        Py_CLEAR(tmp);
    }
    FETCH(tmp, kernel, a__profiler);
    if (tmp == Py_None)
        Py_CLEAR(tmp);
    else {
        Py_ssize_t cd;
        c.prof = tmp;
        tmp = NULL;
        FETCH(m_prof_check, c.prof, a__check);
        if (get_ssize(c.prof, a__cd, &cd) < 0)
            goto cleanup;
        c.prof_cd = cd;
    }
    {
        /* copy the cyclic-geometry tables into C arrays (they are
         * immutable for the life of the window file) */
        PyObject *la = NULL, *lb = NULL, *li = NULL, *lo = NULL;
        Py_ssize_t i;
        FETCH(la, c.wf, a__above);
        lb = PyObject_GetAttr(c.wf, a__below);
        li = lb ? PyObject_GetAttr(c.wf, a__in_base) : NULL;
        lo = li ? PyObject_GetAttr(c.wf, a__out_base) : NULL;
        if (lo == NULL || !PyList_CheckExact(la) ||
                !PyList_CheckExact(lb) || !PyList_CheckExact(li) ||
                !PyList_CheckExact(lo)) {
            if (lo != NULL)
                PyErr_SetString(PyExc_TypeError,
                                "geometry tables have unexpected types");
            Py_XDECREF(la); Py_XDECREF(lb); Py_XDECREF(li); Py_XDECREF(lo);
            goto cleanup;
        }
        c.n = PyList_GET_SIZE(la);
        c.above = PyMem_New(Py_ssize_t, (size_t)(4 * c.n));
        if (c.above == NULL) {
            PyErr_NoMemory();
            Py_DECREF(la); Py_DECREF(lb); Py_DECREF(li); Py_DECREF(lo);
            goto cleanup;
        }
        c.below = c.above + c.n;
        c.in_base = c.above + 2 * c.n;
        c.out_base = c.above + 3 * c.n;
        for (i = 0; i < c.n; i++) {
            c.above[i] = PyLong_AsSsize_t(PyList_GET_ITEM(la, i));
            c.below[i] = PyLong_AsSsize_t(PyList_GET_ITEM(lb, i));
            c.in_base[i] = PyLong_AsSsize_t(PyList_GET_ITEM(li, i));
            c.out_base[i] = PyLong_AsSsize_t(PyList_GET_ITEM(lo, i));
        }
        Py_DECREF(la); Py_DECREF(lb); Py_DECREF(li); Py_DECREF(lo);
        if (PyErr_Occurred())
            goto cleanup;
    }

    /* ---- the fused dispatch loop: one iteration per quantum ---- */
    for (;;) {
        PyObject *thread = NULL, *tw = NULL, *gen_stack = NULL;
        PyObject *tid_obj = NULL, *resume = NULL, *gen = NULL;
        PyObject *pending = NULL;
        long long n_saves = 0, n_restores = 0;
        int qfail = 0;

#define FAIL_Q() do { qfail = 1; goto q_fold; } while (0)
#define FETCH_Q(dst, o, n) \
        do { (dst) = PyObject_GetAttr((o), (n)); \
             if ((dst) == NULL) FAIL_Q(); } while (0)
#define CALL1_Q(m, arg) \
        do { PyObject *_r = PyObject_CallOneArg((m), (arg)); \
             if (_r == NULL) FAIL_Q(); Py_DECREF(_r); } while (0)
#define SETATTR_Q(o, n, v) \
        do { if (PyObject_SetAttr((o), (n), (v)) < 0) FAIL_Q(); } while (0)
#define TOP_GEN(dst) \
        do { (dst) = PyList_GET_ITEM(gen_stack, \
                                     PyList_GET_SIZE(gen_stack) - 1); \
             Py_INCREF(dst); } while (0)

        thread = PyObject_GetAttr(kernel, a_current);
        if (thread == NULL)
            goto fail_run;
        if (thread == Py_None) {
            Py_DECREF(thread);
            PyErr_SetString(PyExc_RuntimeError,
                            "run_batched with no current thread");
            goto fail_run;
        }
        tw = PyObject_GetAttr(thread, a_windows);
        gen_stack = tw ? PyObject_GetAttr(thread, a_gen_stack) : NULL;
        tid_obj = gen_stack ? PyObject_GetAttr(thread, a_tid) : NULL;
        resume = tid_obj ? PyObject_GetAttr(thread, a_resume_value) : NULL;
        if (resume == NULL || !PyList_CheckExact(gen_stack)) {
            if (resume != NULL)
                PyErr_SetString(PyExc_TypeError,
                                "gen_stack is not a list");
            Py_XDECREF(thread); Py_XDECREF(tw); Py_XDECREF(gen_stack);
            Py_XDECREF(tid_obj); Py_XDECREF(resume);
            goto fail_run;
        }
        c.steps += 1;   /* the entry iteration (compat parity) */

        /* -- entry with an in-flight op (_continue_pending, inlined) -- */
        FETCH_Q(pending, thread, a_pending);
        if (pending == Py_None) {
            TOP_GEN(gen);
        }
        else {
            PyObject *kind, *strm;
            int is;
            if (!PyTuple_CheckExact(pending) ||
                    PyTuple_GET_SIZE(pending) < 2) {
                PyErr_SetString(PyExc_TypeError,
                                "pending op is not a tuple");
                FAIL_Q();
            }
            kind = PyTuple_GET_ITEM(pending, 0);
            strm = PyTuple_GET_ITEM(pending, 1);
            if ((is = str_eq(kind, K_write)) < 0)
                FAIL_Q();
            if (is) {
                PyObject *data = PyTuple_GET_ITEM(pending, 2);
                Py_ssize_t offset, newoff;
                int done, err = 0;
                offset = as_take(PyTuple_GET_ITEM(pending, 3), &err);
                if (err)
                    FAIL_Q();
                if (stream_write_step(&c, strm, data, offset,
                                      &newoff, &done) < 0)
                    FAIL_Q();
                if (done) {
                    SETATTR_Q(thread, a_pending, Py_None);
                    Py_SETREF(resume, Py_NewRef(Py_None));
                    c.progress += 1;
                    TOP_GEN(gen);
                }
                else {
                    PyObject *np = Py_BuildValue("(OOOn)", K_write, strm,
                                                 data, newoff);
                    if (np == NULL)
                        FAIL_Q();
                    if (PyObject_SetAttr(thread, a_pending, np) < 0) {
                        Py_DECREF(np);
                        FAIL_Q();
                    }
                    Py_DECREF(np);
                }
            }
            else if ((is = str_eq(kind, K_read)) != 0) {
                PyObject *sdata;
                int fire;
                if (is < 0)
                    FAIL_Q();
                FETCH_Q(sdata, strm, a__data);
                if (!PyByteArray_CheckExact(sdata)) {
                    Py_DECREF(sdata);
                    PyErr_SetString(PyExc_TypeError,
                                    "stream._data is not a bytearray");
                    FAIL_Q();
                }
                fire = PyByteArray_GET_SIZE(sdata) > 0;
                if (!fire) {
                    fire = get_truth(strm, a_closed);
                    if (fire < 0) {
                        Py_DECREF(sdata);
                        FAIL_Q();
                    }
                }
                if (fire) {
                    Py_ssize_t take, npulled;
                    int err = 0, w;
                    PyObject *data;
                    take = as_take(PyTuple_GET_ITEM(pending, 2), &err);
                    if (err) {
                        Py_DECREF(sdata);
                        FAIL_Q();
                    }
                    data = stream_pull_c(&c, strm, sdata, take, &npulled);
                    Py_DECREF(sdata);
                    if (data == NULL)
                        FAIL_Q();
                    if (npulled > 0) {
                        w = waiters_nonempty(strm, a_write_waiters);
                        if (w < 0 || (w && wake_stream(
                                &c, strm, a_write_waiters) < 0)) {
                            Py_DECREF(data);
                            FAIL_Q();
                        }
                    }
                    SETATTR_Q(thread, a_pending, Py_None);
                    Py_SETREF(resume, data);
                    c.progress += 1;
                    TOP_GEN(gen);
                }
                else
                    Py_DECREF(sdata);
            }
            else if ((is = str_eq(kind, K_readline)) != 0) {
                PyObject *sdata, *line = NULL;
                int r;
                if (is < 0)
                    FAIL_Q();
                FETCH_Q(sdata, strm, a__data);
                if (!PyByteArray_CheckExact(sdata)) {
                    Py_DECREF(sdata);
                    PyErr_SetString(PyExc_TypeError,
                                    "stream._data is not a bytearray");
                    FAIL_Q();
                }
                r = stream_readline_c(&c, strm, sdata, &line);
                Py_DECREF(sdata);
                if (r < 0)
                    FAIL_Q();
                if (r == 1) {
                    if (PyBytes_GET_SIZE(line) > 0) {
                        int w = waiters_nonempty(strm, a_write_waiters);
                        if (w < 0 || (w && wake_stream(
                                &c, strm, a_write_waiters) < 0)) {
                            Py_DECREF(line);
                            FAIL_Q();
                        }
                    }
                    SETATTR_Q(thread, a_pending, Py_None);
                    Py_SETREF(resume, line);
                    c.progress += 1;
                    TOP_GEN(gen);
                }
            }
            else if ((is = str_eq(kind, K_join)) != 0) {
                PyObject *st;
                int done_t;
                if (is < 0)
                    FAIL_Q();
                FETCH_Q(st, strm, a_state);
                done_t = str_eq(st, S_DONE);
                Py_DECREF(st);
                if (done_t < 0)
                    FAIL_Q();
                if (done_t) {
                    PyObject *res_v;
                    FETCH_Q(res_v, strm, a_result);
                    SETATTR_Q(thread, a_pending, Py_None);
                    Py_SETREF(resume, res_v);
                    c.progress += 1;
                    TOP_GEN(gen);
                }
            }
            else {
                sup_raise(sup_unknown_pending, kind, NULL);
                FAIL_Q();
            }
            if (gen == NULL) {
                /* still blocked: re-block without entering the batch */
                CALL1_Q(c.m_block, thread);
            }
        }
        Py_CLEAR(pending);

        /* -- the batch: send until a batch-exit event -- */
        while (gen != NULL) {
            PyObject *result = NULL, *cmd;
            PyTypeObject *t;
            PySendResult sr = PyIter_Send(gen, resume, &result);

            if (sr == PYGEN_ERROR)
                FAIL_Q();

            if (sr == PYGEN_RETURN) {
                PyObject *value = result;       /* owned */
                Py_ssize_t gl = PyList_GET_SIZE(gen_stack);
                Py_ssize_t cwp, depth, target, newcwp;
                PyObject *got;

                if (PyList_SetSlice(gen_stack, gl - 1, gl, NULL) < 0) {
                    Py_DECREF(value);
                    FAIL_Q();
                }
                c.progress += 1;
                if (PyList_GET_SIZE(gen_stack) == 0) {
                    /* thread finished (EXIT_DONE) */
                    PyObject *jw;
                    Py_ssize_t i, nw;
                    if (c.verify) {
                        if (get_ssize(tw, a_depth, &depth) < 0) {
                            Py_DECREF(value);
                            FAIL_Q();
                        }
                        if (depth != 1) {
                            Py_DECREF(value);
                            sup_raise(sup_finish_depth, thread, tw, NULL);
                            FAIL_Q();
                        }
                    }
                    if (PyObject_SetAttr(thread, a_result, value) < 0 ||
                            PyObject_SetAttr(thread, a_state,
                                             S_DONE) < 0) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                    Py_DECREF(value);
                    CALL1_Q(c.m_retire, tw);
                    SETATTR_Q(kernel, a_current, Py_None);
                    FETCH_Q(jw, thread, a_join_waiters);
                    nw = PyList_GET_SIZE(jw);
                    for (i = 0; i < nw; i++) {
                        PyObject *w = PyList_GET_ITEM(jw, i);
                        if (PyObject_SetAttr(w, a_blocked_on,
                                             Py_None) < 0) {
                            Py_DECREF(jw);
                            FAIL_Q();
                        }
                        {
                            PyObject *r2 = PyObject_CallOneArg(
                                c.m_push_woken, w);
                            if (r2 == NULL) {
                                Py_DECREF(jw);
                                FAIL_Q();
                            }
                            Py_DECREF(r2);
                        }
                    }
                    if (PyList_SetSlice(jw, 0, PyList_GET_SIZE(jw),
                                        NULL) < 0) {
                        Py_DECREF(jw);
                        FAIL_Q();
                    }
                    Py_DECREF(jw);
                    Py_CLEAR(gen);
                    break;
                }
                /* procedure return: restore (WindowCPU.restore inlined) */
                n_restores += 1;
                if (get_ssize(c.wf, a_cwp, &cwp) < 0 ||
                        get_ssize(tw, a_depth, &depth) < 0) {
                    Py_DECREF(value);
                    FAIL_Q();
                }
                if (c.verify) {
                    PyObject *sig = PyList_GET_ITEM(
                        c.regs, c.in_base[cwp] + 8);
                    PyObject *expected = Py_BuildValue(
                        "(OOn)", S_sig, tid_obj, depth);
                    int eq;
                    if (expected == NULL) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                    eq = PyObject_RichCompareBool(sig, expected, Py_EQ);
                    Py_DECREF(expected);
                    if (eq < 0) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                    if (!eq) {
                        Py_DECREF(value);
                        sup_raise(sup_bad_signature, thread, tw, sig,
                                  NULL);
                        FAIL_Q();
                    }
                }
                /* the return value travels through the in/out overlap */
                if (list_set(c.regs, c.in_base[cwp], value) < 0) {
                    Py_DECREF(value);
                    FAIL_Q();
                }
                if (depth <= 1) {
                    Py_DECREF(value);
                    sup_raise(sup_restore_depth, tw, NULL);
                    FAIL_Q();
                }
                c.call_cyc += c.restore_cost;
                target = c.below[cwp];
                if (PyByteArray_AS_STRING(c.wim)[target]) {
                    /* underflow: in-place restore; the CWP stays */
                    PyObject *r2 = PyObject_CallOneArg(c.m_underflow, tw);
                    if (r2 == NULL) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                    Py_DECREF(r2);
                }
                else {
                    if (list_set(c.kinds, cwp, S_FREE) < 0 ||
                            list_set(c.tids, cwp, Py_None) < 0 ||
                            set_ssize(c.wf, a_cwp, target) < 0 ||
                            set_ssize(tw, a_cwp, target) < 0 ||
                            add_ssize_attr(tw, a_resident, -1) < 0 ||
                            set_ssize(tw, a_depth, depth - 1) < 0) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                }
                if (get_ssize(c.wf, a_cwp, &newcwp) < 0) {
                    Py_DECREF(value);
                    FAIL_Q();
                }
                got = PyList_GET_ITEM(c.regs, c.out_base[newcwp]);
                if (c.verify && got != value) {
                    int ne = PyObject_RichCompareBool(got, value, Py_NE);
                    if (ne < 0) {
                        Py_DECREF(value);
                        FAIL_Q();
                    }
                    if (ne) {
                        Py_DECREF(value);
                        sup_raise(sup_return_corrupt, thread, tw, got,
                                  value, NULL);
                        FAIL_Q();
                    }
                }
                Py_INCREF(got);
                Py_SETREF(resume, got);
                Py_DECREF(value);
                {
                    PyObject *top;
                    TOP_GEN(top);
                    Py_SETREF(gen, top);
                }
                c.steps += 1;
                continue;
            }

            /* PYGEN_NEXT: an op was yielded */
            cmd = result;
            Py_SETREF(resume, Py_NewRef(Py_None));
            t = Py_TYPE(cmd);

            if ((PyObject *)t == TickT) {
                PyObject *cy;
                long long v;
                FETCH_Q(cy, cmd, a_cycles);
                v = PyLong_AsLongLong(cy);
                Py_DECREF(cy);
                if (v == -1 && PyErr_Occurred()) {
                    Py_DECREF(cmd);
                    FAIL_Q();
                }
                c.compute += v;
                c.progress += 1;
                Py_DECREF(cmd);
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == CallT) {
                PyObject *args, *factory, *newgen;
                Py_ssize_t cwp, target, na, ncopy, i, depth_now;
                c.progress += 1;
                FETCH_Q(args, cmd, a_args);
                if (!PyTuple_CheckExact(args)) {
                    PyObject *ta = PySequence_Tuple(args);
                    Py_DECREF(args);
                    if (ta == NULL) {
                        Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    args = ta;
                }
                na = PyTuple_GET_SIZE(args);
                ncopy = na < 8 ? na : 8;
                if (get_ssize(c.wf, a_cwp, &cwp) < 0) {
                    Py_DECREF(args); Py_DECREF(cmd);
                    FAIL_Q();
                }
                if (c.verify) {
                    Py_ssize_t ob = c.out_base[cwp];
                    for (i = 0; i < ncopy; i++) {
                        if (list_set(c.regs, ob + i,
                                     PyTuple_GET_ITEM(args, i)) < 0) {
                            Py_DECREF(args); Py_DECREF(cmd);
                            FAIL_Q();
                        }
                    }
                }
                /* WindowCPU.save, inlined */
                n_saves += 1;
                c.call_cyc += c.save_cost;
                target = c.above[cwp];
                if (PyByteArray_AS_STRING(c.wim)[target]) {
                    PyObject *r2 = PyObject_CallOneArg(c.m_overflow, tw);
                    Py_ssize_t cwp2;
                    if (r2 == NULL) {
                        Py_DECREF(args); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(r2);
                    if (get_ssize(c.wf, a_cwp, &cwp2) < 0) {
                        Py_DECREF(args); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    target = c.above[cwp2];
                    if (PyByteArray_AS_STRING(c.wim)[target]) {
                        PyObject *to = PyLong_FromSsize_t(target);
                        if (to != NULL) {
                            sup_raise(sup_overflow_invalid, to, tw, NULL);
                            Py_DECREF(to);
                        }
                        Py_DECREF(args); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                }
                if (set_ssize(c.wf, a_cwp, target) < 0 ||
                        set_ssize(tw, a_cwp, target) < 0 ||
                        add_ssize_attr(tw, a_resident, 1) < 0 ||
                        add_ssize_attr(tw, a_depth, 1) < 0 ||
                        list_set(c.kinds, target, S_FRAME) < 0 ||
                        list_set(c.tids, target, tid_obj) < 0) {
                    Py_DECREF(args); Py_DECREF(cmd);
                    FAIL_Q();
                }
                if (c.verify) {
                    Py_ssize_t ib = c.in_base[target];
                    if (get_ssize(tw, a_depth, &depth_now) < 0) {
                        Py_DECREF(args); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    for (i = 0; i < ncopy; i++) {
                        PyObject *a = PyTuple_GET_ITEM(args, i);
                        PyObject *got = PyList_GET_ITEM(c.regs, ib + i);
                        if (got != a) {
                            int ne = PyObject_RichCompareBool(got, a,
                                                              Py_NE);
                            if (ne < 0) {
                                Py_DECREF(args); Py_DECREF(cmd);
                                FAIL_Q();
                            }
                            if (ne) {
                                PyObject *io = PyLong_FromSsize_t(i);
                                if (io != NULL) {
                                    sup_raise(sup_arg_corrupt, io,
                                              thread, tw, got, a, NULL);
                                    Py_DECREF(io);
                                }
                                Py_DECREF(args); Py_DECREF(cmd);
                                FAIL_Q();
                            }
                        }
                    }
                    {
                        PyObject *sig = Py_BuildValue(
                            "(OOn)", S_sig, tid_obj, depth_now);
                        if (sig == NULL ||
                                list_set(c.regs, ib + 8, sig) < 0) {
                            Py_XDECREF(sig);
                            Py_DECREF(args); Py_DECREF(cmd);
                            FAIL_Q();
                        }
                        Py_DECREF(sig);
                    }
                }
                FETCH_Q(factory, cmd, a_factory);
                newgen = PyObject_Call(factory, args, NULL);
                Py_DECREF(factory);
                Py_DECREF(args);
                Py_DECREF(cmd);
                if (newgen == NULL)
                    FAIL_Q();
                if (PyList_Append(gen_stack, newgen) < 0) {
                    Py_DECREF(newgen);
                    FAIL_Q();
                }
                Py_SETREF(gen, newgen);
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == ReadT) {
                PyObject *strm, *sdata, *mb;
                int fire;
                FETCH_Q(strm, cmd, a_stream);
                c.steps += 1;   /* the attempt iteration */
                sdata = PyObject_GetAttr(strm, a__data);
                if (sdata == NULL || !PyByteArray_CheckExact(sdata)) {
                    if (sdata != NULL) {
                        Py_DECREF(sdata);
                        PyErr_SetString(PyExc_TypeError,
                                        "stream._data is not a bytearray");
                    }
                    Py_DECREF(strm); Py_DECREF(cmd);
                    FAIL_Q();
                }
                fire = PyByteArray_GET_SIZE(sdata) > 0;
                if (!fire) {
                    fire = get_truth(strm, a_closed);
                    if (fire < 0) {
                        Py_DECREF(sdata); Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                }
                FETCH_Q(mb, cmd, a_max_bytes);
                if (fire) {
                    Py_ssize_t take, npulled;
                    int err = 0;
                    PyObject *data;
                    take = as_take(mb, &err);
                    Py_DECREF(mb);
                    if (err) {
                        Py_DECREF(sdata); Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    data = stream_pull_c(&c, strm, sdata, take, &npulled);
                    Py_DECREF(sdata);
                    if (data == NULL) {
                        Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    if (npulled > 0) {
                        int w = waiters_nonempty(strm, a_write_waiters);
                        if (w < 0 || (w && wake_stream(
                                &c, strm, a_write_waiters) < 0)) {
                            Py_DECREF(data); Py_DECREF(strm);
                            Py_DECREF(cmd);
                            FAIL_Q();
                        }
                    }
                    c.progress += 1;
                    Py_SETREF(resume, data);
                    Py_DECREF(strm); Py_DECREF(cmd);
                    /* completion shares the next send's step */
                    continue;
                }
                Py_DECREF(sdata);
                {
                    PyObject *pend = PyTuple_Pack(3, K_read, strm, mb);
                    Py_DECREF(mb);
                    if (pend == NULL) {
                        Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    if (block_thread(&c, thread, pend) < 0) {
                        Py_DECREF(pend); Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(pend);
                }
                Py_DECREF(strm); Py_DECREF(cmd);
                Py_CLEAR(gen);
                break;      /* EXIT_BLOCKED */
            }

            if ((PyObject *)t == WriteT) {
                PyObject *strm, *data;
                Py_ssize_t newoff;
                int done;
                FETCH_Q(strm, cmd, a_stream);
                data = PyObject_GetAttr(cmd, a_data);
                if (data == NULL) {
                    Py_DECREF(strm); Py_DECREF(cmd);
                    FAIL_Q();
                }
                c.steps += 1;
                if (stream_write_step(&c, strm, data, 0,
                                      &newoff, &done) < 0) {
                    Py_DECREF(data); Py_DECREF(strm); Py_DECREF(cmd);
                    FAIL_Q();
                }
                if (done) {
                    c.progress += 1;
                    Py_DECREF(data); Py_DECREF(strm); Py_DECREF(cmd);
                    continue;
                }
                {
                    PyObject *pend = Py_BuildValue("(OOOn)", K_write,
                                                   strm, data, newoff);
                    if (pend == NULL ||
                            block_thread(&c, thread, pend) < 0) {
                        Py_XDECREF(pend);
                        Py_DECREF(data); Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(pend);
                }
                Py_DECREF(data); Py_DECREF(strm); Py_DECREF(cmd);
                Py_CLEAR(gen);
                break;      /* EXIT_BLOCKED */
            }

            if ((PyObject *)t == ReadLineT) {
                PyObject *strm, *sdata, *line = NULL;
                int r;
                FETCH_Q(strm, cmd, a_stream);
                c.steps += 1;
                sdata = PyObject_GetAttr(strm, a__data);
                if (sdata == NULL || !PyByteArray_CheckExact(sdata)) {
                    if (sdata != NULL) {
                        Py_DECREF(sdata);
                        PyErr_SetString(PyExc_TypeError,
                                        "stream._data is not a bytearray");
                    }
                    Py_DECREF(strm); Py_DECREF(cmd);
                    FAIL_Q();
                }
                r = stream_readline_c(&c, strm, sdata, &line);
                Py_DECREF(sdata);
                if (r < 0) {
                    Py_DECREF(strm); Py_DECREF(cmd);
                    FAIL_Q();
                }
                if (r == 0) {
                    PyObject *pend = PyTuple_Pack(2, K_readline, strm);
                    if (pend == NULL ||
                            block_thread(&c, thread, pend) < 0) {
                        Py_XDECREF(pend);
                        Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(pend);
                    Py_DECREF(strm); Py_DECREF(cmd);
                    Py_CLEAR(gen);
                    break;  /* EXIT_BLOCKED */
                }
                if (PyBytes_GET_SIZE(line) > 0) {
                    int w = waiters_nonempty(strm, a_write_waiters);
                    if (w < 0 || (w && wake_stream(
                            &c, strm, a_write_waiters) < 0)) {
                        Py_DECREF(line); Py_DECREF(strm); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                }
                c.progress += 1;
                Py_SETREF(resume, line);
                Py_DECREF(strm); Py_DECREF(cmd);
                continue;
            }

            if ((PyObject *)t == CloseStreamT) {
                PyObject *strm;
                FETCH_Q(strm, cmd, a_stream);
                {
                    PyObject *r2 = PyObject_CallOneArg(c.m_do_close,
                                                       strm);
                    Py_DECREF(strm);
                    if (r2 == NULL) {
                        Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(r2);
                }
                Py_DECREF(cmd);
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == YieldCPUT) {
                Py_ssize_t qn = PyObject_Size(c.queue);
                if (qn < 0) {
                    Py_DECREF(cmd);
                    FAIL_Q();
                }
                Py_DECREF(cmd);
                if (qn > 0) {
                    CALL1_Q(c.m_push_yielded, thread);
                    SETATTR_Q(kernel, a_last_suspended, thread);
                    SETATTR_Q(kernel, a_current, Py_None);
                    Py_CLEAR(gen);
                    break;  /* EXIT_YIELDED */
                }
                /* nobody else runnable: keep going, no switch, no cost */
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == FlushHintT) {
                PyObject *fl;
                FETCH_Q(fl, cmd, a_flush);
                if (PyObject_SetAttr(thread, a_flush_on_switch, fl) < 0) {
                    Py_DECREF(fl); Py_DECREF(cmd);
                    FAIL_Q();
                }
                Py_DECREF(fl);
                Py_DECREF(cmd);
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == SpawnT) {
                PyObject *factory, *sargs, *sname, *r2;
                FETCH_Q(factory, cmd, a_factory);
                sargs = PyObject_GetAttr(cmd, a_args);
                sname = sargs ? PyObject_GetAttr(cmd, a_name) : NULL;
                if (sname == NULL) {
                    Py_DECREF(factory); Py_XDECREF(sargs);
                    Py_DECREF(cmd);
                    FAIL_Q();
                }
                r2 = PyObject_CallFunctionObjArgs(c.m_spawn, factory,
                                                  sargs, sname, NULL);
                Py_DECREF(factory); Py_DECREF(sargs); Py_DECREF(sname);
                Py_DECREF(cmd);
                if (r2 == NULL)
                    FAIL_Q();
                Py_SETREF(resume, r2);
                c.progress += 1;
                c.steps += 1;
                continue;
            }

            if ((PyObject *)t == JoinT) {
                PyObject *tgt, *st;
                int done_t;
                FETCH_Q(tgt, cmd, a_thread);
                if (tgt == thread) {
                    Py_DECREF(tgt); Py_DECREF(cmd);
                    sup_raise(sup_join_self, thread, NULL);
                    FAIL_Q();
                }
                c.steps += 1;
                st = PyObject_GetAttr(tgt, a_state);
                if (st == NULL) {
                    Py_DECREF(tgt); Py_DECREF(cmd);
                    FAIL_Q();
                }
                done_t = str_eq(st, S_DONE);
                Py_DECREF(st);
                if (done_t < 0) {
                    Py_DECREF(tgt); Py_DECREF(cmd);
                    FAIL_Q();
                }
                if (done_t) {
                    PyObject *res_v = PyObject_GetAttr(tgt, a_result);
                    if (res_v == NULL) {
                        Py_DECREF(tgt); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    c.progress += 1;
                    Py_SETREF(resume, res_v);
                    Py_DECREF(tgt); Py_DECREF(cmd);
                    continue;
                }
                {
                    PyObject *pend = PyTuple_Pack(2, K_join, tgt);
                    if (pend == NULL ||
                            block_thread(&c, thread, pend) < 0) {
                        Py_XDECREF(pend);
                        Py_DECREF(tgt); Py_DECREF(cmd);
                        FAIL_Q();
                    }
                    Py_DECREF(pend);
                }
                Py_DECREF(tgt); Py_DECREF(cmd);
                Py_CLEAR(gen);
                break;      /* EXIT_BLOCKED */
            }

            /* unknown op */
            sup_raise(sup_bad_op, thread, cmd, NULL);
            Py_DECREF(cmd);
            FAIL_Q();
        }

        /* -- quantum boundary: fold per-thread statistics -- */
    q_fold:
        {
            PyObject *et = NULL, *ev = NULL, *tb = NULL;
            int fold_bad = 0;
            if (qfail)
                PyErr_Fetch(&et, &ev, &tb);
            if (resume != NULL &&
                    PyObject_SetAttr(thread, a_resume_value, resume) < 0)
                fold_bad = 1;
            if (!fold_bad && n_saves) {
                c.saves_total += n_saves;
                if (add_ssize_attr(tw, a_stat_saves, n_saves) < 0 ||
                        add_ssize_attr(thread, a_calls, n_saves) < 0)
                    fold_bad = 1;
            }
            if (!fold_bad && n_restores) {
                c.restores_total += n_restores;
                if (add_ssize_attr(tw, a_stat_restores, n_restores) < 0 ||
                        add_ssize_attr(thread, a_returns,
                                       n_restores) < 0)
                    fold_bad = 1;
            }
            if (!fold_bad && c.prof != NULL) {
                c.prof_cd -= 1;
                if (c.prof_cd <= 0) {
                    /* the profiler reads counters.total_cycles, so the
                     * cycle accumulators fold right before the check */
                    if (add_ssize_attr(c.counters, a_compute_cycles,
                                       c.compute) < 0 ||
                            add_ssize_attr(c.counters, a_call_cycles,
                                           c.call_cyc) < 0)
                        fold_bad = 1;
                    else {
                        PyObject *r2;
                        c.compute = 0;
                        c.call_cyc = 0;
                        r2 = PyObject_CallFunctionObjArgs(
                            m_prof_check, thread, Py_None, c.counters,
                            NULL);
                        if (r2 == NULL)
                            fold_bad = 1;
                        else {
                            Py_ssize_t cd;
                            Py_DECREF(r2);
                            if (get_ssize(c.prof, a__cd, &cd) < 0)
                                fold_bad = 1;
                            else
                                c.prof_cd = cd;
                        }
                    }
                }
            }
            if (qfail) {
                if (fold_bad)
                    PyErr_Clear();  /* keep the in-flight error */
                PyErr_Restore(et, ev, tb);
            }
            else if (fold_bad)
                qfail = 1;
        }
        Py_XDECREF(gen);
        Py_XDECREF(resume);
        Py_XDECREF(pending);
        Py_XDECREF(tid_obj);
        Py_XDECREF(gen_stack);
        Py_XDECREF(tw);
        Py_XDECREF(thread);
        if (qfail)
            goto fail_run;

        /* -- dispatch the next thread without leaving the frame -- */
        {
            int tr = get_truth(kernel, a__tracing);
            Py_ssize_t qn;
            PyObject *nxt, *out, *nw;
            if (tr < 0)
                goto fail_run;
            if (tr)
                goto done_run;  /* subscriber attached: compat loop */
            qn = PyObject_Size(c.queue);
            if (qn < 0)
                goto fail_run;
            if (qn == 0)
                goto done_run;  /* all done, or deadlock (outer loop) */
            {
                int ss = get_truth(c.ready, a_sample_slackness);
                if (ss < 0)
                    goto fail_run;
                if (ss) {
                    PyObject *samples = PyObject_GetAttr(
                        c.ready, a_slackness_samples);
                    PyObject *v;
                    if (samples == NULL)
                        goto fail_run;
                    v = PyLong_FromSsize_t(qn - 1);
                    if (v == NULL || PyList_Append(samples, v) < 0) {
                        Py_XDECREF(v);
                        Py_DECREF(samples);
                        goto fail_run;
                    }
                    Py_DECREF(v);
                    Py_DECREF(samples);
                }
            }
            nxt = PyObject_CallNoArgs(c.m_popleft);
            if (nxt == NULL)
                goto fail_run;
            nw = PyObject_GetAttr(nxt, a_windows);
            out = nw ? PyObject_GetAttr(kernel, a_last_suspended) : NULL;
            if (out == NULL) {
                Py_XDECREF(nw);
                Py_DECREF(nxt);
                goto fail_run;
            }
            if (out == Py_None) {
                PyObject *r2 = PyObject_CallFunctionObjArgs(
                    c.m_switch, Py_None, nw, Py_False, NULL);
                if (r2 == NULL) {
                    Py_DECREF(out); Py_DECREF(nw); Py_DECREF(nxt);
                    goto fail_run;
                }
                Py_DECREF(r2);
            }
            else {
                PyObject *ow = PyObject_GetAttr(out, a_windows);
                PyObject *fl = ow ? PyObject_GetAttr(
                    out, a_flush_on_switch) : NULL;
                PyObject *r2 = fl ? PyObject_CallFunctionObjArgs(
                    c.m_switch, ow, nw, fl, NULL) : NULL;
                Py_XDECREF(ow);
                Py_XDECREF(fl);
                if (r2 == NULL) {
                    Py_DECREF(out); Py_DECREF(nw); Py_DECREF(nxt);
                    goto fail_run;
                }
                Py_DECREF(r2);
            }
            Py_DECREF(out);
            if (PyObject_SetAttr(kernel, a_last_suspended,
                                 Py_None) < 0 ||
                    PyObject_SetAttr(kernel, a_current, nxt) < 0 ||
                    PyObject_SetAttr(nxt, a_state, S_RUNNING) < 0) {
                Py_DECREF(nw); Py_DECREF(nxt);
                goto fail_run;
            }
            {
                PyObject *gs = PyObject_GetAttr(nxt, a_gen_stack);
                if (gs == NULL || !PyList_CheckExact(gs)) {
                    if (gs != NULL) {
                        Py_DECREF(gs);
                        PyErr_SetString(PyExc_TypeError,
                                        "gen_stack is not a list");
                    }
                    Py_DECREF(nw); Py_DECREF(nxt);
                    goto fail_run;
                }
                if (PyList_GET_SIZE(gs) == 0) {
                    PyObject *r2 = PyObject_CallMethodNoArgs(
                        nxt, a_start_root);
                    if (r2 == NULL) {
                        Py_DECREF(gs); Py_DECREF(nw); Py_DECREF(nxt);
                        goto fail_run;
                    }
                    Py_DECREF(r2);
                    if (c.verify) {
                        Py_ssize_t cwp;
                        PyObject *ntid = PyObject_GetAttr(nxt, a_tid);
                        PyObject *sig = ntid ? Py_BuildValue(
                            "(OOi)", S_sig, ntid, 1) : NULL;
                        Py_XDECREF(ntid);
                        if (sig == NULL ||
                                get_ssize(c.wf, a_cwp, &cwp) < 0 ||
                                list_set(c.regs,
                                         c.in_base[cwp] + 8, sig) < 0) {
                            Py_XDECREF(sig);
                            Py_DECREF(gs); Py_DECREF(nw); Py_DECREF(nxt);
                            goto fail_run;
                        }
                        Py_DECREF(sig);
                    }
                }
                Py_DECREF(gs);
            }
            Py_DECREF(nw);
            Py_DECREF(nxt);
        }
        continue;

#undef FAIL_Q
#undef FETCH_Q
#undef CALL1_Q
#undef SETATTR_Q
#undef TOP_GEN
    }

fail_run:
    run_fail = 1;
done_run:
    /* -- run exit: fold the run-global accumulators (also on error,
     * for crash-context identity with the pure loop) -- */
    {
        PyObject *et = NULL, *ev = NULL, *tb = NULL;
        if (run_fail)
            PyErr_Fetch(&et, &ev, &tb);
        if (add_ssize_attr(kernel, a__steps, c.steps) < 0 ||
                add_ssize_attr(kernel, a__progress, c.progress) < 0 ||
                add_ssize_attr(c.counters, a_compute_cycles,
                               c.compute) < 0 ||
                add_ssize_attr(c.counters, a_call_cycles,
                               c.call_cyc) < 0 ||
                add_ssize_attr(c.counters, a_saves, c.saves_total) < 0 ||
                add_ssize_attr(c.counters, a_restores,
                               c.restores_total) < 0) {
            if (run_fail)
                PyErr_Clear();
            else
                run_fail = 1;
        }
        if (c.prof != NULL &&
                set_ssize(c.prof, a__cd, (Py_ssize_t)c.prof_cd) < 0) {
            if (run_fail)
                PyErr_Clear();
            else
                run_fail = 1;
        }
        if (run_fail && et != NULL)
            PyErr_Restore(et, ev, tb);
    }
    if (!run_fail) {
        ret = Py_None;
        Py_INCREF(ret);
    }

cleanup:
    Py_XDECREF(tmp);
    Py_XDECREF(wmap);
    Py_XDECREF(m_prof_check);
    Py_XDECREF(c.cpu); Py_XDECREF(c.wf); Py_XDECREF(c.regs);
    Py_XDECREF(c.wim); Py_XDECREF(c.kinds); Py_XDECREF(c.tids);
    Py_XDECREF(c.counters); Py_XDECREF(c.prof); Py_XDECREF(c.scheme);
    Py_XDECREF(c.m_overflow); Py_XDECREF(c.m_underflow);
    Py_XDECREF(c.m_switch); Py_XDECREF(c.m_retire);
    Py_XDECREF(c.m_push_woken); Py_XDECREF(c.m_push_yielded);
    Py_XDECREF(c.m_popleft); Py_XDECREF(c.m_qextend);
    Py_XDECREF(c.m_wake_readers); Py_XDECREF(c.m_wake_writers);
    Py_XDECREF(c.m_do_close); Py_XDECREF(c.m_block);
    Py_XDECREF(c.m_spawn);
    Py_XDECREF(c.ready); Py_XDECREF(c.queue);
    if (c.above != NULL)
        PyMem_Free(c.above);
    return ret;
#undef FETCH
}

/* ---------------------------------------------------------------------
 * machine_run(machine, budget): Machine._run_thread, compiled.
 *
 * Only entered when machine._profiler is None (the Python gate), so
 * the per-instruction profiler hook is compiled out entirely.  The
 * common straight-line opcodes run inline; save/restore/ret/retadd/
 * halt/yield (and anything unexpected) delegate to the machine's own
 * bound-handler dispatch table with the cached state written back
 * first and reloaded after.
 * ------------------------------------------------------------------ */

typedef struct {
    PyObject *machine, *thread, *counters, *wf, *regs, *gregs;
    PyObject *memory, *dispatch, *instrs, *name;
    PyObject *cc;                     /* owned cache of thread.cc */
    Py_ssize_t *in_base, *out_base;   /* one allocation */
    Py_ssize_t n_instrs;
    long long compute, instr_acc;
} MCtx;

/* Reload thread.pc into a C index.  A value that does not fit a
 * Py_ssize_t is necessarily outside [0, n_instrs); reproduce the pure
 * loop's range check on it: ``0 <= pc`` first (its TypeError
 * propagates), then the MachineFault with the full value rendered. */
static int
mload_pc(MCtx *m, Py_ssize_t *pc, int *stale)
{
    PyObject *o = PyObject_GetAttr(m->thread, a_pc);
    Py_ssize_t v;
    if (o == NULL)
        return -1;
    v = PyLong_AsSsize_t(o);
    if (v == -1 && PyErr_Occurred()) {
        int ge;
        PyErr_Clear();
        ge = PyObject_RichCompareBool(long_zero, o, Py_LE);
        if (ge >= 0)
            PyErr_Format(MachineFaultT, "%U: pc %S out of range",
                         m->name, o);
        Py_DECREF(o);
        return -1;
    }
    Py_DECREF(o);
    *pc = v;
    *stale = 0;
    return 0;
}

/* Register access through the current window, mirroring
 * repro.isa.registers.  Anything unusual (index outside 0..7, odd
 * bank) delegates to the Python functions for exact error parity. */
static PyObject *
mread_reg(MCtx *m, PyObject *bank, PyObject *idxo)
{
    Py_ssize_t idx = PyLong_AsSsize_t(idxo);
    Py_UCS4 ch;
    Py_ssize_t cwp, base;

    if (idx == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        goto delegate;
    }
    if (!PyUnicode_Check(bank) || PyUnicode_GET_LENGTH(bank) != 1 ||
            idx < 0 || idx > 7)
        goto delegate;
    ch = PyUnicode_READ_CHAR(bank, 0);
    if (ch == 'g')
        return Py_NewRef(PyList_GET_ITEM(m->gregs, idx));
    if (get_ssize(m->wf, a_cwp, &cwp) < 0)
        return NULL;
    if (ch == 'o')
        base = m->out_base[cwp];
    else if (ch == 'l')
        base = m->in_base[cwp] + 8;
    else if (ch == 'i')
        base = m->in_base[cwp];
    else
        goto delegate;
    return Py_NewRef(PyList_GET_ITEM(m->regs, base + idx));
delegate:
    return PyObject_CallFunctionObjArgs(py_read_register, m->wf, bank,
                                        idxo, NULL);
}

static int
mwrite_reg(MCtx *m, PyObject *bank, PyObject *idxo, PyObject *v)
{
    Py_ssize_t idx = PyLong_AsSsize_t(idxo);
    Py_UCS4 ch;
    Py_ssize_t cwp, base;
    PyObject *r;

    if (idx == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        goto delegate;
    }
    if (!PyUnicode_Check(bank) || PyUnicode_GET_LENGTH(bank) != 1 ||
            idx < 0 || idx > 7)
        goto delegate;
    ch = PyUnicode_READ_CHAR(bank, 0);
    if (ch == 'g') {
        if (idx == 0)
            return 0;               /* %g0 is hardwired to zero */
        return list_set(m->gregs, idx, v);
    }
    if (get_ssize(m->wf, a_cwp, &cwp) < 0)
        return -1;
    if (ch == 'o')
        base = m->out_base[cwp];
    else if (ch == 'l')
        base = m->in_base[cwp] + 8;
    else if (ch == 'i')
        base = m->in_base[cwp];
    else
        goto delegate;
    return list_set(m->regs, base + idx, v);
delegate:
    r = PyObject_CallFunctionObjArgs(py_write_register, m->wf, bank,
                                     idxo, v, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Machine._value: an immediate's value, or a register read. */
static PyObject *
m_value(MCtx *m, PyObject *operand)
{
    PyObject *kind = PyObject_GetAttr(operand, a_kind);
    PyObject *bank, *idxo, *v;
    int imm;
    if (kind == NULL)
        return NULL;
    imm = str_eq(kind, K_imm);
    Py_DECREF(kind);
    if (imm < 0)
        return NULL;
    if (imm)
        return PyObject_GetAttr(operand, a_value);
    bank = PyObject_GetAttr(operand, a_bank);
    idxo = bank ? PyObject_GetAttr(operand, a_index) : NULL;
    if (idxo == NULL) {
        Py_XDECREF(bank);
        return NULL;
    }
    v = mread_reg(m, bank, idxo);
    Py_DECREF(bank);
    Py_DECREF(idxo);
    return v;
}

/* Machine._write: a register write through the operand. */
static int
m_write(MCtx *m, PyObject *operand, PyObject *v)
{
    PyObject *bank = PyObject_GetAttr(operand, a_bank);
    PyObject *idxo = bank ? PyObject_GetAttr(operand, a_index) : NULL;
    int r;
    if (idxo == NULL) {
        Py_XDECREF(bank);
        return -1;
    }
    r = mwrite_reg(m, bank, idxo, v);
    Py_DECREF(bank);
    Py_DECREF(idxo);
    return r;
}

static binaryfunc
alu_fn(long code)
{
    switch (code) {
    case OPC_ADD: return PyNumber_Add;
    case OPC_SUB: return PyNumber_Subtract;
    case OPC_AND: return PyNumber_And;
    case OPC_OR: return PyNumber_Or;
    case OPC_XOR: return PyNumber_Xor;
    case OPC_SLL: return PyNumber_Lshift;
    case OPC_SRL: return PyNumber_Rshift;
    default: return PyNumber_Multiply;      /* OPC_SMUL */
    }
}

static int
branch_cmp_op(long code)
{
    switch (code) {
    case OPC_BE: return Py_EQ;
    case OPC_BNE: return Py_NE;
    case OPC_BG: return Py_GT;
    case OPC_BGE: return Py_GE;
    case OPC_BL: return Py_LT;
    default: return Py_LE;                  /* OPC_BLE */
    }
}

static PyObject *
fast_machine_run(PyObject *self, PyObject *args)
{
    PyObject *machine;
    long long budget;
    MCtx m;
    PyObject *ret = NULL;
    PyObject *it_instr = NULL, *it_op = NULL, *it_ops = NULL;
    PyObject *program = NULL;
    Py_ssize_t pc = 0;
    long long executed = 0;
    int pc_stale = 0, run_fail = 0;

    if (!PyArg_ParseTuple(args, "OL:machine_run", &machine, &budget))
        return NULL;
    if (ensure_init() < 0)
        return NULL;
    memset(&m, 0, sizeof(m));
    m.machine = machine;

#define MFETCH(dst, o, n) \
    do { (dst) = PyObject_GetAttr((o), (n)); \
         if ((dst) == NULL) goto mcleanup; } while (0)

    MFETCH(m.thread, machine, a_current);
    if (m.thread == Py_None) {
        PyErr_SetString(PyExc_AssertionError,
                        "machine_run with no current thread");
        goto mcleanup;
    }
    MFETCH(m.name, m.thread, a_name);
    MFETCH(program, machine, a_program);
    MFETCH(m.instrs, program, a_instructions);
    if (!PyList_CheckExact(m.instrs)) {
        PyObject *li = PySequence_List(m.instrs);
        if (li == NULL)
            goto mcleanup;
        Py_SETREF(m.instrs, li);
    }
    m.n_instrs = PyList_GET_SIZE(m.instrs);
    MFETCH(m.dispatch, machine, a__dispatch);
    MFETCH(m.counters, machine, a_counters);
    MFETCH(m.memory, machine, a_memory);
    if (!PyDict_CheckExact(m.memory) || !PyDict_CheckExact(m.dispatch)) {
        PyErr_SetString(PyExc_TypeError,
                        "machine memory/dispatch have unexpected types");
        goto mcleanup;
    }
    {
        PyObject *cpu;
        MFETCH(cpu, machine, a_cpu);
        m.wf = PyObject_GetAttr(cpu, a_wf);
        Py_DECREF(cpu);
        if (m.wf == NULL)
            goto mcleanup;
    }
    MFETCH(m.regs, m.wf, a__regs);
    MFETCH(m.gregs, m.wf, a_global_regs);
    if (!PyList_CheckExact(m.regs) || !PyList_CheckExact(m.gregs)) {
        PyErr_SetString(PyExc_TypeError,
                        "window file storage has unexpected types");
        goto mcleanup;
    }
    {
        PyObject *li = NULL, *lo = NULL;
        Py_ssize_t i, n;
        MFETCH(li, m.wf, a__in_base);
        lo = PyObject_GetAttr(m.wf, a__out_base);
        if (lo == NULL || !PyList_CheckExact(li) ||
                !PyList_CheckExact(lo)) {
            if (lo != NULL)
                PyErr_SetString(PyExc_TypeError,
                                "geometry tables have unexpected types");
            Py_DECREF(li); Py_XDECREF(lo);
            goto mcleanup;
        }
        n = PyList_GET_SIZE(li);
        m.in_base = PyMem_New(Py_ssize_t, (size_t)(2 * n));
        if (m.in_base == NULL) {
            PyErr_NoMemory();
            Py_DECREF(li); Py_DECREF(lo);
            goto mcleanup;
        }
        m.out_base = m.in_base + n;
        for (i = 0; i < n; i++) {
            m.in_base[i] = PyLong_AsSsize_t(PyList_GET_ITEM(li, i));
            m.out_base[i] = PyLong_AsSsize_t(PyList_GET_ITEM(lo, i));
        }
        Py_DECREF(li); Py_DECREF(lo);
        if (PyErr_Occurred())
            goto mcleanup;
    }
    MFETCH(m.cc, m.thread, a_cc);
    if (mload_pc(&m, &pc, &pc_stale) < 0)
        goto mfail;

#define MFAIL() do { Py_XDECREF(it_instr); Py_XDECREF(it_op); \
                     Py_XDECREF(it_ops); it_instr = it_op = it_ops = NULL; \
                     goto mfail; } while (0)
/* weird pc value: park it on the thread and resolve at the loop top
 * (budget check first, range check second -- pure-loop order) */
#define MSET_PC_OBJ(o) \
    do { if (PyObject_SetAttr(m.thread, a_pc, (o)) < 0) { \
             Py_DECREF(o); MFAIL(); } \
         Py_DECREF(o); pc_stale = 1; } while (0)

    for (;;) {
        long code = 0;
        PyObject *codeo;

        if (executed >= budget)
            break;                  /* EXIT_BUDGET */
        if (pc_stale && mload_pc(&m, &pc, &pc_stale) < 0)
            goto mfail;
        if (pc < 0 || pc >= m.n_instrs) {
            PyErr_Format(MachineFaultT, "%U: pc %zd out of range",
                         m.name, pc);
            goto mfail;
        }
        it_instr = Py_NewRef(PyList_GET_ITEM(m.instrs, pc));
        executed += 1;
        m.instr_acc += 1;
        it_op = PyObject_GetAttr(it_instr, a_op);
        if (it_op == NULL)
            MFAIL();
        codeo = PyDict_GetItemWithError(op_codes, it_op);
        if (codeo == NULL) {
            if (PyErr_Occurred())
                MFAIL();
        }
        else
            code = PyLong_AsLong(codeo);

        if (code >= OPC_ADD && code <= OPC_SMUL) {
            PyObject *a, *b, *r;
            it_ops = PyObject_GetAttr(it_instr, a_operands);
            if (it_ops == NULL)
                MFAIL();
            if (!PyTuple_CheckExact(it_ops) ||
                    PyTuple_GET_SIZE(it_ops) < 3)
                goto do_delegate;
            a = m_value(&m, PyTuple_GET_ITEM(it_ops, 0));
            if (a == NULL)
                MFAIL();
            b = m_value(&m, PyTuple_GET_ITEM(it_ops, 1));
            if (b == NULL) {
                Py_DECREF(a);
                MFAIL();
            }
            r = alu_fn(code)(a, b);
            Py_DECREF(a);
            Py_DECREF(b);
            if (r == NULL)
                MFAIL();
            if (m_write(&m, PyTuple_GET_ITEM(it_ops, 2), r) < 0) {
                Py_DECREF(r);
                MFAIL();
            }
            Py_DECREF(r);
            m.compute += 1;
            pc += 1;
        }
        else if (code >= OPC_BE && code <= OPC_BLE) {
            int taken = PyObject_RichCompareBool(m.cc, long_zero,
                                                 branch_cmp_op(code));
            if (taken < 0)
                MFAIL();
            if (taken) {
                PyObject *lbl = PyObject_GetAttr(it_instr, a_label);
                Py_ssize_t v;
                if (lbl == NULL)
                    MFAIL();
                v = PyLong_AsSsize_t(lbl);
                if (v == -1 && PyErr_Occurred()) {
                    PyErr_Clear();
                    MSET_PC_OBJ(lbl);
                }
                else {
                    Py_DECREF(lbl);
                    pc = v;
                }
            }
            else
                pc += 1;
            m.compute += 1;
        }
        else switch (code) {
        case OPC_MOV: {
            PyObject *v;
            it_ops = PyObject_GetAttr(it_instr, a_operands);
            if (it_ops == NULL)
                MFAIL();
            if (!PyTuple_CheckExact(it_ops) ||
                    PyTuple_GET_SIZE(it_ops) < 2)
                goto do_delegate;
            v = m_value(&m, PyTuple_GET_ITEM(it_ops, 0));
            if (v == NULL)
                MFAIL();
            if (m_write(&m, PyTuple_GET_ITEM(it_ops, 1), v) < 0) {
                Py_DECREF(v);
                MFAIL();
            }
            Py_DECREF(v);
            m.compute += 1;
            pc += 1;
            break;
        }
        case OPC_CMP: {
            PyObject *a, *b, *r;
            it_ops = PyObject_GetAttr(it_instr, a_operands);
            if (it_ops == NULL)
                MFAIL();
            if (!PyTuple_CheckExact(it_ops) ||
                    PyTuple_GET_SIZE(it_ops) < 2)
                goto do_delegate;
            a = m_value(&m, PyTuple_GET_ITEM(it_ops, 0));
            if (a == NULL)
                MFAIL();
            b = m_value(&m, PyTuple_GET_ITEM(it_ops, 1));
            if (b == NULL) {
                Py_DECREF(a);
                MFAIL();
            }
            r = PyNumber_Subtract(a, b);
            Py_DECREF(a);
            Py_DECREF(b);
            if (r == NULL)
                MFAIL();
            Py_SETREF(m.cc, r);
            m.compute += 1;
            pc += 1;
            break;
        }
        case OPC_BA: {
            PyObject *lbl = PyObject_GetAttr(it_instr, a_label);
            Py_ssize_t v;
            if (lbl == NULL)
                MFAIL();
            v = PyLong_AsSsize_t(lbl);
            if (v == -1 && PyErr_Occurred()) {
                PyErr_Clear();
                MSET_PC_OBJ(lbl);
            }
            else {
                Py_DECREF(lbl);
                pc = v;
            }
            m.compute += 1;
            break;
        }
        case OPC_NOP:
            m.compute += 1;
            pc += 1;
            break;
        case OPC_CALL: {
            PyObject *lbl, *pco;
            Py_ssize_t v, cwp;
            lbl = PyObject_GetAttr(it_instr, a_label);
            if (lbl == NULL)
                MFAIL();
            pco = PyLong_FromSsize_t(pc);
            if (pco == NULL) {
                Py_DECREF(lbl);
                MFAIL();
            }
            if (get_ssize(m.wf, a_cwp, &cwp) < 0 ||
                    list_set(m.regs, m.out_base[cwp] + 7, pco) < 0) {
                Py_DECREF(pco);
                Py_DECREF(lbl);
                MFAIL();
            }
            Py_DECREF(pco);
            m.compute += 1;
            v = PyLong_AsSsize_t(lbl);
            if (v == -1 && PyErr_Occurred()) {
                PyErr_Clear();
                MSET_PC_OBJ(lbl);
            }
            else {
                Py_DECREF(lbl);
                pc = v;
            }
            break;
        }
        case OPC_RETL: {
            PyObject *sum;
            Py_ssize_t v, cwp;
            if (get_ssize(m.wf, a_cwp, &cwp) < 0)
                MFAIL();
            sum = PyNumber_Add(
                PyList_GET_ITEM(m.regs, m.out_base[cwp] + 7), long_one);
            if (sum == NULL)
                MFAIL();
            v = PyLong_AsSsize_t(sum);
            if (v == -1 && PyErr_Occurred()) {
                PyErr_Clear();
                MSET_PC_OBJ(sum);
            }
            else {
                Py_DECREF(sum);
                pc = v;
            }
            m.compute += 1;
            break;
        }
        case OPC_LD: {
            PyObject *mem, *base, *off, *addr, *v;
            it_ops = PyObject_GetAttr(it_instr, a_operands);
            if (it_ops == NULL)
                MFAIL();
            if (!PyTuple_CheckExact(it_ops) ||
                    PyTuple_GET_SIZE(it_ops) < 2)
                goto do_delegate;
            mem = PyTuple_GET_ITEM(it_ops, 0);
            {
                PyObject *bank = PyObject_GetAttr(mem, a_bank);
                PyObject *idxo = bank ? PyObject_GetAttr(mem, a_index)
                                      : NULL;
                base = idxo ? mread_reg(&m, bank, idxo) : NULL;
                Py_XDECREF(bank);
                Py_XDECREF(idxo);
            }
            if (base == NULL)
                MFAIL();
            off = PyObject_GetAttr(mem, a_offset);
            addr = off ? PyNumber_Add(base, off) : NULL;
            Py_DECREF(base);
            Py_XDECREF(off);
            if (addr == NULL)
                MFAIL();
            v = PyDict_GetItemWithError(m.memory, addr);
            Py_DECREF(addr);
            if (v == NULL) {
                if (PyErr_Occurred())
                    MFAIL();
                v = long_zero;
            }
            Py_INCREF(v);
            if (m_write(&m, PyTuple_GET_ITEM(it_ops, 1), v) < 0) {
                Py_DECREF(v);
                MFAIL();
            }
            Py_DECREF(v);
            m.compute += 2;
            pc += 1;
            break;
        }
        case OPC_ST: {
            PyObject *mem, *base, *off, *addr, *v;
            it_ops = PyObject_GetAttr(it_instr, a_operands);
            if (it_ops == NULL)
                MFAIL();
            if (!PyTuple_CheckExact(it_ops) ||
                    PyTuple_GET_SIZE(it_ops) < 2)
                goto do_delegate;
            mem = PyTuple_GET_ITEM(it_ops, 1);
            {
                PyObject *bank = PyObject_GetAttr(mem, a_bank);
                PyObject *idxo = bank ? PyObject_GetAttr(mem, a_index)
                                      : NULL;
                base = idxo ? mread_reg(&m, bank, idxo) : NULL;
                Py_XDECREF(bank);
                Py_XDECREF(idxo);
            }
            if (base == NULL)
                MFAIL();
            off = PyObject_GetAttr(mem, a_offset);
            addr = off ? PyNumber_Add(base, off) : NULL;
            Py_DECREF(base);
            Py_XDECREF(off);
            if (addr == NULL)
                MFAIL();
            v = m_value(&m, PyTuple_GET_ITEM(it_ops, 0));
            if (v == NULL) {
                Py_DECREF(addr);
                MFAIL();
            }
            if (PyDict_SetItem(m.memory, addr, v) < 0) {
                Py_DECREF(addr);
                Py_DECREF(v);
                MFAIL();
            }
            Py_DECREF(addr);
            Py_DECREF(v);
            m.compute += 3;
            pc += 1;
            break;
        }
        default:
            goto do_delegate;
        }
        Py_CLEAR(it_instr);
        Py_CLEAR(it_op);
        Py_CLEAR(it_ops);
        continue;

    do_delegate:
        /* save/restore/ret/retadd/halt/yield (or anything odd): write
         * the cached state back, run the machine's own bound handler,
         * reload what it may have touched */
        {
            PyObject *handler, *reason;
            int truthy;
            if ((!pc_stale && set_ssize(m.thread, a_pc, pc) < 0) ||
                    PyObject_SetAttr(m.thread, a_cc, m.cc) < 0 ||
                    add_ssize_attr(m.thread, a_instructions,
                                   m.instr_acc) < 0 ||
                    add_ssize_attr(m.counters, a_compute_cycles,
                                   m.compute) < 0)
                MFAIL();
            m.instr_acc = 0;
            m.compute = 0;
            handler = PyDict_GetItemWithError(m.dispatch, it_op);
            if (handler == NULL) {
                if (!PyErr_Occurred())
                    PyErr_Format(MachineFaultT, "unknown op %R", it_op);
                MFAIL();
            }
            Py_INCREF(handler);
            reason = PyObject_CallFunctionObjArgs(handler, m.thread,
                                                  it_instr, NULL);
            Py_DECREF(handler);
            if (reason == NULL)
                MFAIL();
            truthy = PyObject_IsTrue(reason);
            if (truthy < 0) {
                Py_DECREF(reason);
                MFAIL();
            }
            if (truthy) {
                /* batch-exit event (EXIT_DONE / EXIT_YIELDED): the
                 * handler owns the state now; nothing left to fold */
                Py_CLEAR(it_instr);
                Py_CLEAR(it_op);
                Py_CLEAR(it_ops);
                ret = Py_BuildValue("(LN)", executed, reason);
                if (ret == NULL)
                    Py_DECREF(reason);
                goto mcleanup;
            }
            Py_DECREF(reason);
            pc_stale = 1;
            {
                PyObject *ncc = PyObject_GetAttr(m.thread, a_cc);
                if (ncc == NULL)
                    MFAIL();
                Py_SETREF(m.cc, ncc);
            }
        }
        Py_CLEAR(it_instr);
        Py_CLEAR(it_op);
        Py_CLEAR(it_ops);
    }

    /* budget exhausted mid-batch */
    if ((!pc_stale && set_ssize(m.thread, a_pc, pc) < 0) ||
            PyObject_SetAttr(m.thread, a_cc, m.cc) < 0 ||
            add_ssize_attr(m.thread, a_instructions, m.instr_acc) < 0 ||
            add_ssize_attr(m.counters, a_compute_cycles, m.compute) < 0)
        goto mfail;
    ret = Py_BuildValue("(LO)", executed, EXIT_BUDGET_O);
    goto mcleanup;

mfail:
    run_fail = 1;
    {
        /* fold the cached state under the in-flight exception so the
         * crash context matches the pure loop's */
        PyObject *et, *ev, *tb;
        PyErr_Fetch(&et, &ev, &tb);
        if (m.thread != NULL && m.thread != Py_None && m.cc != NULL) {
            if (!pc_stale)
                (void)set_ssize(m.thread, a_pc, pc);
            (void)PyObject_SetAttr(m.thread, a_cc, m.cc);
            (void)add_ssize_attr(m.thread, a_instructions, m.instr_acc);
            (void)add_ssize_attr(m.counters, a_compute_cycles, m.compute);
            PyErr_Clear();
        }
        PyErr_Restore(et, ev, tb);
    }

mcleanup:
    (void)run_fail;
    Py_XDECREF(it_instr);
    Py_XDECREF(it_op);
    Py_XDECREF(it_ops);
    Py_XDECREF(program);
    if (m.thread != NULL && m.thread != Py_None) {
        Py_DECREF(m.thread);
    }
    else
        Py_XDECREF(m.thread);
    Py_XDECREF(m.name); Py_XDECREF(m.instrs); Py_XDECREF(m.dispatch);
    Py_XDECREF(m.counters); Py_XDECREF(m.memory); Py_XDECREF(m.wf);
    Py_XDECREF(m.regs); Py_XDECREF(m.gregs); Py_XDECREF(m.cc);
    if (m.in_base != NULL)
        PyMem_Free(m.in_base);
    return ret;
#undef MFETCH
#undef MFAIL
#undef MSET_PC_OBJ
}

/* ---------------------------------------------------------------------
 * Module.
 * ------------------------------------------------------------------ */

static PyMethodDef fast_methods[] = {
    {"run_batched", (PyCFunction)fast_run_batched, METH_O,
     "Compiled Kernel._run_batched; bit-identical to the pure loop."},
    {"machine_run", fast_machine_run, METH_VARARGS,
     "Compiled Machine._run_thread; returns (executed, reason)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fast_module = {
    PyModuleDef_HEAD_INIT,
    "repro._fast",
    "Compiled execution backend: the batched kernel dispatch loop and\n"
    "the ISA fetch loop, transcribed from the pure-Python hot paths\n"
    "and pinned bit-identical by the differential harness.",
    -1,
    fast_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__fast(void)
{
    return PyModule_Create(&fast_module);
}
