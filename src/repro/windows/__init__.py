"""SPARC-style cyclic overlapping register-window substrate.

Terminology follows the paper exactly (§2):

* window ``i-1`` is *above* window ``i``; window ``i+1`` is *below* it;
* ``save`` decrements the current window pointer (CWP), ``restore``
  increments it;
* "a window" means the in+local register pair; the out registers of
  window ``w`` are physically the in registers of the window above
  (the callee side).
"""

from repro.windows.backing_store import BackingStore, Frame
from repro.windows.cpu import WindowCPU
from repro.windows.errors import (
    WindowError,
    WindowGeometryError,
    WindowIntegrityError,
)
from repro.windows.occupancy import (
    FRAME,
    FREE,
    RESERVED,
    WindowMap,
)
from repro.windows.thread_windows import ThreadWindows
from repro.windows.window_file import WindowFile

__all__ = [
    "BackingStore",
    "Frame",
    "WindowCPU",
    "WindowError",
    "WindowGeometryError",
    "WindowIntegrityError",
    "FRAME",
    "FREE",
    "RESERVED",
    "WindowMap",
    "ThreadWindows",
    "WindowFile",
]
