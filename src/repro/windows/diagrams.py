"""Executable versions of the paper's explanatory figures.

The paper explains the algorithm with window-file snapshots (Figures
3, 4 and 8).  This module *reenacts* those scenarios on the live
simulator and renders before/after snapshots, so the explanatory
figures are regenerated from real state rather than drawn by hand —
and the test suite asserts the facts each caption claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import make_scheme
from repro.windows.cpu import WindowCPU
from repro.windows.occupancy import FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows


def render_window_file(cpu, label_threads: bool = True) -> str:
    """One-line-per-window snapshot of the file, CWP marked."""
    wf = cpu.wf
    wmap = cpu.map
    lines = []
    for w in range(wf.n_windows):
        kind, tid = wmap.entry(w)
        if kind == FREE:
            cell = "(free)"
        elif kind == RESERVED:
            cell = ("reserved" if tid is None
                    else "PRW of thread %d" % tid)
        else:
            cell = ("frame" if not label_threads
                    else "frame of thread %d" % tid)
        marks = []
        if w == wf.cwp:
            marks.append("CWP")
        if wf.is_invalid(w):
            marks.append("WIM")
        lines.append("W%-2d %-22s %s" % (w, cell, " ".join(marks)))
    return "\n".join(lines)


@dataclass
class Reenactment:
    """A before/after pair plus the facts the paper's caption states."""

    title: str
    before: str
    after: str
    facts: Dict[str, object]

    def __str__(self) -> str:
        return ("%s\n\n(a) Before the trap.\n%s\n\n"
                "(b) After the trap.\n%s\n\nFacts: %s"
                % (self.title, self.before, self.after, self.facts))


def _single_thread_machine(scheme_name: str, n_windows: int = 6):
    cpu = WindowCPU(n_windows)
    scheme = make_scheme(scheme_name, cpu)
    tw = ThreadWindows(0)
    scheme.register(tw)
    scheme.context_switch(None, tw)
    return cpu, scheme, tw


def _grow(cpu, tw, depth: int) -> None:
    while tw.depth < depth:
        cpu.save(tw)


def reenact_figure3(n_windows: int = 6) -> Reenactment:
    """Figure 3: an overflow trap under the basic algorithm.

    The thread fills every usable window; one more ``save`` traps, the
    stack-bottom window is saved to memory and becomes the new
    reserved window.
    """
    cpu, scheme, tw = _single_thread_machine("NS", n_windows)
    _grow(cpu, tw, n_windows - 1)  # every non-reserved window occupied
    before = render_window_file(cpu)
    old_bottom = tw.bottom
    old_reserved = scheme.reserved
    cpu.save(tw)  # overflow
    after = render_window_file(cpu)
    return Reenactment(
        "Figure 3: overflow trap (basic algorithm, %d windows)"
        % n_windows,
        before, after,
        {
            "spilled_window": old_bottom,
            "new_reserved": scheme.reserved,
            "reserved_is_old_bottom": scheme.reserved == old_bottom,
            "save_claimed_old_reserved": tw.cwp == old_reserved,
            "frames_in_memory": len(tw.store),
            "overflow_traps": cpu.counters.overflow_traps,
        })


def reenact_figure4(n_windows: int = 6) -> Reenactment:
    """Figure 4: an underflow trap under the basic algorithm.

    Returning past the resident frames traps; the missing window is
    restored *below* the CWP (physical motion) and the reserved window
    moves one further down.
    """
    cpu, scheme, tw = _single_thread_machine("NS", n_windows)
    _grow(cpu, tw, n_windows + 1)  # two frames spilled
    while tw.resident > 1:
        cpu.restore(tw)
    before = render_window_file(cpu)
    cwp_before = cpu.wf.cwp
    old_reserved = scheme.reserved
    cpu.restore(tw)  # underflow
    after = render_window_file(cpu)
    return Reenactment(
        "Figure 4: underflow trap (basic algorithm, %d windows)"
        % n_windows,
        before, after,
        {
            "cwp_before": cwp_before,
            "cwp_after": cpu.wf.cwp,
            "cwp_moved_below": cpu.wf.cwp == cpu.wf.below(cwp_before),
            "restored_into_old_reserved": cpu.wf.cwp == old_reserved,
            "new_reserved": scheme.reserved,
            "reserved_moved_down":
                scheme.reserved == cpu.wf.below(cpu.wf.cwp),
            "underflow_traps": cpu.counters.underflow_traps,
        })


def reenact_figure8(scheme_name: str = "SP",
                    n_windows: int = 6) -> Reenactment:
    """Figure 8: the proposed in-place underflow restore (§3.2).

    The missing caller frame is restored into the *same* physical
    window the callee used, after the callee's ins (return values) are
    copied to its outs.  The CWP does not move and nothing spills.
    """
    cpu, scheme, tw = _single_thread_machine(scheme_name, n_windows)
    _grow(cpu, tw, n_windows + 2)
    while tw.resident > 1:
        cpu.restore(tw)
    # Put a recognisable return value in the callee's %i0.
    cpu.write_in(0, 4242)
    before = render_window_file(cpu)
    cwp_before = cpu.wf.cwp
    spilled_before = cpu.counters.windows_spilled
    cpu.restore(tw)  # in-place underflow
    after = render_window_file(cpu)
    return Reenactment(
        "Figure 8: in-place underflow restore (%s scheme, %d windows)"
        % (scheme_name, n_windows),
        before, after,
        {
            "cwp_before": cwp_before,
            "cwp_after": cpu.wf.cwp,
            "cwp_did_not_move": cpu.wf.cwp == cwp_before,
            "return_value_in_outs": cpu.read_out(0) == 4242,
            "windows_spilled_by_trap":
                cpu.counters.windows_spilled - spilled_before,
            "underflow_traps": cpu.counters.underflow_traps,
        })


def reenact_all() -> List[Reenactment]:
    return [reenact_figure3(), reenact_figure4(),
            reenact_figure8("SP"), reenact_figure8("SNP")]
