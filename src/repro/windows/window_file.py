"""The physical register file: cyclic overlapping windows, CWP and WIM.

The file holds ``n_windows`` windows.  Each window owns eight *in* and
eight *local* registers.  The eight *out* registers of window ``w`` are
physically the *in* registers of the window above (``w - 1`` mod n),
because a ``save`` moves the CWP one window up and the caller's outs
become the callee's ins.  Eight *global* registers are shared by all
windows.

The Window Invalid Mask (WIM) is a set of window indices; executing
``save`` into an invalid window raises an overflow trap, executing
``restore`` into one raises an underflow trap.  Trap *handling* lives in
the management schemes (:mod:`repro.core`); this module only detects
the conditions.

Storage layout (the simulator fast path): all in/local banks live in
one flat Python list of ``n_windows * 16`` slots — window ``w``'s ins
at ``[16w, 16w+8)``, its locals at ``[16w+8, 16w+16)`` — so window
spills, restores and the underflow shuffle are single slice copies and
register access is one flat index instead of two list hops.  Cyclic
geometry (``above``/``below``/``distance_above``) is served from tables
precomputed at construction; the WIM is a bytearray bitmap with a
set-valued ``wim`` property kept for introspection (crash bundles,
invariant checks, ``repr``).  Registers hold arbitrary Python objects,
not just ints — the kernel stores signature tuples in them — which is
why the flat storage is a list rather than an ``array``.

``ins_of``/``locals_of``/``outs_of`` return cached live
:class:`RegisterBank` views over the flat storage, preserving the
aliasing contract ``outs_of(w) is ins_of(above(w))``.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError

REGS_PER_BANK = 8

#: Smallest window file that supports the basic algorithm (one reserved
#: window plus at least two frames so overflow never targets the CWP).
MIN_WINDOWS = 3

_BANK_RANGE = range(REGS_PER_BANK)


class RegisterBank:
    """Live eight-register view over one bank of the flat register file.

    Mutations through the view hit the underlying storage, so the
    physical in/out overlap stays visible: the object returned by
    ``outs_of(w)`` *is* the object returned by ``ins_of(above(w))``.
    """

    __slots__ = ("_regs", "_base")

    def __init__(self, regs: list, base: int):
        self._regs = regs
        self._base = base

    def __len__(self) -> int:
        return REGS_PER_BANK

    def __getitem__(self, i):
        if type(i) is int:
            if i < 0:
                i += REGS_PER_BANK
            if not 0 <= i < REGS_PER_BANK:
                raise IndexError("register index %d out of range" % i)
            return self._regs[self._base + i]
        if i.start is None and i.stop is None and i.step is None:
            off = self._base
            return self._regs[off:off + REGS_PER_BANK]
        base = self._regs
        off = self._base
        return [base[off + j] for j in _BANK_RANGE[i]]

    def __setitem__(self, i, value) -> None:
        if type(i) is int:
            if i < 0:
                i += REGS_PER_BANK
            if not 0 <= i < REGS_PER_BANK:
                raise IndexError("register index %d out of range" % i)
            self._regs[self._base + i] = value
            return
        if i.start is None and i.stop is None and i.step is None:
            values = value if type(value) is list else list(value)
            if len(values) != REGS_PER_BANK:
                raise ValueError(
                    "cannot assign %d values to %d registers"
                    % (len(values), REGS_PER_BANK))
            off = self._base
            self._regs[off:off + REGS_PER_BANK] = values
            return
        idx = _BANK_RANGE[i]
        values = list(value)
        if len(values) != len(idx):
            raise ValueError(
                "cannot assign %d values to %d registers"
                % (len(values), len(idx)))
        regs = self._regs
        off = self._base
        for j, v in zip(idx, values):
            regs[off + j] = v

    def __iter__(self):
        base = self._base
        return iter(self._regs[base:base + REGS_PER_BANK])

    def __eq__(self, other) -> bool:
        if isinstance(other, RegisterBank):
            return (self._regs is other._regs
                    and self._base == other._base) or \
                list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        base = self._base
        return "RegisterBank(%r)" % (self._regs[base:base + REGS_PER_BANK],)


class WindowFile:
    """Cyclic register-window file with in/out/local overlap."""

    __slots__ = ("n_windows", "global_regs", "cwp", "_regs", "_wim",
                 "_above", "_below", "_dist", "_in_base", "_out_base",
                 "_in_views", "_local_views", "_frame_pool",
                 "_all_invalid", "_all_valid", "_ring2")

    def __init__(self, n_windows: int):
        if n_windows < MIN_WINDOWS:
            raise WindowGeometryError(
                "need at least %d windows, got %d" % (MIN_WINDOWS, n_windows))
        self.n_windows = n_windows
        n = n_windows
        self._regs: List[int] = [0] * (n * 2 * REGS_PER_BANK)
        self.global_regs: List[int] = [0] * REGS_PER_BANK
        self.cwp = 0
        # -- precomputed cyclic geometry --
        self._above = [(w - 1) % n for w in range(n)]
        self._below = [(w + 1) % n for w in range(n)]
        self._dist = [[(s - e) % n for e in range(n)] for s in range(n)]
        self._in_base = [w * 2 * REGS_PER_BANK for w in range(n)]
        self._out_base = [self._in_base[self._above[w]] for w in range(n)]
        self._ring2 = list(range(n)) * 2
        self._in_views = [RegisterBank(self._regs, self._in_base[w])
                          for w in range(n)]
        self._local_views = [
            RegisterBank(self._regs, self._in_base[w] + REGS_PER_BANK)
            for w in range(n)]
        # -- WIM bitmap (index w nonzero == window w invalid) --
        self._wim = bytearray(n)
        self._all_invalid = bytes([1]) * n
        self._all_valid = bytes(n)
        self._frame_pool: List[Frame] = []

    # -- cyclic geometry ------------------------------------------------

    def above(self, w: int) -> int:
        """The window above ``w`` (the callee / stack-growth direction)."""
        return self._above[w]

    def below(self, w: int) -> int:
        """The window below ``w`` (the caller direction)."""
        return self._below[w]

    def distance_above(self, start: int, end: int) -> int:
        """How many steps *above* ``start`` window ``end`` lies (0..n-1)."""
        return self._dist[start][end]

    def windows_from(self, top: int, count: int) -> List[int]:
        """``count`` windows starting at ``top`` going downward (below)."""
        if 0 <= top < self.n_windows and count <= self.n_windows:
            return self._ring2[top:top + count]
        return [(top + i) % self.n_windows for i in range(count)]

    # -- WIM -------------------------------------------------------------

    @property
    def wim(self) -> Set[int]:
        """The invalid windows as a set (introspection; not the hot path)."""
        return {w for w, bit in enumerate(self._wim) if bit}

    @wim.setter
    def wim(self, invalid: Iterable[int]) -> None:
        self.set_wim(invalid)

    def set_wim(self, invalid: Iterable[int]) -> None:
        wim = set(invalid)
        for w in wim:
            self._check_index(w)
        bitmap = self._wim
        for w in range(self.n_windows):
            bitmap[w] = 0
        for w in wim:
            bitmap[w] = 1

    def set_wim_except(self, valid: Iterable[int]) -> None:
        """Mark every window invalid except ``valid`` (scheme fast path:
        the WIM rebuild after boundary placement, without set algebra)."""
        bitmap = self._wim
        bitmap[:] = self._all_invalid
        for w in valid:
            bitmap[w] = 0

    def set_wim_only(self, w: int) -> None:
        """Mark exactly window ``w`` invalid (the NS scheme's single
        reserved window), everything else valid."""
        self._check_index(w)
        bitmap = self._wim
        bitmap[:] = self._all_valid
        bitmap[w] = 1

    def mark_invalid(self, w: int) -> None:
        self._check_index(w)
        self._wim[w] = 1

    def mark_valid(self, w: int) -> None:
        if 0 <= w < self.n_windows:
            self._wim[w] = 0

    def is_invalid(self, w: int) -> bool:
        return self._wim[w] != 0

    # -- register access (current window) --------------------------------

    def read_in(self, i: int):
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("in register %d out of range" % i)
        return self._regs[self._in_base[self.cwp] + i]

    def write_in(self, i: int, value) -> None:
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("in register %d out of range" % i)
        self._regs[self._in_base[self.cwp] + i] = value

    def read_local(self, i: int):
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("local register %d out of range" % i)
        return self._regs[self._in_base[self.cwp] + REGS_PER_BANK + i]

    def write_local(self, i: int, value) -> None:
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("local register %d out of range" % i)
        self._regs[self._in_base[self.cwp] + REGS_PER_BANK + i] = value

    def read_out(self, i: int):
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("out register %d out of range" % i)
        return self._regs[self._out_base[self.cwp] + i]

    def write_out(self, i: int, value) -> None:
        if not 0 <= i < REGS_PER_BANK:
            raise IndexError("out register %d out of range" % i)
        self._regs[self._out_base[self.cwp] + i] = value

    def read_global(self, i: int):
        return self.global_regs[i]

    def write_global(self, i: int, value) -> None:
        if i == 0:
            return  # %g0 is hardwired to zero
        self.global_regs[i] = value

    # -- whole-window access (trap handlers, context switches) -----------

    def ins_of(self, w: int) -> RegisterBank:
        self._check_index(w)
        return self._in_views[w]

    def locals_of(self, w: int) -> RegisterBank:
        self._check_index(w)
        return self._local_views[w]

    def outs_of(self, w: int) -> RegisterBank:
        """Physical storage of window ``w``'s out registers."""
        return self._in_views[self._above[w]]

    def capture(self, w: int, depth: int = -1) -> Frame:
        """Copy window ``w``'s in+local registers into a memory frame.

        Frames come from a free pool when one is available (see
        :meth:`release_frame`); the register data is always copied."""
        self._check_index(w)
        regs = self._regs
        base = self._in_base[w]
        mid = base + REGS_PER_BANK
        pool = self._frame_pool
        if pool:
            frame = pool.pop()
            frame.ins[:] = regs[base:mid]
            frame.local_regs[:] = regs[mid:mid + REGS_PER_BANK]
            frame.depth = depth
            return frame
        return Frame(regs[base:mid], regs[mid:mid + REGS_PER_BANK], depth)

    def release_frame(self, frame: Frame) -> None:
        """Return a dead frame's buffers to the pool for the next
        :meth:`capture`.  Only call once the frame can no longer be
        reached (popped from a backing store and loaded back)."""
        if len(frame.ins) == REGS_PER_BANK and \
                len(frame.local_regs) == REGS_PER_BANK:
            self._frame_pool.append(frame)

    def load(self, w: int, frame: Frame) -> None:
        """Write a memory frame back into window ``w``'s in+local registers."""
        self._check_index(w)
        regs = self._regs
        base = self._in_base[w]
        mid = base + REGS_PER_BANK
        regs[base:mid] = frame.ins
        regs[mid:mid + REGS_PER_BANK] = frame.local_regs

    def copy_ins_to_outs(self, w: int) -> None:
        """The in-place underflow-restore register shuffle (paper §3.2).

        The callee's in registers (return values and frame linkage,
        shared with the caller's outs) are copied into the callee's out
        registers so they survive the caller's frame being restored on
        top of the callee's window.
        """
        regs = self._regs
        src = self._in_base[w]
        dst = self._out_base[w]
        regs[dst:dst + REGS_PER_BANK] = regs[src:src + REGS_PER_BANK]

    def clear_window(self, w: int, fill: int = 0) -> None:
        """Scrub a window (used when handing a window to a fresh frame)."""
        base = self._in_base[w]
        self._regs[base:base + 2 * REGS_PER_BANK] = [fill] * (
            2 * REGS_PER_BANK)

    def _check_index(self, w: int) -> None:
        if not 0 <= w < self.n_windows:
            raise WindowGeometryError(
                "window index %r out of range [0, %d)" % (w, self.n_windows))

    def __repr__(self) -> str:
        return "WindowFile(n=%d, cwp=%d, wim=%s)" % (
            self.n_windows, self.cwp, sorted(self.wim))
