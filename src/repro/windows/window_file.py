"""The physical register file: cyclic overlapping windows, CWP and WIM.

The file holds ``n_windows`` windows.  Each window owns eight *in* and
eight *local* registers.  The eight *out* registers of window ``w`` are
physically the *in* registers of the window above (``w - 1`` mod n),
because a ``save`` moves the CWP one window up and the caller's outs
become the callee's ins.  Eight *global* registers are shared by all
windows.

The Window Invalid Mask (WIM) is a set of window indices; executing
``save`` into an invalid window raises an overflow trap, executing
``restore`` into one raises an underflow trap.  Trap *handling* lives in
the management schemes (:mod:`repro.core`); this module only detects
the conditions.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError

REGS_PER_BANK = 8

#: Smallest window file that supports the basic algorithm (one reserved
#: window plus at least two frames so overflow never targets the CWP).
MIN_WINDOWS = 3


class WindowFile:
    """Cyclic register-window file with in/out/local overlap."""

    def __init__(self, n_windows: int):
        if n_windows < MIN_WINDOWS:
            raise WindowGeometryError(
                "need at least %d windows, got %d" % (MIN_WINDOWS, n_windows))
        self.n_windows = n_windows
        self._ins: List[List[int]] = [
            [0] * REGS_PER_BANK for _ in range(n_windows)]
        self._locals: List[List[int]] = [
            [0] * REGS_PER_BANK for _ in range(n_windows)]
        self.global_regs: List[int] = [0] * REGS_PER_BANK
        self.cwp = 0
        self.wim: Set[int] = set()

    # -- cyclic geometry ------------------------------------------------

    def above(self, w: int) -> int:
        """The window above ``w`` (the callee / stack-growth direction)."""
        return (w - 1) % self.n_windows

    def below(self, w: int) -> int:
        """The window below ``w`` (the caller direction)."""
        return (w + 1) % self.n_windows

    def distance_above(self, start: int, end: int) -> int:
        """How many steps *above* ``start`` window ``end`` lies (0..n-1)."""
        return (start - end) % self.n_windows

    def windows_from(self, top: int, count: int) -> List[int]:
        """``count`` windows starting at ``top`` going downward (below)."""
        return [(top + i) % self.n_windows for i in range(count)]

    # -- WIM -------------------------------------------------------------

    def set_wim(self, invalid: Iterable[int]) -> None:
        wim = set(invalid)
        for w in wim:
            self._check_index(w)
        self.wim = wim

    def mark_invalid(self, w: int) -> None:
        self._check_index(w)
        self.wim.add(w)

    def mark_valid(self, w: int) -> None:
        self.wim.discard(w)

    def is_invalid(self, w: int) -> bool:
        return w in self.wim

    # -- register access (current window) --------------------------------

    def read_in(self, i: int) -> int:
        return self._ins[self.cwp][i]

    def write_in(self, i: int, value: int) -> None:
        self._ins[self.cwp][i] = value

    def read_local(self, i: int) -> int:
        return self._locals[self.cwp][i]

    def write_local(self, i: int, value: int) -> None:
        self._locals[self.cwp][i] = value

    def read_out(self, i: int) -> int:
        return self._ins[self.above(self.cwp)][i]

    def write_out(self, i: int, value: int) -> None:
        self._ins[self.above(self.cwp)][i] = value

    def read_global(self, i: int) -> int:
        return self.global_regs[i]

    def write_global(self, i: int, value: int) -> None:
        if i == 0:
            return  # %g0 is hardwired to zero
        self.global_regs[i] = value

    # -- whole-window access (trap handlers, context switches) -----------

    def ins_of(self, w: int) -> List[int]:
        self._check_index(w)
        return self._ins[w]

    def locals_of(self, w: int) -> List[int]:
        self._check_index(w)
        return self._locals[w]

    def outs_of(self, w: int) -> List[int]:
        """Physical storage of window ``w``'s out registers."""
        return self._ins[self.above(w)]

    def capture(self, w: int, depth: int = -1) -> Frame:
        """Copy window ``w``'s in+local registers into a memory frame."""
        return Frame(list(self._ins[w]), list(self._locals[w]), depth)

    def load(self, w: int, frame: Frame) -> None:
        """Write a memory frame back into window ``w``'s in+local registers."""
        self._check_index(w)
        self._ins[w][:] = frame.ins
        self._locals[w][:] = frame.local_regs

    def copy_ins_to_outs(self, w: int) -> None:
        """The in-place underflow-restore register shuffle (paper §3.2).

        The callee's in registers (return values and frame linkage,
        shared with the caller's outs) are copied into the callee's out
        registers so they survive the caller's frame being restored on
        top of the callee's window.
        """
        self._ins[self.above(w)][:] = self._ins[w]

    def clear_window(self, w: int, fill: int = 0) -> None:
        """Scrub a window (used when handing a window to a fresh frame)."""
        self._ins[w][:] = [fill] * REGS_PER_BANK
        self._locals[w][:] = [fill] * REGS_PER_BANK

    def _check_index(self, w: int) -> None:
        if not 0 <= w < self.n_windows:
            raise WindowGeometryError(
                "window index %r out of range [0, %d)" % (w, self.n_windows))

    def __repr__(self) -> str:
        return "WindowFile(n=%d, cwp=%d, wim=%s)" % (
            self.n_windows, self.cwp, sorted(self.wim))
