"""Reference register-window file: the straightforward nested layout.

This is the pre-optimization :class:`WindowFile` storage model — one
``List[List[int]]`` per bank, cyclic geometry via ``%`` arithmetic and
the WIM as a plain set — retained as an executable specification.  The
property suite (``tests/windows/test_window_file_reference.py``) drives
it and the flat fast-path file through identical randomized operation
sequences (including WIM wraparound across window 0) and requires
bit-identical observable state after every step.

It is deliberately slow and obvious; never use it on a hot path.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError
from repro.windows.window_file import MIN_WINDOWS, REGS_PER_BANK


class ReferenceWindowFile:
    """Nested-list register-window file, semantics-only."""

    def __init__(self, n_windows: int):
        if n_windows < MIN_WINDOWS:
            raise WindowGeometryError(
                "need at least %d windows, got %d" % (MIN_WINDOWS, n_windows))
        self.n_windows = n_windows
        self._ins: List[List[int]] = [[0] * REGS_PER_BANK
                                      for _ in range(n_windows)]
        self._locals: List[List[int]] = [[0] * REGS_PER_BANK
                                         for _ in range(n_windows)]
        self.global_regs: List[int] = [0] * REGS_PER_BANK
        self.cwp = 0
        self._wim: Set[int] = set()

    # -- cyclic geometry ------------------------------------------------

    def above(self, w: int) -> int:
        return (w - 1) % self.n_windows

    def below(self, w: int) -> int:
        return (w + 1) % self.n_windows

    def distance_above(self, start: int, end: int) -> int:
        return (start - end) % self.n_windows

    def windows_from(self, top: int, count: int) -> List[int]:
        return [(top + i) % self.n_windows for i in range(count)]

    # -- WIM -------------------------------------------------------------

    @property
    def wim(self) -> Set[int]:
        return set(self._wim)

    def set_wim(self, invalid: Iterable[int]) -> None:
        wim = set(invalid)
        for w in wim:
            self._check_index(w)
        self._wim = wim

    def set_wim_except(self, valid: Iterable[int]) -> None:
        self._wim = set(range(self.n_windows)) - set(valid)

    def set_wim_only(self, w: int) -> None:
        self._check_index(w)
        self._wim = {w}

    def mark_invalid(self, w: int) -> None:
        self._check_index(w)
        self._wim.add(w)

    def mark_valid(self, w: int) -> None:
        self._wim.discard(w)

    def is_invalid(self, w: int) -> bool:
        return w in self._wim

    # -- register access (current window) --------------------------------

    def read_in(self, i: int):
        return self._ins[self.cwp][i]

    def write_in(self, i: int, value) -> None:
        self._ins[self.cwp][i] = value

    def read_local(self, i: int):
        return self._locals[self.cwp][i]

    def write_local(self, i: int, value) -> None:
        self._locals[self.cwp][i] = value

    def read_out(self, i: int):
        # outs of w are physically the ins of the window above
        return self._ins[self.above(self.cwp)][i]

    def write_out(self, i: int, value) -> None:
        self._ins[self.above(self.cwp)][i] = value

    def read_global(self, i: int):
        return self.global_regs[i]

    def write_global(self, i: int, value) -> None:
        if i == 0:
            return
        self.global_regs[i] = value

    # -- whole-window access ---------------------------------------------

    def ins_of(self, w: int) -> List[int]:
        self._check_index(w)
        return self._ins[w]

    def locals_of(self, w: int) -> List[int]:
        self._check_index(w)
        return self._locals[w]

    def outs_of(self, w: int) -> List[int]:
        return self._ins[self.above(w)]

    def capture(self, w: int, depth: int = -1) -> Frame:
        self._check_index(w)
        return Frame(list(self._ins[w]), list(self._locals[w]), depth)

    def release_frame(self, frame: Frame) -> None:
        pass  # no pooling in the reference model

    def load(self, w: int, frame: Frame) -> None:
        self._check_index(w)
        self._ins[w][:] = frame.ins
        self._locals[w][:] = frame.local_regs

    def copy_ins_to_outs(self, w: int) -> None:
        self._ins[self.above(w)][:] = self._ins[w]

    def clear_window(self, w: int, fill: int = 0) -> None:
        self._ins[w][:] = [fill] * REGS_PER_BANK
        self._locals[w][:] = [fill] * REGS_PER_BANK

    def _check_index(self, w: int) -> None:
        if not 0 <= w < self.n_windows:
            raise WindowGeometryError(
                "window index %r out of range [0, %d)" % (w, self.n_windows))

    def __repr__(self) -> str:
        return "ReferenceWindowFile(n=%d, cwp=%d, wim=%s)" % (
            self.n_windows, self.cwp, sorted(self._wim))
