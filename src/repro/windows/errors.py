"""Exceptions raised by the window substrate."""

from repro.errors import ReproError


class WindowError(ReproError):
    """Base class for register-window simulation errors."""


class WindowGeometryError(WindowError):
    """The cyclic window geometry was violated (bad CWP/WIM/occupancy)."""


class WindowIntegrityError(WindowError):
    """Register contents were corrupted across a spill/restore cycle."""
