"""Per-thread memory backing store for spilled register windows.

Each thread owns a stack of frames kept in (simulated) memory: the part
of its procedure-call stack that does not fit in the physical window
file.  Frames are ordered outermost first; the innermost stored frame
is the one an underflow trap restores next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.windows.errors import WindowIntegrityError


@dataclass(slots=True)
class Frame:
    """Snapshot of one window: eight in and eight local registers.

    ``depth`` records the logical call depth the frame belongs to; it is
    used purely for integrity checking (a frame restored at the wrong
    depth indicates a window-management bug).
    """

    ins: List[int]
    local_regs: List[int]
    depth: int = -1


@dataclass(slots=True)
class BackingStore:
    """Memory stack of spilled frames for one thread (outermost first)."""

    frames: List[Frame] = field(default_factory=list)

    def push(self, frame: Frame) -> None:
        """Spill: the outermost *resident* frame becomes the innermost
        *stored* frame."""
        if self.frames and frame.depth >= 0 and self.frames[-1].depth >= 0:
            if frame.depth != self.frames[-1].depth + 1:
                raise WindowIntegrityError(
                    "non-contiguous spill: depth %d pushed over depth %d"
                    % (frame.depth, self.frames[-1].depth))
        self.frames.append(frame)

    def pop(self) -> Frame:
        """Restore: hand back the innermost stored frame."""
        if not self.frames:
            raise WindowIntegrityError("underflow from an empty backing store")
        return self.frames.pop()

    def peek(self) -> Frame:
        if not self.frames:
            raise WindowIntegrityError("peek at an empty backing store")
        return self.frames[-1]

    def __len__(self) -> int:
        return len(self.frames)

    def __bool__(self) -> bool:
        return bool(self.frames)
