"""Per-thread window-residency state.

A thread's procedure-call stack is split between physical windows and
its memory backing store.  The resident frames always form a cyclically
contiguous run of windows ``[cwp .. bottom]`` (top of stack at ``cwp``,
oldest resident frame at ``bottom``); everything deeper lives in
``store``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.windows.backing_store import BackingStore
from repro.windows.errors import WindowGeometryError


class ThreadWindows:
    """Window-related state of one thread, as the monitor tracks it."""

    __slots__ = ("tid", "cwp", "bottom", "resident", "depth", "prw",
                 "store", "saved_outs", "started",
                 "stat_saves", "stat_restores", "stat_switches")

    def __init__(self, tid: int):
        self.tid = tid
        #: physical window of the top-of-stack frame (None: no windows)
        self.cwp: Optional[int] = None
        #: physical window of the oldest resident frame
        self.bottom: Optional[int] = None
        #: number of resident frames
        self.resident = 0
        #: logical call depth (resident frames + stored frames)
        self.depth = 0
        #: private reserved window (SP scheme only)
        self.prw: Optional[int] = None
        #: spilled frames, outermost first
        self.store = BackingStore()
        #: out registers of the top frame, saved at switch-out (NS/SNP)
        self.saved_outs: Optional[List[int]] = None
        #: has this thread ever been dispatched?
        self.started = False
        #: batched per-thread tallies, bumped inline on the hot path and
        #: folded into :meth:`repro.metrics.counters.Counters.fold_thread_stats`
        #: at run end / crash capture
        self.stat_saves = 0
        self.stat_restores = 0
        self.stat_switches = 0

    @property
    def has_windows(self) -> bool:
        return self.resident > 0

    def resident_windows(self, n_windows: int) -> List[int]:
        """Physical windows of the resident frames, top first."""
        if self.resident == 0:
            return []
        assert self.cwp is not None
        return [(self.cwp + i) % n_windows for i in range(self.resident)]

    def stored_frames(self) -> int:
        return len(self.store)

    def drop_windows(self) -> None:
        """Forget all residency (after a flush or full spill)."""
        self.cwp = None
        self.bottom = None
        self.resident = 0
        self.prw = None

    def shrink_bottom(self, n_windows: int) -> int:
        """The bottom frame was spilled; return the old bottom window."""
        if self.resident == 0 or self.bottom is None:
            raise WindowGeometryError(
                "thread %d has no bottom window to spill" % self.tid)
        old = self.bottom
        self.resident -= 1
        if self.resident == 0:
            self.cwp = None
            self.bottom = None
        else:
            self.bottom = (old - 1) % n_windows
        return old

    def check_consistency(self, n_windows: int) -> None:
        """Internal invariants; raised violations indicate simulator bugs."""
        if self.resident == 0:
            if self.cwp is not None or self.bottom is not None:
                raise WindowGeometryError(
                    "thread %d: zero resident frames but cwp/bottom set"
                    % self.tid)
        else:
            if self.cwp is None or self.bottom is None:
                raise WindowGeometryError(
                    "thread %d: resident frames but no cwp/bottom" % self.tid)
            span = (self.bottom - self.cwp) % n_windows + 1
            if span != self.resident:
                raise WindowGeometryError(
                    "thread %d: resident=%d but cwp..bottom spans %d"
                    % (self.tid, self.resident, span))
        if self.depth != self.resident + len(self.store):
            raise WindowGeometryError(
                "thread %d: depth %d != resident %d + stored %d"
                % (self.tid, self.depth, self.resident, len(self.store)))

    def __repr__(self) -> str:
        return ("ThreadWindows(tid=%d, cwp=%s, bottom=%s, resident=%d, "
                "stored=%d, depth=%d, prw=%s)" % (
                    self.tid, self.cwp, self.bottom, self.resident,
                    len(self.store), self.depth, self.prw))
