"""Software bookkeeping of who owns each physical window.

The multi-tasking monitor of the paper keeps, per physical window,
whether it is free, holds a live frame of some thread, or is reserved
(the single global reserved window of the NS/SNP schemes, or a
thread's private reserved window in the SP scheme).  This map is what
the context-switch and trap-handler code of :mod:`repro.core` consults;
the hardware-visible state (registers, CWP, WIM) lives in
:class:`repro.windows.window_file.WindowFile`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.windows.errors import WindowGeometryError

FREE = "free"
FRAME = "frame"
RESERVED = "reserved"


class WindowMap:
    """Ownership map over the physical windows."""

    __slots__ = ("n_windows", "_kind", "_tid")

    def __init__(self, n_windows: int):
        self.n_windows = n_windows
        self._kind: List[str] = [FREE] * n_windows
        self._tid: List[Optional[int]] = [None] * n_windows

    # -- mutation ---------------------------------------------------------

    def set_free(self, w: int) -> None:
        self._kind[w] = FREE
        self._tid[w] = None

    def set_frame(self, w: int, tid: int) -> None:
        self._kind[w] = FRAME
        self._tid[w] = tid

    def set_reserved(self, w: int, tid: Optional[int] = None) -> None:
        self._kind[w] = RESERVED
        self._tid[w] = tid

    # -- queries ----------------------------------------------------------

    def kind(self, w: int) -> str:
        return self._kind[w]

    def tid(self, w: int) -> Optional[int]:
        return self._tid[w]

    def entry(self, w: int) -> Tuple[str, Optional[int]]:
        return self._kind[w], self._tid[w]

    def is_free(self, w: int) -> bool:
        return self._kind[w] == FREE

    def is_frame(self, w: int) -> bool:
        return self._kind[w] == FRAME

    def is_reserved(self, w: int) -> bool:
        return self._kind[w] == RESERVED

    def frame_tid(self, w: int) -> int:
        if self._kind[w] != FRAME:
            raise WindowGeometryError(
                "window %d holds no frame (%s)" % (w, self._kind[w]))
        tid = self._tid[w]
        assert tid is not None
        return tid

    def free_count(self) -> int:
        return self._kind.count(FREE)

    def frames_of(self, tid: int) -> List[int]:
        return [w for w in range(self.n_windows)
                if self._kind[w] == FRAME and self._tid[w] == tid]

    def reserved_windows(self) -> List[int]:
        return [w for w in range(self.n_windows)
                if self._kind[w] == RESERVED]

    def free_run_above(self, w: int) -> int:
        """Length of the run of FREE windows strictly above window ``w``."""
        count = 0
        cur = (w - 1) % self.n_windows
        while cur != w and self._kind[cur] == FREE:
            count += 1
            cur = (cur - 1) % self.n_windows
        return count

    def find_free(self) -> Optional[int]:
        """Index of some free window, or None (used by the free-search
        allocation policy of paper §4.2)."""
        for w in range(self.n_windows):
            if self._kind[w] == FREE:
                return w
        return None

    def __repr__(self) -> str:
        cells = []
        for w in range(self.n_windows):
            kind, tid = self._kind[w], self._tid[w]
            if kind == FREE:
                cells.append(".")
            elif kind == FRAME:
                cells.append("T%s" % tid)
            else:
                cells.append("R" if tid is None else "P%s" % tid)
        return "WindowMap[%s]" % " ".join(cells)
