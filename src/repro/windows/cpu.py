"""The simulated processor: executes ``save``/``restore``, raising window
traps to the attached management scheme.

This class plays the role of the paper's "register window emulator"
(§6.1): ordinary computation runs at full (host) speed and only the
window-related operations are interpreted, with a cycle counter charged
from the cost model.  The number of physical windows is a constructor
parameter, which is how the evaluation sweeps 4–32 windows.

``save``/``restore`` are the hottest functions of the whole simulator
(one per procedure call/return of every simulated thread), so they are
written against the flat register file directly: geometry comes from
the precomputed ``_above``/``_below`` tables, the trap check reads the
WIM bitmap, counter updates are inline scalar bumps plus a batched
per-thread tally (folded at run end), trace emits hide behind the
cached ``_tracing`` boolean, and fault hooks are per-site attributes
that stay ``None`` unless a fault plan actually targets the site
(:meth:`repro.faults.inject.FaultInjector.attach`).
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.counters import Counters
from repro.metrics.events import EventBus
from repro.windows.errors import WindowGeometryError
from repro.windows.occupancy import FRAME, FREE, WindowMap
from repro.windows.thread_windows import ThreadWindows
from repro.windows.window_file import WindowFile


class WindowCPU:
    """Window file + occupancy map + counters, with scheme trap hooks."""

    def __init__(self, n_windows: int, cost_model=None,
                 counters: Optional[Counters] = None):
        from repro.core.costs import CostModel  # local: avoid import cycle

        self.wf = WindowFile(n_windows)
        self.map = WindowMap(n_windows)
        self.counters = counters if counters is not None else Counters()
        self.cost = cost_model if cost_model is not None else CostModel()
        #: structured trace-event bus, stamped with this CPU's cycle
        #: clock; disabled (no subscribers) by default
        counters = self.counters
        self.events = EventBus(clock=lambda: counters.total_cycles)
        #: mirror of ``events.active`` (see EventBus.watch_activity)
        self._tracing = False
        self.events.watch_activity(self._set_tracing)
        self.scheme = None
        #: the thread currently executing on this CPU
        self.current: Optional[ThreadWindows] = None
        #: optional :class:`repro.faults.inject.FaultInjector`; kept for
        #: trap-action consumption and crash bundles.  The per-site
        #: hooks below are bound by ``FaultInjector.attach`` only when
        #: the plan has specs for that site, so an unfaulted run (and a
        #: run faulted elsewhere) pays one ``is None`` check per site.
        self.faults = None
        self._fault_save = None
        self._fault_restore = None
        self._fault_store = None
        #: per-instruction costs, cached off the (frozen) cost model
        self._save_instr_cost = self.cost.save_instr
        self._restore_instr_cost = self.cost.restore_instr

    def _set_tracing(self, active: bool) -> None:
        self._tracing = active

    @property
    def n_windows(self) -> int:
        return self.wf.n_windows

    def bind_scheme(self, scheme) -> None:
        if self.scheme is not None and self.scheme is not scheme:
            raise WindowGeometryError("a scheme is already bound to this CPU")
        self.scheme = scheme

    # -- the two window instructions --------------------------------------

    def save(self, tw: ThreadWindows) -> None:
        """Execute a ``save``: enter a new window for a procedure call.

        May raise a (simulated) window overflow trap, handled by the
        bound scheme, whose postcondition is that the target window is
        valid and free.
        """
        if self.current is not tw or tw.cwp != self.wf.cwp:
            self._check_running(tw)
        wf = self.wf
        if self._fault_save is not None:
            self._fault_save(self, tw)
        counters = self.counters
        counters.saves += 1
        counters.call_cycles += self._save_instr_cost
        tw.stat_saves += 1
        target = wf._above[wf.cwp]
        if wf._wim[target]:
            faults = self.faults
            action = (faults.take_trap_action(tw)
                      if faults is not None else None)
            if action != "drop":
                self.scheme.handle_overflow(tw)
                if action == "dup":
                    self.scheme.handle_overflow(tw)
                target = wf._above[wf.cwp]
                if wf._wim[target]:
                    raise WindowGeometryError(
                        "overflow handler left target window %d invalid"
                        % target, window=target, thread=tw.tid)
            # a dropped trap falls through: the save runs straight into
            # the invalid window, exactly the hardware failure mode
        wf.cwp = target
        tw.cwp = target
        tw.resident += 1
        tw.depth += 1
        wmap = self.map
        wmap._kind[target] = FRAME
        wmap._tid[target] = tw.tid
        if self._tracing:
            self.events.emit("save", tid=tw.tid, window=target,
                             depth=tw.depth)

    def restore(self, tw: ThreadWindows) -> bool:
        """Execute a ``restore``: return to the caller's window.

        May raise a (simulated) window underflow trap.  Returns True if
        the trap handler performed an in-place restore (the CWP did not
        physically move) — callers never need this, but tests do.
        """
        if self.current is not tw or tw.cwp != self.wf.cwp:
            self._check_running(tw)
        if tw.depth <= 1:
            raise WindowGeometryError(
                "thread %d executed restore at depth %d" % (tw.tid, tw.depth))
        if self._fault_restore is not None:
            self._fault_restore(self, tw)
        wf = self.wf
        counters = self.counters
        counters.restores += 1
        counters.call_cycles += self._restore_instr_cost
        tw.stat_restores += 1
        target = wf._below[wf.cwp]
        if wf._wim[target]:
            self.scheme.handle_underflow(tw)
            if self._tracing:
                self.events.emit("restore", tid=tw.tid, window=wf.cwp,
                                 depth=tw.depth, inplace=True)
            return True
        # Plain restore: the callee's window is vacated.
        freed = wf.cwp
        wmap = self.map
        wmap._kind[freed] = FREE
        wmap._tid[freed] = None
        wf.cwp = target
        tw.cwp = target
        tw.resident -= 1
        tw.depth -= 1
        if self._tracing:
            self.events.emit("restore", tid=tw.tid, window=target,
                             depth=tw.depth, freed=freed, inplace=False)
        return False

    # -- register accessors (current window) ------------------------------

    def write_local(self, i: int, value) -> None:
        self.wf.write_local(i, value)

    def read_local(self, i: int):
        return self.wf.read_local(i)

    def write_in(self, i: int, value) -> None:
        self.wf.write_in(i, value)

    def read_in(self, i: int):
        return self.wf.read_in(i)

    def write_out(self, i: int, value) -> None:
        self.wf.write_out(i, value)

    def read_out(self, i: int):
        return self.wf.read_out(i)

    def tick(self, cycles: int) -> None:
        """Charge ordinary computation cycles."""
        self.counters.compute_cycles += cycles

    def _check_running(self, tw: ThreadWindows) -> None:
        if self.scheme is None:
            raise WindowGeometryError("no scheme bound to the CPU")
        if self.current is not tw:
            raise WindowGeometryError(
                "thread %d is not the running thread" % tw.tid)
        if tw.cwp != self.wf.cwp:
            raise WindowGeometryError(
                "thread %d cwp desynchronised (%s != %s)"
                % (tw.tid, tw.cwp, self.wf.cwp))
