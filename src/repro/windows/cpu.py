"""The simulated processor: executes ``save``/``restore``, raising window
traps to the attached management scheme.

This class plays the role of the paper's "register window emulator"
(§6.1): ordinary computation runs at full (host) speed and only the
window-related operations are interpreted, with a cycle counter charged
from the cost model.  The number of physical windows is a constructor
parameter, which is how the evaluation sweeps 4–32 windows.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.counters import Counters
from repro.metrics.events import EventBus
from repro.windows.errors import WindowGeometryError
from repro.windows.occupancy import WindowMap
from repro.windows.thread_windows import ThreadWindows
from repro.windows.window_file import WindowFile


class WindowCPU:
    """Window file + occupancy map + counters, with scheme trap hooks."""

    def __init__(self, n_windows: int, cost_model=None,
                 counters: Optional[Counters] = None):
        from repro.core.costs import CostModel  # local: avoid import cycle

        self.wf = WindowFile(n_windows)
        self.map = WindowMap(n_windows)
        self.counters = counters if counters is not None else Counters()
        self.cost = cost_model if cost_model is not None else CostModel()
        #: structured trace-event bus, stamped with this CPU's cycle
        #: clock; disabled (no subscribers) by default
        counters = self.counters
        self.events = EventBus(clock=lambda: counters.total_cycles)
        self.scheme = None
        #: the thread currently executing on this CPU
        self.current: Optional[ThreadWindows] = None
        #: optional :class:`repro.faults.inject.FaultInjector`; its
        #: hooks fire inside save/restore and the scheme's store paths
        self.faults = None

    @property
    def n_windows(self) -> int:
        return self.wf.n_windows

    def bind_scheme(self, scheme) -> None:
        if self.scheme is not None and self.scheme is not scheme:
            raise WindowGeometryError("a scheme is already bound to this CPU")
        self.scheme = scheme

    # -- the two window instructions --------------------------------------

    def save(self, tw: ThreadWindows) -> None:
        """Execute a ``save``: enter a new window for a procedure call.

        May raise a (simulated) window overflow trap, handled by the
        bound scheme, whose postcondition is that the target window is
        valid and free.
        """
        self._check_running(tw)
        wf = self.wf
        faults = self.faults
        if faults is not None:
            faults.on_save(self, tw)
        self.counters.record_save(tw.tid)
        self.counters.record_call_cycles(self.cost.save_instr)
        target = wf.above(wf.cwp)
        if wf.is_invalid(target):
            action = (faults.take_trap_action(tw)
                      if faults is not None else None)
            if action != "drop":
                self.scheme.handle_overflow(tw)
                if action == "dup":
                    self.scheme.handle_overflow(tw)
                target = wf.above(wf.cwp)
                if wf.is_invalid(target):
                    raise WindowGeometryError(
                        "overflow handler left target window %d invalid"
                        % target, window=target, thread=tw.tid)
            # a dropped trap falls through: the save runs straight into
            # the invalid window, exactly the hardware failure mode
        wf.cwp = target
        tw.cwp = target
        tw.resident += 1
        tw.depth += 1
        self.map.set_frame(target, tw.tid)
        if self.events.active:
            self.events.emit("save", tid=tw.tid, window=target,
                             depth=tw.depth)

    def restore(self, tw: ThreadWindows) -> bool:
        """Execute a ``restore``: return to the caller's window.

        May raise a (simulated) window underflow trap.  Returns True if
        the trap handler performed an in-place restore (the CWP did not
        physically move) — callers never need this, but tests do.
        """
        self._check_running(tw)
        if tw.depth <= 1:
            raise WindowGeometryError(
                "thread %d executed restore at depth %d" % (tw.tid, tw.depth))
        if self.faults is not None:
            self.faults.on_restore(self, tw)
        wf = self.wf
        self.counters.record_restore(tw.tid)
        self.counters.record_call_cycles(self.cost.restore_instr)
        target = wf.below(wf.cwp)
        if wf.is_invalid(target):
            self.scheme.handle_underflow(tw)
            if self.events.active:
                self.events.emit("restore", tid=tw.tid, window=wf.cwp,
                                 depth=tw.depth, inplace=True)
            return True
        # Plain restore: the callee's window is vacated.
        freed = wf.cwp
        self.map.set_free(freed)
        wf.cwp = target
        tw.cwp = target
        tw.resident -= 1
        tw.depth -= 1
        if self.events.active:
            self.events.emit("restore", tid=tw.tid, window=target,
                             depth=tw.depth, freed=freed, inplace=False)
        return False

    # -- register accessors (current window) ------------------------------

    def write_local(self, i: int, value) -> None:
        self.wf.write_local(i, value)

    def read_local(self, i: int):
        return self.wf.read_local(i)

    def write_in(self, i: int, value) -> None:
        self.wf.write_in(i, value)

    def read_in(self, i: int):
        return self.wf.read_in(i)

    def write_out(self, i: int, value) -> None:
        self.wf.write_out(i, value)

    def read_out(self, i: int):
        return self.wf.read_out(i)

    def tick(self, cycles: int) -> None:
        """Charge ordinary computation cycles."""
        self.counters.record_compute(cycles)

    def _check_running(self, tw: ThreadWindows) -> None:
        if self.scheme is None:
            raise WindowGeometryError("no scheme bound to the CPU")
        if self.current is not tw:
            raise WindowGeometryError(
                "thread %d is not the running thread" % tw.tid)
        if tw.cwp != self.wf.cwp:
            raise WindowGeometryError(
                "thread %d cwp desynchronised (%s != %s)"
                % (tw.tid, tw.cwp, self.wf.cwp))
