"""Delta-debugging crash-bundle minimization: shrink a failing bundle
to its essence.

A replayable crash bundle (PR 3) embeds the *entire* fault plan and
workload that produced a failure — far more than the failure needs.
Following the binary trace-simplification idea of El-Zawawy & Alanazi
(see PAPERS.md), :func:`minimize_bundle` reduces a bundle along two
axes, verifying every candidate by deterministic replay:

1. **The fault plan.**  Classic ddmin (binary reduction with
   complement testing) over the ``FaultSpec`` list finds a minimal
   subset that still reproduces; each surviving spec's firing step
   (``at``) is then binary-shrunk toward 1 and its payload (``arg``)
   simplified.
2. **The workload schedule.**  Each workload's registered shrinkable
   parameters (thread counts, stream sizes, iteration budgets — see
   :mod:`repro.faults.workloads`) are binary-shrunk toward their
   floors, plus the watchdog stall budget when one is armed.

A candidate *reproduces* when its run raises the same error class
with the same context shape (same context keys, same failing thread)
as the original — exact step/cycle values necessarily move as the
schedule shrinks.  Every candidate run is capped by a step budget so
a shrink that un-crashes a livelock cannot spin forever.

The result is written as a crash-bundle v2 whose ``minimization``
section carries provenance: the original bundle's hash, the reduction
log, and candidate/replay counts.  The minimized bundle is itself a
first-class bundle: ``python -m repro.faults replay`` verifies it
bit-for-bit (the provenance section is excluded from replay identity).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.faults.bundle import (
    bundle_to_json,
    load_bundle,
    replay_bundle,
    strip_provenance,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.workloads import Shrink, get_workload, run_workload
from repro.ioutil import atomic_write_text

#: step-budget multiplier for candidate runs (vs the original crash)
TRIAL_BUDGET_SLACK = 4
#: floor for the candidate step budget, so tiny bundles still leave
#: room for a shrunk-but-slower schedule to reach the failure
MIN_TRIAL_BUDGET = 50_000


class MinimizeError(ReproError):
    """The bundle cannot be minimized (typically: it does not
    reproduce its own failure to begin with)."""


Signature = Tuple[str, Tuple[str, ...], Optional[str]]


def failure_signature(error_type: str,
                      context: Dict[str, Any]) -> Signature:
    """The identity a candidate must match to count as reproducing:
    error class + context *shape* + the failing thread.

    Values like ``step``/``cycle`` shift as the schedule shrinks, so
    only the key set is compared — except ``thread``, whose value is
    part of the diagnosis ("which thread's frame got corrupted")."""
    return (error_type, tuple(sorted(context)),
            context.get("thread"))


# ---------------------------------------------------------------------------
# generic reducers


def ddmin(items: Sequence, test: Callable[[List], bool]) -> List:
    """Zeller's ddmin: a minimal failing subset of ``items``.

    ``test(subset)`` returns True when the subset still fails.  The
    input is assumed failing; the result is 1-minimal with respect to
    chunk removal."""
    items = list(items)
    n = 2
    while len(items) >= 2:
        size = (len(items) + n - 1) // n
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        reduced = False
        for i, chunk in enumerate(chunks):
            if test(chunk):
                items, n, reduced = chunk, 2, True
                break
        if not reduced:
            for i in range(len(chunks)):
                complement = [x for j, c in enumerate(chunks)
                              if j != i for x in c]
                if complement and test(complement):
                    items = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    if len(items) == 1 and test([]):
        return []
    return items


def shrink_int(value: int, floor: int,
               test: Callable[[int], bool]) -> int:
    """Binary-shrink an integer toward ``floor`` (monotone heuristic:
    the smallest reproducing value in [floor, value])."""
    if value <= floor:
        return value
    lo, hi = floor, value  # hi is known to reproduce
    while lo < hi:
        mid = (lo + hi) // 2
        if test(mid):
            hi = mid
        else:
            lo = mid + 1
    return hi


def shrink_float(value: float, floor: float,
                 test: Callable[[float], bool],
                 iterations: int = 8) -> float:
    """Binary-shrink a float toward ``floor`` (rounded to 4 places so
    the minimized config stays readable)."""
    if value <= floor:
        return value
    if test(round(floor, 4)):
        return round(floor, 4)
    lo, hi = floor, value
    for __ in range(iterations):
        mid = round((lo + hi) / 2, 4)
        if mid <= lo or mid >= hi:
            break
        if test(mid):
            hi = mid
        else:
            lo = mid
    return hi


# ---------------------------------------------------------------------------
# the engine


@dataclass
class MinimizeResult:
    """Outcome of one minimization: the artifact plus its provenance."""

    path: Path
    bundle: Dict[str, Any]
    original_specs: int
    final_specs: int
    original_steps: int
    final_steps: int
    candidates: int
    reproductions: int
    verified: bool
    log: List[str] = field(default_factory=list)

    @property
    def error_type(self) -> str:
        return self.bundle["error"]["type"]

    def summary(self) -> str:
        return ("%s: %d -> %d spec(s), %d -> %d steps "
                "(%d candidates, %d reproduced)"
                % (self.error_type, self.original_specs,
                   self.final_specs, self.original_steps,
                   self.final_steps, self.candidates,
                   self.reproductions))


class _Minimizer:
    def __init__(self, config: Dict[str, Any], plan: FaultPlan,
                 target: Signature, trial_budget: int):
        self.config = config
        self.plan = plan
        self.target = target
        self.trial_budget = trial_budget
        self.candidates = 0
        self.reproductions = 0
        self.log: List[str] = []

    # -- one candidate run --------------------------------------------------

    def attempt(self, config: Dict[str, Any],
                specs: Tuple[FaultSpec, ...]) -> bool:
        """Run a candidate; True when the original failure reproduces."""
        plan = FaultPlan(seed=self.plan.seed, specs=tuple(specs))
        injector = FaultInjector(plan) if plan.specs else None
        self.candidates += 1
        try:
            run_workload(config, faults=injector,
                         trial_budget=self.trial_budget)
        except ReproError as exc:
            if failure_signature(type(exc).__name__,
                                 exc.context) == self.target:
                self.reproductions += 1
                return True
            return False
        return False

    # -- axis 1: the fault plan ---------------------------------------------

    def reduce_plan(self) -> None:
        specs = list(self.plan.specs)
        if specs:
            before = len(specs)
            kept = ddmin(specs,
                         lambda subset: self.attempt(self.config,
                                                     tuple(subset)))
            if len(kept) != before:
                self.log.append("plan: %d -> %d spec(s) via ddmin"
                                % (before, len(kept)))
            specs = kept
        for i, spec in enumerate(specs):
            specs[i] = self._shrink_spec(specs, i, spec)
        self.plan = FaultPlan(seed=self.plan.seed, specs=tuple(specs))

    def _shrink_spec(self, specs: List[FaultSpec], i: int,
                     spec: FaultSpec) -> FaultSpec:
        def with_spec(candidate: FaultSpec) -> bool:
            trial = list(specs)
            trial[i] = candidate
            return self.attempt(self.config, tuple(trial))

        # firing step: binary-shrink `at` toward the first site visit
        best_at = shrink_int(spec.at, 1,
                             lambda at: with_spec(
                                 FaultSpec(spec.kind, at, spec.arg)))
        if best_at != spec.at:
            self.log.append("spec %s: at %d -> %d"
                            % (spec.kind, spec.at, best_at))
            spec = FaultSpec(spec.kind, best_at, spec.arg)
        # payload: an RNG-drawn arg (None) is the simplest description,
        # then 0
        for arg in (None, 0):
            if spec.arg == arg:
                break
            candidate = FaultSpec(spec.kind, spec.at, arg)
            if with_spec(candidate):
                self.log.append("spec %s: arg %r -> %r"
                                % (spec.kind, spec.arg, arg))
                spec = candidate
                break
        specs[i] = spec
        return spec

    # -- axis 2: the workload schedule --------------------------------------

    def reduce_workload(self) -> None:
        workload = get_workload(str(self.config.get("workload")))
        for shrink in workload.shrinkable():
            self._shrink_param(shrink)

    def _shrink_param(self, shrink: Shrink) -> None:
        key = shrink.key
        if key not in self.config:
            return
        value = self.config[key]

        def with_value(candidate) -> bool:
            trial = dict(self.config)
            trial[key] = candidate
            return self.attempt(trial, self.plan.specs)

        if shrink.kind == "flag":
            if value != shrink.floor and with_value(shrink.floor):
                best = shrink.floor
            else:
                best = value
        elif shrink.kind == "float":
            best = shrink_float(float(value), float(shrink.floor),
                                with_value)
        else:
            current = int(value)
            if current <= 0:  # disarmed knob (e.g. watchdog=0)
                return
            best = shrink_int(current, int(shrink.floor), with_value)
        if best != value:
            self.log.append("workload: %s %s -> %s" % (key, value, best))
            self.config[key] = best


def minimize_bundle(path, out_dir=None,
                    trial_budget: Optional[int] = None,
                    verify: bool = True) -> MinimizeResult:
    """Delta-debug a failing bundle; returns the minimized artifact.

    The minimized bundle lands in ``out_dir`` (default: alongside the
    original) as ``crash-<type>-<digest>.min.json``, where the digest
    covers the replay-identity content — so ``replay`` of the minimized
    bundle writes the matching ``crash-<type>-<digest>.json``.

    Raises :class:`MinimizeError` when the original bundle does not
    reproduce its recorded failure (nothing to minimize), and
    propagates any non-``ReproError`` a candidate run raises (a
    candidate exposing a *new* bug must not be silently eaten).
    """
    path = Path(path)
    bundle = load_bundle(path)
    original_text = path.read_text()
    original_digest = hashlib.sha256(
        original_text.encode("utf-8")).hexdigest()
    config = dict(bundle["config"])
    plan = (FaultPlan.from_payload(bundle["fault_plan"])
            if bundle.get("fault_plan") else FaultPlan())
    target = failure_signature(bundle["error"]["type"],
                               bundle["error"].get("context", {}))
    original_steps = int(bundle.get("steps", 0))
    if trial_budget is None:
        trial_budget = max(MIN_TRIAL_BUDGET,
                           TRIAL_BUDGET_SLACK * original_steps)

    engine = _Minimizer(config, plan, target, trial_budget)
    if not engine.attempt(config, plan.specs):
        raise MinimizeError(
            "bundle does not reproduce its recorded failure; nothing "
            "to minimize", bundle=path.name,
            error=bundle["error"]["type"])

    engine.reduce_plan()
    engine.reduce_workload()

    # Produce the final bundle by actually crashing the reduced run.
    out_dir = Path(out_dir) if out_dir is not None else path.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    injector = (FaultInjector(engine.plan)
                if engine.plan.specs else None)
    try:
        run_workload(engine.config, faults=injector, crash_dir=out_dir)
    except ReproError as exc:
        final_path = getattr(exc, "bundle_path", None)
        if final_path is None:
            raise MinimizeError(
                "minimized run crashed but wrote no bundle",
                error=type(exc).__name__)
    else:
        raise MinimizeError(
            "minimized configuration no longer crashes (reduction "
            "verified against a stale signature?)", bundle=path.name)

    final = load_bundle(final_path)
    Path(final_path).unlink()  # superseded by the .min.json artifact
    final["minimization"] = {
        "original": {
            "file": path.name,
            "sha256": original_digest,
            "specs": len(plan.specs),
            "steps": original_steps,
        },
        "candidates": engine.candidates,
        "reproductions": engine.reproductions,
        "log": list(engine.log),
    }
    core_text = bundle_to_json(strip_provenance(final))
    digest = hashlib.sha256(core_text.encode("utf-8")).hexdigest()[:12]
    min_path = out_dir / ("crash-%s-%s.min.json"
                          % (final["error"]["type"].lower(), digest))
    atomic_write_text(min_path, bundle_to_json(final))

    verified = False
    if verify:
        matched, replay_path, detail = replay_bundle(min_path,
                                                     workdir=out_dir)
        if not matched:
            raise MinimizeError(
                "minimized bundle failed bit-for-bit replay: %s"
                % detail, bundle=min_path.name)
        verified = True
        if replay_path is not None and replay_path != min_path:
            Path(replay_path).unlink()

    return MinimizeResult(
        path=min_path, bundle=final,
        original_specs=len(plan.specs),
        final_specs=len(engine.plan.specs),
        original_steps=original_steps,
        final_steps=int(final.get("steps", 0)),
        candidates=engine.candidates,
        reproductions=engine.reproductions,
        verified=verified, log=list(engine.log))
