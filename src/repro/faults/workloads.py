"""The replayable-workload registry: every workload a crash bundle can
embed, keyed by the ``workload`` field of its config.

A bundle's ``config`` dict is the *complete* description of the run
that crashed — workload name, workload parameters, and the kernel
knobs (scheme, windows, verification, audit, watchdog, execution core,
step budget).  :func:`run_workload` turns such a config back into a
live run, which is what replay, delta-debugging minimization
(:mod:`repro.faults.minimize`) and the fuzzer
(:mod:`repro.faults.fuzz`) all build on.

Each :class:`WorkloadDef` also declares its *shrinkable* parameters —
the workload-schedule axis of minimization (thread counts, stream
sizes and iteration budgets, each with a floor) — and a ``fuzz_draw``
hook that samples adversarial parameter sets from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ReproError


class WorkloadError(ReproError, ValueError):
    """A bundle config names a workload this build cannot rerun.

    Subclasses ``ValueError`` too so pre-registry callers that caught
    ``ValueError`` from replay keep working.
    """


@dataclass(frozen=True)
class Shrink:
    """One workload-axis reduction: halve ``key`` toward ``floor``."""

    key: str
    floor: Any
    kind: str = "int"  # "int" | "float" | "flag"


#: shrinks every workload shares (kernel knobs, not workload params);
#: ``watchdog`` shrinks time-to-detect for livelock bundles
COMMON_SHRINKS: Tuple[Shrink, ...] = (Shrink("watchdog", 1),)


@dataclass(frozen=True)
class WorkloadDef:
    """One replayable workload: builder + minimization/fuzzing hooks."""

    name: str
    build: Callable[[Any, Dict[str, Any]], None]
    shrinks: Tuple[Shrink, ...] = ()
    fuzz_draw: Optional[Callable[[random.Random], Dict[str, Any]]] = None

    def shrinkable(self) -> Tuple[Shrink, ...]:
        return self.shrinks + COMMON_SHRINKS


# ---------------------------------------------------------------------------
# builders


def _build_spellcheck(kernel, config: Dict[str, Any]) -> None:
    from repro.apps.spellcheck.pipeline import (
        SpellConfig,
        build_spellchecker,
    )

    scale = float(config.get("scale", 1.0))
    seed = int(config.get("seed", 1993))
    if "m" in config and "n" in config:
        spell = SpellConfig(m=int(config["m"]), n=int(config["n"]),
                            scale=scale, seed=seed)
    else:
        spell = SpellConfig.named(config.get("concurrency", "high"),
                                  config.get("granularity", "coarse"),
                                  scale=scale, seed=seed)
    build_spellchecker(kernel, spell)


def _build_call_depth(kernel, config: Dict[str, Any]) -> None:
    from repro.apps.synthetic import spawn_call_depth_workers

    spawn_call_depth_workers(kernel,
                             n_workers=int(config.get("n_workers", 3)),
                             iterations=int(config.get("iterations", 4)),
                             depth=int(config.get("depth", 3)),
                             work=int(config.get("work", 5)))


def _build_ping_pong(kernel, config: Dict[str, Any]) -> None:
    from repro.apps.synthetic import spawn_ping_pong

    spawn_ping_pong(kernel, rounds=int(config.get("rounds", 8)))


def _build_fork_join(kernel, config: Dict[str, Any]) -> None:
    from repro.apps.synthetic import spawn_fork_join

    spawn_fork_join(kernel,
                    n_children=int(config.get("n_children", 3)),
                    items=int(config.get("items", 12)),
                    flush_hint=bool(config.get("flush_hint", False)))


def _build_yield_storm(kernel, config: Dict[str, Any]) -> None:
    from repro.apps.synthetic import spawn_yield_storm

    spawn_yield_storm(kernel,
                      n_spinners=int(config.get("n_spinners", 2)),
                      spins=int(config.get("spins", 400)))


# ---------------------------------------------------------------------------
# fuzz parameter draws (small on purpose: the fuzzer runs with the
# full detection battery on, which is O(windows x threads) per step)


def _fuzz_spellcheck(rng: random.Random) -> Dict[str, Any]:
    return {"scale": rng.choice((0.02, 0.03, 0.05)),
            "m": rng.choice((1, 4, 16)),
            "n": rng.choice((1, 4, 16)),
            "seed": 1993}


def _fuzz_call_depth(rng: random.Random) -> Dict[str, Any]:
    return {"n_workers": rng.randint(1, 3),
            "iterations": rng.randint(1, 5),
            "depth": rng.randint(0, 4),
            "work": rng.randint(1, 8)}


def _fuzz_ping_pong(rng: random.Random) -> Dict[str, Any]:
    return {"rounds": rng.randint(2, 30)}


def _fuzz_fork_join(rng: random.Random) -> Dict[str, Any]:
    return {"n_children": rng.randint(1, 3),
            "items": rng.randint(4, 24),
            "flush_hint": rng.random() < 0.5}


def _fuzz_yield_storm(rng: random.Random) -> Dict[str, Any]:
    # A tight watchdog makes roughly half of these storms livelock
    # (detected) and the rest drain (survived).
    return {"n_spinners": rng.randint(1, 3),
            "spins": rng.randint(50, 400),
            "watchdog": rng.randint(100, 600)}


# ---------------------------------------------------------------------------
# the registry

WORKLOADS: Dict[str, WorkloadDef] = {}


def register_workload(workload: WorkloadDef) -> WorkloadDef:
    WORKLOADS[workload.name] = workload
    return workload


register_workload(WorkloadDef(
    "spellcheck", _build_spellcheck,
    shrinks=(Shrink("scale", 0.01, "float"),
             Shrink("m", 1), Shrink("n", 1)),
    fuzz_draw=_fuzz_spellcheck))

register_workload(WorkloadDef(
    "synthetic-call-depth", _build_call_depth,
    shrinks=(Shrink("n_workers", 1), Shrink("iterations", 1),
             Shrink("depth", 0), Shrink("work", 1)),
    fuzz_draw=_fuzz_call_depth))

register_workload(WorkloadDef(
    "synthetic-ping-pong", _build_ping_pong,
    shrinks=(Shrink("rounds", 1),),
    fuzz_draw=_fuzz_ping_pong))

register_workload(WorkloadDef(
    "synthetic-fork-join", _build_fork_join,
    shrinks=(Shrink("n_children", 1), Shrink("items", 1),
             Shrink("flush_hint", False, "flag")),
    fuzz_draw=_fuzz_fork_join))

register_workload(WorkloadDef(
    "synthetic-yield-storm", _build_yield_storm,
    shrinks=(Shrink("n_spinners", 1), Shrink("spins", 1)),
    fuzz_draw=_fuzz_yield_storm))


def get_workload(name: str) -> WorkloadDef:
    workload = WORKLOADS.get(name)
    if workload is None:
        raise WorkloadError(
            "cannot replay workload %r; known workloads: %s"
            % (name, ", ".join(sorted(WORKLOADS))), workload=name)
    return workload


# ---------------------------------------------------------------------------
# execution


def run_workload(config: Dict[str, Any], faults=None, crash_dir=None,
                 trial_budget: Optional[int] = None):
    """Run the workload a bundle config describes; returns RunResult.

    ``config`` supplies both the workload parameters and the kernel
    knobs; ``faults`` is an armed :class:`FaultInjector` (or None).
    The run executes under the config's recorded execution ``core`` —
    an explicit core always beats ``$REPRO_CORE``, so a bundle
    captured on the step-granular path can never silently replay on a
    different core.  Bundles recorded before the ``"generator"`` core
    retired from the public ``core=`` switch still replay on the
    reference trampoline: the retired name maps to forcing the
    step-granular loop on an otherwise-batched kernel.

    ``trial_budget`` caps steps *without* entering the config (the
    minimizer's runaway guard for candidate runs); a ``max_steps`` in
    the config itself is part of the replayed run and is recorded.
    Raises whatever the run raises.
    """
    from repro.runtime.batch import RETIRED_GENERATOR_CORE
    from repro.runtime.kernel import Kernel

    workload = get_workload(str(config.get("workload")))
    max_steps = int(config.get("max_steps", 0)) or None
    if trial_budget is not None:
        max_steps = (trial_budget if max_steps is None
                     else min(max_steps, trial_budget))
    core = config.get("core")
    reference = core == RETIRED_GENERATOR_CORE
    kernel = Kernel(
        n_windows=int(config.get("n_windows", 8)),
        scheme=str(config.get("scheme", "SP")),
        verify_registers=bool(config.get("verify_registers", True)),
        faults=faults,
        audit=bool(config.get("audit", False)),
        watchdog=int(config.get("watchdog", 0)) or None,
        crash_dir=crash_dir,
        crash_config=config,
        core="batched" if reference else core)
    if reference:
        # recorded on the retired step-granular core: force the
        # reference trampoline so the replay never silently runs on
        # the batched path (bit-identical, but the bundle's recorded
        # core is part of the reproduction recipe)
        kernel.core = RETIRED_GENERATOR_CORE
    workload.build(kernel, config)
    return kernel.run(max_steps=max_steps)
