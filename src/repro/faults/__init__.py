"""``repro.faults`` — deterministic seeded fault injection, the kernel
watchdog, and crash-bundle diagnostics.

The paper's §3.1 argues window sharing can never corrupt another
thread's resident windows; this subsystem is how the repo *earns* that
claim instead of asserting it.  A :class:`FaultPlan` (seed + specs)
compiles into a :class:`FaultInjector` the kernel threads through the
CPU, the schemes and the ready queue; every injection lands on the
trace-event bus, and every escaping :class:`~repro.errors.ReproError`
can be dumped as a replayable crash bundle.

The contract the chaos suite enforces: every fault class is either
*survived* (architectural results identical to the unfaulted run) or
*detected* (a specific ``ReproError`` plus a bundle whose seed + plan
reproduce the identical failure bit-for-bit) — never silently wrong.
"""

from repro.faults.bundle import (
    BUNDLE_SCHEMA,
    BUNDLE_VERSION,
    build_crash_bundle,
    load_bundle,
    replay_bundle,
    write_crash_bundle,
)
from repro.faults.inject import FaultInjector, InjectedStoreError
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    plan_from_arg,
)
from repro.faults.watchdog import Watchdog

__all__ = [
    "BUNDLE_SCHEMA",
    "BUNDLE_VERSION",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedStoreError",
    "Watchdog",
    "build_crash_bundle",
    "load_bundle",
    "plan_from_arg",
    "replay_bundle",
    "write_crash_bundle",
]
