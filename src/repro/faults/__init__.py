"""``repro.faults`` — deterministic seeded fault injection, the kernel
watchdog, crash-bundle diagnostics, delta-debugging minimization and
the adversarial fuzzer.

The paper's §3.1 argues window sharing can never corrupt another
thread's resident windows; this subsystem is how the repo *earns* that
claim instead of asserting it.  A :class:`FaultPlan` (seed + specs)
compiles into a :class:`FaultInjector` the kernel threads through the
CPU, the schemes and the ready queue; every injection lands on the
trace-event bus, and every escaping :class:`~repro.errors.ReproError`
can be dumped as a replayable crash bundle.

The contract the chaos suite enforces: every fault class is either
*survived* (architectural results identical to the unfaulted run) or
*detected* (a specific ``ReproError`` plus a bundle whose seed + plan
reproduce the identical failure bit-for-bit) — never silently wrong.

On top of the replay contract sit two diagnosis tools:

* :func:`minimize_bundle` delta-debugs a failing bundle down to a
  minimal fault plan and a shrunk workload schedule, each reduction
  verified by deterministic replay (``python -m repro.faults
  minimize``); and
* :func:`run_fuzz` runs seeded random fault plans against random
  workloads across schemes and execution cores, auto-minimizing every
  detected failure (``python -m repro.faults fuzz``).
"""

from repro.faults.bundle import (
    BUNDLE_SCHEMA,
    BUNDLE_VERSION,
    BundleError,
    build_crash_bundle,
    load_bundle,
    replay_bundle,
    strip_provenance,
    write_crash_bundle,
)
from repro.faults.fuzz import FuzzReport, FuzzTrial, draw_trial, run_fuzz
from repro.faults.inject import FaultInjector, InjectedStoreError
from repro.faults.minimize import (
    MinimizeError,
    MinimizeResult,
    ddmin,
    failure_signature,
    minimize_bundle,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    plan_from_arg,
)
from repro.faults.watchdog import Watchdog
from repro.faults.workloads import (
    WORKLOADS,
    WorkloadDef,
    WorkloadError,
    get_workload,
    run_workload,
)

__all__ = [
    "BUNDLE_SCHEMA",
    "BUNDLE_VERSION",
    "BundleError",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FuzzReport",
    "FuzzTrial",
    "InjectedStoreError",
    "MinimizeError",
    "MinimizeResult",
    "WORKLOADS",
    "Watchdog",
    "WorkloadDef",
    "WorkloadError",
    "build_crash_bundle",
    "ddmin",
    "draw_trial",
    "failure_signature",
    "get_workload",
    "load_bundle",
    "minimize_bundle",
    "plan_from_arg",
    "replay_bundle",
    "run_fuzz",
    "run_workload",
    "strip_provenance",
    "write_crash_bundle",
]
