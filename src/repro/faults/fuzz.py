"""The adversarial workload fuzzer: seeded random fault plans x random
synthetic workloads x NS/SNP/SP x both execution cores.

Each trial derives its own RNG from ``(seed, trial index)`` — the
whole campaign is a pure function of the seed, so a CI failure names
the exact trial to rerun.  Every trial runs with the full detection
battery armed (register verification, continuous invariant audit,
watchdog) and a crash directory, and must end in one of two ways:

* **survived** — the run completes; the kernel's invariants held, or
  the perturbation was harmless; or
* **detected** — a :class:`~repro.errors.ReproError` escaped *and*
  the resulting crash bundle auto-minimizes into a verified,
  bit-for-bit-replayable artifact (:mod:`repro.faults.minimize`).

Anything else — a non-``ReproError`` exception, or a bundle that
fails to minimize/replay — is a real robustness bug and fails the
campaign.  That is the "survive-or-minimize" contract the CI fuzz
smoke enforces on every PR and the nightly job enforces at scale.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.errors import ReproError
from repro.faults.inject import FaultInjector
from repro.faults.minimize import MinimizeResult, minimize_bundle
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.workloads import WORKLOADS, run_workload
from repro.runtime.batch import CORES

DEFAULT_TRIALS = 25
DEFAULT_SEED = 1993
#: per-trial step budget, recorded in the config so the bundle is
#: self-contained (a budget crash replays as a budget crash)
DEFAULT_TRIAL_BUDGET = 300_000
DEFAULT_SCHEMES = ("NS", "SNP", "SP")
#: trigger horizon for random fault firing points
FUZZ_HORIZON = 30


@dataclass
class FuzzTrial:
    """One trial's draw and outcome."""

    index: int
    workload: str
    scheme: str
    n_windows: int
    core: str
    plan: FaultPlan
    config: dict = field(default_factory=dict)
    outcome: str = "survived"  # survived | detected | rejected | unexpected
    error_type: Optional[str] = None
    bundle: Optional[Path] = None
    minimized: Optional[MinimizeResult] = None
    detail: str = ""

    def describe(self) -> str:
        text = ("trial %02d %-22s %-3s w%d %-9s faults=%s -> %s"
                % (self.index, self.workload, self.scheme,
                   self.n_windows, self.core,
                   ",".join(s.describe() for s in self.plan.specs),
                   self.outcome))
        if self.error_type:
            text += " %s" % self.error_type
        if self.minimized is not None:
            text += (" -> minimized %d spec(s) (%s)"
                     % (self.minimized.final_specs,
                        self.minimized.path.name))
        if self.outcome in ("unexpected", "rejected"):
            text += " %s" % self.detail
        return text


@dataclass
class FuzzReport:
    """Campaign outcome: the per-trial record plus the pass/fail gate."""

    seed: int
    trials: List[FuzzTrial] = field(default_factory=list)

    @property
    def survived(self) -> int:
        return sum(t.outcome == "survived" for t in self.trials)

    @property
    def detected(self) -> int:
        return sum(t.outcome == "detected" for t in self.trials)

    @property
    def minimized(self) -> int:
        return sum(t.minimized is not None for t in self.trials)

    @property
    def rejected(self) -> int:
        """Trials the static pre-validation refused to run."""
        return sum(t.outcome == "rejected" for t in self.trials)

    @property
    def unexpected(self) -> int:
        return sum(t.outcome == "unexpected" for t in self.trials)

    @property
    def ok(self) -> bool:
        """The survive-or-minimize gate: no unexpected outcomes, and
        every detected crash produced a verified minimized bundle."""
        return self.unexpected == 0 and all(
            t.minimized is not None and t.minimized.verified
            for t in self.trials if t.outcome == "detected")

    def summary(self) -> str:
        return ("fuzz: %d trials — %d survived, %d detected "
                "(%d minimized), %d rejected, %d unexpected (seed=%s)"
                % (len(self.trials), self.survived, self.detected,
                   self.minimized, self.rejected, self.unexpected,
                   self.seed))


def draw_trial(seed: int, index: int,
               workloads: Sequence[str],
               schemes: Sequence[str] = DEFAULT_SCHEMES,
               cores: Sequence[str] = CORES,
               trial_budget: int = DEFAULT_TRIAL_BUDGET) -> FuzzTrial:
    """The deterministic draw for trial ``index`` of campaign ``seed``:
    workload + params, scheme, window count, execution core, and a
    random 1–3 spec fault plan."""
    rng = random.Random("repro-fuzz:%s:%d" % (seed, index))
    name = rng.choice(sorted(workloads))
    workload = WORKLOADS[name]
    config = {
        "workload": name,
        "scheme": rng.choice(tuple(schemes)),
        "n_windows": rng.choice((4, 6, 8)),
        "core": rng.choice(tuple(cores)),
        "verify_registers": True,
        "audit": True,
        "watchdog": 50_000,
        "max_steps": trial_budget,
    }
    if workload.fuzz_draw is not None:
        config.update(workload.fuzz_draw(rng))
    specs = tuple(
        FaultSpec(kind=rng.choice(FAULT_KINDS),
                  at=rng.randint(1, FUZZ_HORIZON))
        for __ in range(rng.randint(1, 3)))
    plan = FaultPlan(seed=rng.randrange(1, 2 ** 31), specs=specs)
    return FuzzTrial(index=index, workload=name,
                     scheme=config["scheme"],
                     n_windows=config["n_windows"],
                     core=config["core"], plan=plan, config=config)


def _prevalidate(trial: FuzzTrial) -> bool:
    """Static topology check of the drawn workload plan.

    Records the verdict in the trial's config (so any later crash
    bundle carries it; ``run_workload`` ignores unknown keys).  A plan
    the verifier proves deadlocked — a known-bad plan — is *rejected*
    without burning the trial's step budget; returns False for those.
    """
    from repro.analysis.topology import analyze_workload_config

    static = analyze_workload_config(trial.config)
    errors = static.errors
    if errors:
        trial.config["static_verdict"] = "rejected"
        trial.outcome = "rejected"
        trial.detail = "; ".join(f.describe() for f in errors)
        return False
    trial.config["static_verdict"] = "clean"
    return True


def run_fuzz(trials: int = DEFAULT_TRIALS, seed: int = DEFAULT_SEED,
             out_dir="fuzz-out",
             workloads: Optional[Sequence[str]] = None,
             schemes: Sequence[str] = DEFAULT_SCHEMES,
             cores: Sequence[str] = CORES,
             minimize: bool = True,
             trial_budget: int = DEFAULT_TRIAL_BUDGET,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run a fuzz campaign; minimized bundles land in ``out_dir``,
    raw (pre-minimization) bundles in ``out_dir/raw``."""
    out_dir = Path(out_dir)
    raw_dir = out_dir / "raw"
    raw_dir.mkdir(parents=True, exist_ok=True)
    names = tuple(workloads) if workloads else tuple(sorted(WORKLOADS))
    report = FuzzReport(seed=seed)
    for index in range(trials):
        trial = draw_trial(seed, index, names, schemes=schemes,
                           cores=cores, trial_budget=trial_budget)
        if not _prevalidate(trial):
            report.trials.append(trial)
            if log is not None:
                log(trial.describe())
            continue
        injector = FaultInjector(trial.plan)
        try:
            run_workload(trial.config, faults=injector,
                         crash_dir=raw_dir)
        except ReproError as exc:
            trial.outcome = "detected"
            trial.error_type = type(exc).__name__
            bundle_path = getattr(exc, "bundle_path", None)
            if bundle_path is None:
                trial.outcome = "unexpected"
                trial.detail = ("crashed with %s but wrote no bundle"
                                % trial.error_type)
            else:
                trial.bundle = Path(bundle_path)
                if minimize:
                    try:
                        trial.minimized = minimize_bundle(
                            trial.bundle, out_dir=out_dir)
                    except ReproError as min_exc:
                        trial.outcome = "unexpected"
                        trial.detail = ("minimization failed: %s"
                                        % min_exc)
        except Exception as exc:  # noqa: BLE001 — the fuzz gate itself
            trial.outcome = "unexpected"
            trial.error_type = type(exc).__name__
            trial.detail = traceback.format_exc(limit=8).strip()
        report.trials.append(trial)
        if log is not None:
            log(trial.describe())
    if log is not None:
        log(report.summary())
    return report
