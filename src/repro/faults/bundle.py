"""Crash bundles: versioned JSON dumps of everything needed to diagnose
and *exactly replay* a failed run.

Schema (``repro.crash-bundle`` version 2)::

    {
      "schema": "repro.crash-bundle",
      "version": 2,
      "error":     {"type", "message", "context"},
      "config":    {...the kernel's crash_config: workload + knobs,
                    incl. the execution "core" the crash ran under...},
      "fault_plan": FaultPlan payload | null,
      "machine":   {"scheme", "n_windows", "cwp", "wim", "occupancy",
                    "windows": [{"ins", "locals"}, ...]},
      "threads":   [{"tid", "name", "state", "blocked_on", "calls",
                     "returns", "blocks",
                     "windows": {"cwp", "bottom", "resident", "depth",
                                 "prw", "stored"}}],
      "counters":  Counters.snapshot() (string keys),
      "steps":     kernel steps at the crash,
      "events":    last-N trace events from the flight recorder | [],
      "minimization": delta-debugging provenance | absent
                      (see repro.faults.minimize; not part of the
                      replay-identity of the bundle)
    }

Version 2 records the execution core (``config["core"]``) the crash
was captured under; replay reruns under that exact core, so a
step-granular fault run can never silently diverge onto a different
core (e.g. after the generator core retires).  Version 1 bundles
(no recorded core) still load and replay under the ambient default.

Bundles contain no timestamps or host state, so a deterministic
workload + the embedded seed/plan reproduce the identical bundle
bit-for-bit — which is exactly what :func:`replay_bundle` asserts.
The filename embeds a digest of the content, so replays land on the
same name and repeated crashes of the same failure do not pile up.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.ioutil import atomic_write_text

BUNDLE_SCHEMA = "repro.crash-bundle"
BUNDLE_VERSION = 2

#: bundle sections that are provenance/metadata, not failure identity:
#: stripped before the bit-for-bit replay comparison
PROVENANCE_KEYS = ("minimization",)


class BundleError(ReproError, ValueError):
    """A crash-bundle file is missing, unreadable or malformed.

    Derives from :class:`ReproError` (structured context, uniform CLI
    rendering) *and* ``ValueError`` so callers of the original
    ``load_bundle`` contract keep working.
    """


def _jsonable(value: Any) -> Any:
    """Recursively coerce register contents (tuples, bytes, ...) to JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def build_crash_bundle(error: BaseException, kernel,
                       config: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Assemble the bundle dict for ``error`` raised out of ``kernel``."""
    wf = kernel.cpu.wf
    wmap = kernel.cpu.map
    n = wf.n_windows

    plan = None
    if kernel.faults is not None:
        plan = kernel.faults.plan.to_payload()

    error_doc = {
        "type": type(error).__name__,
        "message": (error.message if isinstance(error, ReproError)
                    else str(error)),
        "context": _jsonable(getattr(error, "context", {}) or {}),
    }
    if isinstance(error, ReproError) and getattr(error, "blocked", None):
        error_doc["blocked"] = _jsonable(error.blocked)

    machine = {
        "scheme": kernel.scheme.kind,
        "n_windows": n,
        "cwp": wf.cwp,
        "wim": sorted(wf.wim),
        "occupancy": [{"window": w, "kind": wmap.kind(w),
                       "tid": wmap.tid(w)} for w in range(n)],
        "windows": [{"ins": _jsonable(list(wf.ins_of(w))),
                     "locals": _jsonable(list(wf.locals_of(w)))}
                    for w in range(n)],
    }

    threads = [{
        "tid": t.tid,
        "name": t.name,
        "state": t.state,
        "blocked_on": t.blocked_on,
        "calls": t.calls,
        "returns": t.returns,
        "blocks": t.blocks,
        "windows": {
            "cwp": t.windows.cwp,
            "bottom": t.windows.bottom,
            "resident": t.windows.resident,
            "depth": t.windows.depth,
            "prw": t.windows.prw,
            "stored": len(t.windows.store),
        },
    } for t in kernel.threads]

    snap = kernel.counters.snapshot()
    snap["per_thread_saves"] = _jsonable(snap["per_thread_saves"])
    snap["per_thread_restores"] = _jsonable(snap["per_thread_restores"])

    flight = getattr(kernel, "_flight", None)
    events = ([_jsonable(e.to_dict()) for e in flight.tail()]
              if flight is not None else [])

    # v2: the execution core is part of the replay identity — a crash
    # captured on the step-granular path must rerun there.
    config_doc = dict(config if config is not None
                      else kernel.crash_config)
    config_doc.setdefault("core", kernel.core)

    return {
        "schema": BUNDLE_SCHEMA,
        "version": BUNDLE_VERSION,
        "error": error_doc,
        "config": _jsonable(config_doc),
        "fault_plan": plan,
        "machine": machine,
        "threads": threads,
        "counters": _jsonable(snap),
        "steps": kernel._steps,
        "events": events,
    }


def bundle_to_json(bundle: Dict[str, Any]) -> str:
    return json.dumps(bundle, indent=2, sort_keys=True)


def write_crash_bundle(directory, error: BaseException, kernel,
                       config: Optional[Dict[str, Any]] = None) -> Path:
    """Build and atomically write a bundle; returns its path.

    The filename is ``crash-<errortype>-<content digest>.json`` so the
    same failure always lands on the same file.
    """
    bundle = build_crash_bundle(error, kernel, config=config)
    text = bundle_to_json(bundle)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    name = "crash-%s-%s.json" % (bundle["error"]["type"].lower(), digest)
    path = Path(directory) / name
    atomic_write_text(path, text)
    return path


def load_bundle(path) -> Dict[str, Any]:
    """Read and validate a crash bundle.

    Raises :class:`BundleError` (a ``ReproError`` *and* a
    ``ValueError``) on a missing/unreadable path, invalid JSON, a
    foreign schema, a future version, or a missing section — never a
    raw ``FileNotFoundError``/``JSONDecodeError`` traceback.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise BundleError("cannot read crash bundle: %s" % exc,
                          path=str(path)) from exc
    try:
        bundle = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BundleError("crash bundle is not valid JSON: %s" % exc,
                          path=str(path)) from exc
    if not isinstance(bundle, dict) \
            or bundle.get("schema") != BUNDLE_SCHEMA:
        raise BundleError("not a %s document: schema=%r"
                          % (BUNDLE_SCHEMA,
                             bundle.get("schema")
                             if isinstance(bundle, dict) else None),
                          path=str(path))
    version = bundle.get("version")
    if not isinstance(version, int) or version > BUNDLE_VERSION:
        raise BundleError("unsupported crash-bundle version: %r"
                          % (version,), path=str(path))
    for section in ("error", "config", "machine", "threads"):
        if section not in bundle:
            raise BundleError("crash bundle missing %r section"
                              % section, path=str(path))
    return bundle


def strip_provenance(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """The replay-identity core of a bundle: provenance sections (the
    minimization log) describe how the file was *produced*, not what
    the failure *is*, so a fresh crash of the same run omits them."""
    return {k: v for k, v in bundle.items()
            if k not in PROVENANCE_KEYS}


# ---------------------------------------------------------------------------
# replay


def rerun_bundle_workload(config: Dict[str, Any],
                          plan: Optional[FaultPlan],
                          crash_dir) -> None:
    """Re-execute the workload a bundle describes — same config, same
    plan, same execution core; any crash lands a bundle in
    ``crash_dir``.  Raises whatever the run raises."""
    from repro.faults.inject import FaultInjector
    from repro.faults.workloads import run_workload

    injector = FaultInjector(plan) if plan else None
    run_workload(config, faults=injector, crash_dir=crash_dir)


def replay_bundle(path, workdir=None) -> Tuple[bool, Optional[Path], str]:
    """Replay a bundle; returns ``(matched, new_path, detail)``.

    ``matched`` is True when the rerun crashed and produced a
    bit-for-bit identical bundle (same content digest, same file
    name), comparing against the bundle minus its provenance sections.
    ``workdir`` is where the replay bundle is written (default: the
    original bundle's directory).
    """
    path = Path(path)
    bundle = load_bundle(path)
    plan = (FaultPlan.from_payload(bundle["fault_plan"])
            if bundle.get("fault_plan") else None)
    crash_dir = Path(workdir) if workdir is not None else path.parent
    from repro.faults.workloads import WorkloadError
    try:
        rerun_bundle_workload(bundle["config"], plan, crash_dir)
    except WorkloadError:
        # an unknown workload is a problem with the *bundle*, not a
        # reproduced crash — surface it, don't report "did not match"
        raise
    except ReproError as exc:
        new_path = getattr(exc, "bundle_path", None)
        if new_path is None:
            return False, None, ("rerun crashed (%s) but wrote no bundle"
                                 % type(exc).__name__)
        new_path = Path(new_path)
        if new_path.read_text() == bundle_to_json(strip_provenance(bundle)):
            return True, new_path, ("reproduced bit-for-bit: %s"
                                    % new_path.name)
        return False, new_path, (
            "rerun crashed with %s but the bundle differs (%s)"
            % (type(exc).__name__, new_path.name))
    return False, None, "rerun completed without crashing"
