"""Crash bundles: versioned JSON dumps of everything needed to diagnose
and *exactly replay* a failed run.

Schema (``repro.crash-bundle`` version 1)::

    {
      "schema": "repro.crash-bundle",
      "version": 1,
      "error":     {"type", "message", "context"},
      "config":    {...the kernel's crash_config: workload + knobs...},
      "fault_plan": FaultPlan payload | null,
      "machine":   {"scheme", "n_windows", "cwp", "wim", "occupancy",
                    "windows": [{"ins", "locals"}, ...]},
      "threads":   [{"tid", "name", "state", "blocked_on", "calls",
                     "returns", "blocks",
                     "windows": {"cwp", "bottom", "resident", "depth",
                                 "prw", "stored"}}],
      "counters":  Counters.snapshot() (string keys),
      "steps":     kernel steps at the crash,
      "events":    last-N trace events from the flight recorder | []
    }

Bundles contain no timestamps or host state, so a deterministic
workload + the embedded seed/plan reproduce the identical bundle
bit-for-bit — which is exactly what :func:`replay_bundle` asserts.
The filename embeds a digest of the content, so replays land on the
same name and repeated crashes of the same failure do not pile up.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.ioutil import atomic_write_text

BUNDLE_SCHEMA = "repro.crash-bundle"
BUNDLE_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce register contents (tuples, bytes, ...) to JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def build_crash_bundle(error: BaseException, kernel,
                       config: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Assemble the bundle dict for ``error`` raised out of ``kernel``."""
    wf = kernel.cpu.wf
    wmap = kernel.cpu.map
    n = wf.n_windows

    plan = None
    if kernel.faults is not None:
        plan = kernel.faults.plan.to_payload()

    error_doc = {
        "type": type(error).__name__,
        "message": (error.message if isinstance(error, ReproError)
                    else str(error)),
        "context": _jsonable(getattr(error, "context", {}) or {}),
    }
    if isinstance(error, ReproError) and getattr(error, "blocked", None):
        error_doc["blocked"] = _jsonable(error.blocked)

    machine = {
        "scheme": kernel.scheme.kind,
        "n_windows": n,
        "cwp": wf.cwp,
        "wim": sorted(wf.wim),
        "occupancy": [{"window": w, "kind": wmap.kind(w),
                       "tid": wmap.tid(w)} for w in range(n)],
        "windows": [{"ins": _jsonable(list(wf.ins_of(w))),
                     "locals": _jsonable(list(wf.locals_of(w)))}
                    for w in range(n)],
    }

    threads = [{
        "tid": t.tid,
        "name": t.name,
        "state": t.state,
        "blocked_on": t.blocked_on,
        "calls": t.calls,
        "returns": t.returns,
        "blocks": t.blocks,
        "windows": {
            "cwp": t.windows.cwp,
            "bottom": t.windows.bottom,
            "resident": t.windows.resident,
            "depth": t.windows.depth,
            "prw": t.windows.prw,
            "stored": len(t.windows.store),
        },
    } for t in kernel.threads]

    snap = kernel.counters.snapshot()
    snap["per_thread_saves"] = _jsonable(snap["per_thread_saves"])
    snap["per_thread_restores"] = _jsonable(snap["per_thread_restores"])

    flight = getattr(kernel, "_flight", None)
    events = ([_jsonable(e.to_dict()) for e in flight.tail()]
              if flight is not None else [])

    return {
        "schema": BUNDLE_SCHEMA,
        "version": BUNDLE_VERSION,
        "error": error_doc,
        "config": _jsonable(dict(config
                                 if config is not None
                                 else kernel.crash_config)),
        "fault_plan": plan,
        "machine": machine,
        "threads": threads,
        "counters": _jsonable(snap),
        "steps": kernel._steps,
        "events": events,
    }


def bundle_to_json(bundle: Dict[str, Any]) -> str:
    return json.dumps(bundle, indent=2, sort_keys=True)


def write_crash_bundle(directory, error: BaseException, kernel,
                       config: Optional[Dict[str, Any]] = None) -> Path:
    """Build and atomically write a bundle; returns its path.

    The filename is ``crash-<errortype>-<content digest>.json`` so the
    same failure always lands on the same file.
    """
    bundle = build_crash_bundle(error, kernel, config=config)
    text = bundle_to_json(bundle)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    name = "crash-%s-%s.json" % (bundle["error"]["type"].lower(), digest)
    path = Path(directory) / name
    atomic_write_text(path, text)
    return path


def load_bundle(path) -> Dict[str, Any]:
    """Read and validate a crash bundle."""
    bundle = json.loads(Path(path).read_text())
    if bundle.get("schema") != BUNDLE_SCHEMA:
        raise ValueError("not a %s document: schema=%r"
                         % (BUNDLE_SCHEMA, bundle.get("schema")))
    version = bundle.get("version")
    if not isinstance(version, int) or version > BUNDLE_VERSION:
        raise ValueError("unsupported crash-bundle version: %r"
                         % (version,))
    for section in ("error", "config", "machine", "threads"):
        if section not in bundle:
            raise ValueError("crash bundle missing %r section" % section)
    return bundle


# ---------------------------------------------------------------------------
# replay


def _spell_config_from(config: Dict[str, Any]):
    """Rebuild the workload config a bundle's run used."""
    from repro.apps.spellcheck.pipeline import SpellConfig

    scale = float(config.get("scale", 1.0))
    seed = int(config.get("seed", 1993))
    if "m" in config and "n" in config:
        return SpellConfig(m=int(config["m"]), n=int(config["n"]),
                           scale=scale, seed=seed)
    return SpellConfig.named(config.get("concurrency", "high"),
                             config.get("granularity", "coarse"),
                             scale=scale, seed=seed)


def rerun_bundle_workload(config: Dict[str, Any],
                          plan: Optional[FaultPlan],
                          crash_dir) -> None:
    """Re-execute the spellcheck workload a bundle describes, with the
    same plan and kernel knobs; any crash lands a bundle in
    ``crash_dir``.  Raises whatever the run raises."""
    from repro.apps.spellcheck.pipeline import run_spellchecker
    from repro.faults.inject import FaultInjector

    workload = config.get("workload", "spellcheck")
    if workload != "spellcheck":
        raise ValueError("can only replay spellcheck bundles, got %r"
                         % (workload,))
    injector = FaultInjector(plan) if plan else None
    run_spellchecker(
        int(config["n_windows"]), config["scheme"],
        _spell_config_from(config),
        verify_registers=bool(config.get("verify_registers", True)),
        faults=injector,
        audit=bool(config.get("audit", False)),
        watchdog=int(config.get("watchdog", 0)) or None,
        crash_dir=crash_dir,
        crash_config=config)


def replay_bundle(path, workdir=None) -> Tuple[bool, Optional[Path], str]:
    """Replay a bundle; returns ``(matched, new_path, detail)``.

    ``matched`` is True when the rerun crashed and produced a
    bit-for-bit identical bundle (same content digest, same file name).
    ``workdir`` is where the replay bundle is written (default: the
    original bundle's directory).
    """
    path = Path(path)
    bundle = load_bundle(path)
    plan = (FaultPlan.from_payload(bundle["fault_plan"])
            if bundle.get("fault_plan") else None)
    crash_dir = Path(workdir) if workdir is not None else path.parent
    try:
        rerun_bundle_workload(bundle["config"], plan, crash_dir)
    except ReproError as exc:
        new_path = getattr(exc, "bundle_path", None)
        if new_path is None:
            return False, None, ("rerun crashed (%s) but wrote no bundle"
                                 % type(exc).__name__)
        new_path = Path(new_path)
        if new_path.read_text() == bundle_to_json(bundle):
            return True, new_path, ("reproduced bit-for-bit: %s"
                                    % new_path.name)
        return False, new_path, (
            "rerun crashed with %s but the bundle differs (%s)"
            % (type(exc).__name__, new_path.name))
    return False, None, "rerun completed without crashing"
