"""Crash-bundle CLI:
``python -m repro.faults <show|replay|minimize|fuzz> ...``.

``show`` pretty-prints what a bundle captured: the error and its
context, the machine and thread state at the crash, the fault plan,
the minimization provenance (for ``.min`` bundles) and the tail of the
event flight recorder.

``replay`` re-executes the workload the bundle describes (same config,
same seed, same fault plan, same execution core) and verifies the
rerun crashes with a bit-for-bit identical bundle — the determinism
contract that makes an injected failure diagnosable instead of
anecdotal.

``minimize`` delta-debugs a failing bundle to its essence: a minimal
fault plan and a shrunk workload schedule, verified by replay at every
reduction step (see :mod:`repro.faults.minimize`).

``fuzz`` runs a seeded campaign of random fault plans x random
workloads x schemes x execution cores, auto-minimizing every detected
failure; exits non-zero unless every trial survives-or-minimizes.

All bundle-file problems (missing path, corrupt JSON, foreign schema)
exit with code 2 and a one-line structured error, never a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.faults.bundle import load_bundle, replay_bundle
from repro.faults.plan import FaultPlan


def show(path: str) -> int:
    bundle = load_bundle(path)
    error = bundle["error"]
    machine = bundle["machine"]
    print("crash bundle: %s (schema %s v%s)"
          % (path, bundle["schema"], bundle["version"]))
    print()
    print("error: %s: %s" % (error["type"], error["message"]))
    for key in sorted(error.get("context", {})):
        print("  %-14s %s" % (key, error["context"][key]))
    for entry in error.get("blocked", []):
        print("  blocked: %s waits to %s %r (%s)"
              % (entry.get("thread"), entry.get("op"), entry.get("on"),
                 entry.get("detail")))
    print()
    plan = bundle.get("fault_plan")
    if plan:
        print("fault plan: %s" % FaultPlan.from_payload(plan).describe())
    else:
        print("fault plan: none")
    print("config: %s" % " ".join(
        "%s=%s" % (k, bundle["config"][k])
        for k in sorted(bundle["config"])))
    mini = bundle.get("minimization")
    if mini:
        orig = mini.get("original", {})
        print()
        print("minimized from: %s (%s spec(s), %s steps; sha256 %s...)"
              % (orig.get("file"), orig.get("specs"),
                 orig.get("steps"),
                 str(orig.get("sha256", ""))[:12]))
        print("  %s candidate run(s), %s reproduced"
              % (mini.get("candidates"), mini.get("reproductions")))
        for line in mini.get("log", []):
            print("  %s" % line)
    print()
    print("machine: scheme=%s windows=%d cwp=%d wim=%s"
          % (machine["scheme"], machine["n_windows"], machine["cwp"],
             machine["wim"]))
    for entry in machine["occupancy"]:
        print("  w%-2d %-9s %s" % (
            entry["window"], entry["kind"],
            "" if entry["tid"] is None else "tid=%s" % entry["tid"]))
    print()
    print("threads (at step %s):" % bundle.get("steps"))
    for t in bundle["threads"]:
        w = t["windows"]
        print("  %-12s %-8s depth=%-3s resident=%-2s stored=%-2s %s"
              % (t["name"], t["state"], w["depth"], w["resident"],
                 w["stored"],
                 "blocked on %s" % t["blocked_on"]
                 if t["blocked_on"] else ""))
    events = bundle.get("events", [])
    if events:
        print()
        print("last %d events:" % len(events))
        for event in events[-20:]:
            attrs = " ".join("%s=%s" % (k, v) for k, v in event.items()
                             if k not in ("kind", "cycle", "tid"))
            print("  %8s  tid=%-3s %-12s %s"
                  % (event.get("cycle"), event.get("tid", "-"),
                     event.get("kind"), attrs))
    return 0


def replay(path: str, workdir=None) -> int:
    matched, new_path, detail = replay_bundle(path, workdir=workdir)
    print(detail)
    if matched:
        print("replay OK: the bundle reproduces deterministically")
        return 0
    print("replay FAILED: %s did not reproduce" % path, file=sys.stderr)
    return 1


def minimize(path: str, out=None, trial_budget=None) -> int:
    from repro.faults.minimize import minimize_bundle

    result = minimize_bundle(path, out_dir=out,
                             trial_budget=trial_budget)
    print("minimized: %s" % result.path)
    print("  %s" % result.summary())
    for line in result.log:
        print("  %s" % line)
    if not result.log:
        print("  (already minimal)")
    print("  verified: minimized bundle replays bit-for-bit (%s)"
          % result.error_type)
    return 0


def fuzz(args) -> int:
    from repro.faults.fuzz import run_fuzz

    report = run_fuzz(
        trials=args.trials, seed=args.seed, out_dir=args.out,
        workloads=args.workloads.split(",") if args.workloads else None,
        schemes=tuple(args.schemes.split(",")),
        cores=tuple(args.cores.split(",")),
        minimize=not args.no_minimize,
        trial_budget=args.trial_budget,
        log=print)
    if report.ok:
        print("fuzz OK: every trial survived or minimized")
        return 0
    print("fuzz FAILED: %d unexpected outcome(s)" % report.unexpected,
          file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Inspect, replay, minimize and fuzz crash bundles.")
    sub = parser.add_subparsers(dest="command", required=True)
    show_p = sub.add_parser("show", help="pretty-print a crash bundle")
    show_p.add_argument("bundle")
    replay_p = sub.add_parser(
        "replay", help="re-run a bundle's workload and verify the crash "
                       "reproduces bit-for-bit")
    replay_p.add_argument("bundle")
    replay_p.add_argument("--workdir", default=None,
                          help="where the replay bundle is written "
                               "(default: alongside the original)")
    min_p = sub.add_parser(
        "minimize", help="delta-debug a failing bundle to a minimal "
                         "fault plan + workload, verified by replay")
    min_p.add_argument("bundle")
    min_p.add_argument("--out", default=None,
                       help="where the minimized bundle is written "
                            "(default: alongside the original)")
    min_p.add_argument("--trial-budget", type=int, default=None,
                      metavar="STEPS",
                      help="step cap per candidate run (default: "
                           "4x the original crash's steps)")
    fuzz_p = sub.add_parser(
        "fuzz", help="seeded random fault plans x workloads x schemes "
                     "x cores; auto-minimizes every failure")
    fuzz_p.add_argument("--trials", type=int, default=25)
    fuzz_p.add_argument("--seed", type=int, default=1993)
    fuzz_p.add_argument("--out", default="fuzz-out",
                        help="minimized bundles land here (raw crashes "
                             "under <out>/raw)")
    fuzz_p.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: all registered)")
    fuzz_p.add_argument("--schemes", default="NS,SNP,SP")
    fuzz_p.add_argument("--cores", default="batched",
                        help='execution cores to draw trials from; the '
                             'retired "generator" name is still accepted '
                             'for bundle-compatible replay draws')
    fuzz_p.add_argument("--trial-budget", type=int, default=300_000,
                        metavar="STEPS")
    fuzz_p.add_argument("--no-minimize", action="store_true",
                        help="keep raw bundles only (skips the "
                             "survive-or-minimize gate)")
    args = parser.parse_args(argv)
    try:
        if args.command == "show":
            return show(args.bundle)
        if args.command == "replay":
            return replay(args.bundle, workdir=args.workdir)
        if args.command == "minimize":
            return minimize(args.bundle, out=args.out,
                            trial_budget=args.trial_budget)
        return fuzz(args)
    except ReproError as exc:
        print("error: %s: %s" % (type(exc).__name__, exc),
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
