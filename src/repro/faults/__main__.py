"""Crash-bundle CLI: ``python -m repro.faults <show|replay> bundle.json``.

``show`` pretty-prints what a bundle captured: the error and its
context, the machine and thread state at the crash, the fault plan and
the tail of the event flight recorder.

``replay`` re-executes the workload the bundle describes (same config,
same seed, same fault plan) and verifies the rerun crashes with a
bit-for-bit identical bundle — the determinism contract that makes an
injected failure diagnosable instead of anecdotal.
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.bundle import load_bundle, replay_bundle
from repro.faults.plan import FaultPlan


def show(path: str) -> int:
    bundle = load_bundle(path)
    error = bundle["error"]
    machine = bundle["machine"]
    print("crash bundle: %s (schema %s v%s)"
          % (path, bundle["schema"], bundle["version"]))
    print()
    print("error: %s: %s" % (error["type"], error["message"]))
    for key in sorted(error.get("context", {})):
        print("  %-14s %s" % (key, error["context"][key]))
    for entry in error.get("blocked", []):
        print("  blocked: %s waits to %s %r (%s)"
              % (entry.get("thread"), entry.get("op"), entry.get("on"),
                 entry.get("detail")))
    print()
    plan = bundle.get("fault_plan")
    if plan:
        print("fault plan: %s" % FaultPlan.from_payload(plan).describe())
    else:
        print("fault plan: none")
    print("config: %s" % " ".join(
        "%s=%s" % (k, bundle["config"][k])
        for k in sorted(bundle["config"])))
    print()
    print("machine: scheme=%s windows=%d cwp=%d wim=%s"
          % (machine["scheme"], machine["n_windows"], machine["cwp"],
             machine["wim"]))
    for entry in machine["occupancy"]:
        print("  w%-2d %-9s %s" % (
            entry["window"], entry["kind"],
            "" if entry["tid"] is None else "tid=%s" % entry["tid"]))
    print()
    print("threads (at step %s):" % bundle.get("steps"))
    for t in bundle["threads"]:
        w = t["windows"]
        print("  %-12s %-8s depth=%-3s resident=%-2s stored=%-2s %s"
              % (t["name"], t["state"], w["depth"], w["resident"],
                 w["stored"],
                 "blocked on %s" % t["blocked_on"]
                 if t["blocked_on"] else ""))
    events = bundle.get("events", [])
    if events:
        print()
        print("last %d events:" % len(events))
        for event in events[-20:]:
            attrs = " ".join("%s=%s" % (k, v) for k, v in event.items()
                             if k not in ("kind", "cycle", "tid"))
            print("  %8s  tid=%-3s %-12s %s"
                  % (event.get("cycle"), event.get("tid", "-"),
                     event.get("kind"), attrs))
    return 0


def replay(path: str, workdir=None) -> int:
    matched, new_path, detail = replay_bundle(path, workdir=workdir)
    print(detail)
    if matched:
        print("replay OK: the bundle reproduces deterministically")
        return 0
    print("replay FAILED: %s did not reproduce" % path, file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Inspect and replay crash bundles.")
    sub = parser.add_subparsers(dest="command", required=True)
    show_p = sub.add_parser("show", help="pretty-print a crash bundle")
    show_p.add_argument("bundle")
    replay_p = sub.add_parser(
        "replay", help="re-run a bundle's workload and verify the crash "
                       "reproduces bit-for-bit")
    replay_p.add_argument("bundle")
    replay_p.add_argument("--workdir", default=None,
                          help="where the replay bundle is written "
                               "(default: alongside the original)")
    args = parser.parse_args(argv)
    if args.command == "show":
        return show(args.bundle)
    return replay(args.bundle, workdir=args.workdir)


if __name__ == "__main__":
    sys.exit(main())
