"""The kernel watchdog: max-steps-without-progress livelock detection.

"Progress" is anything that moves the simulation forward: a tick, a
call, a return, a spawn, or a completed blocking operation.  A pure
yield storm — threads bouncing through the ready queue without ever
moving data — makes none of these, and after ``max_stall`` such steps
the kernel raises :class:`~repro.runtime.errors.LivelockError` with
per-thread diagnostics instead of spinning forever.

The kernel increments a single progress counter at each progress site
and calls :meth:`Watchdog.stalled_for` once per step, so the overhead
is one integer compare when the watchdog is enabled and zero when not.
"""

from __future__ import annotations

DEFAULT_MAX_STALL = 100_000


class Watchdog:
    """Tracks the gap between the step clock and the progress clock."""

    def __init__(self, max_stall: int = DEFAULT_MAX_STALL):
        if max_stall < 1:
            raise ValueError("watchdog max_stall must be >= 1, got %d"
                             % max_stall)
        self.max_stall = max_stall
        self._last_marks = -1
        self._last_step = 0

    def stalled_for(self, marks: int, step: int) -> int:
        """Steps since the progress counter last moved (0 = progress)."""
        if marks != self._last_marks:
            self._last_marks = marks
            self._last_step = step
            return 0
        return step - self._last_step

    def expired(self, marks: int, step: int) -> bool:
        return self.stalled_for(marks, step) >= self.max_stall

    def __repr__(self) -> str:
        return "Watchdog(max_stall=%d)" % self.max_stall
