"""Fault plans: the deterministic, serialisable side of injection.

A :class:`FaultPlan` is a seed plus a tuple of :class:`FaultSpec`.
Everything an injected run does is a pure function of the plan and the
workload, so a plan embedded in a crash bundle replays the identical
failure — the property trace-simplification work on concurrent
programs identifies as what makes concurrency bugs diagnosable.

Fault taxonomy (``FAULT_KINDS``), by injection site:

================  =======  ====================================================
kind              site     effect
================  =======  ====================================================
``register``      save     corrupt an out register as a call's arguments cross
                           the save (caught by argument verification)
``retval``        restore  corrupt the return value crossing the restore
                           (caught by return-value verification)
``wim``           save     flip one WIM bit (caught by the invariant audit)
``cwp``           save     flip the hardware CWP (caught by the audit /
                           geometry checks)
``trap_drop``     save     lose an overflow trap: the save runs straight into
                           an invalid window
``trap_dup``      save     deliver an overflow trap twice
``store_corrupt`` store    corrupt a register inside a spilled frame
``store_fail``    store    backing-store access raises a *transient* error
``store_delay``   store    backing-store access charges extra cycles
                           (survivable: results unchanged, cycles higher)
``sched``         enqueue  deterministically shuffle the ready queue
                           (survivable: results must not depend on order)
================  =======  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: every injectable fault kind, grouped by the hook site that fires it
FAULT_KINDS = (
    "register", "retval", "wim", "cwp", "trap_drop", "trap_dup",
    "store_corrupt", "store_fail", "store_delay", "sched",
)

#: hook site of each kind: "save", "restore", "store" or "enqueue"
SITE_OF: Dict[str, str] = {
    "register": "save",
    "retval": "restore",
    "wim": "save",
    "cwp": "save",
    "trap_drop": "save",
    "trap_dup": "save",
    "store_corrupt": "store",
    "store_fail": "store",
    "store_delay": "store",
    "sched": "enqueue",
}

#: kinds that must be *survived* (architectural results unchanged);
#: everything else must be *detected* (or provably harmless)
SURVIVABLE_KINDS = ("store_delay", "sched")

DEFAULT_SEED = 1993


@dataclass(frozen=True)
class FaultSpec:
    """One injection: fire ``kind`` at the ``at``-th visit of its site.

    ``arg`` parameterises the fault (register index for ``register``,
    window for ``wim``, delay cycles for ``store_delay``); when None
    the injector draws it from the plan's seeded RNG.
    """

    kind: str
    at: int = 1
    arg: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (want one of %s)"
                             % (self.kind, ", ".join(FAULT_KINDS)))
        if self.at < 1:
            raise ValueError("fault trigger 'at' must be >= 1, got %d"
                             % self.at)

    @property
    def site(self) -> str:
        return SITE_OF[self.kind]

    def describe(self) -> str:
        text = "%s@%d" % (self.kind, self.at)
        if self.arg is not None:
            text += ":%d" % self.arg
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded RNG plus the fault specs it drives.

    The plan is the unit of replay: ``FaultPlan.from_payload(
    plan.to_payload())`` round-trips exactly, and two injectors built
    from equal plans perturb a deterministic workload identically.
    """

    seed: int = DEFAULT_SEED
    specs: Tuple[FaultSpec, ...] = ()

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = DEFAULT_SEED) -> "FaultPlan":
        """Parse a CLI spec: ``kind[@at[:arg]]`` comma-separated, or
        ``random:N`` for N RNG-drawn faults.

            FaultPlan.parse("register@3,store_fail@2:0")
            FaultPlan.parse("random:4", seed=7)
        """
        text = (text or "").strip()
        if not text:
            return cls(seed=seed)
        if text.startswith("random:"):
            return cls.random(seed, count=int(text.split(":", 1)[1]))
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            arg: Optional[int] = None
            at = 1
            if "@" in part:
                kind, trigger = part.split("@", 1)
                if ":" in trigger:
                    trigger, raw_arg = trigger.split(":", 1)
                    arg = int(raw_arg)
                at = int(trigger)
            else:
                kind = part
            specs.append(FaultSpec(kind=kind, at=at, arg=arg))
        return cls(seed=seed, specs=tuple(specs))

    @classmethod
    def random(cls, seed: int = DEFAULT_SEED, count: int = 1,
               kinds: Optional[Sequence[str]] = None,
               horizon: int = 25) -> "FaultPlan":
        """``count`` faults with RNG-drawn kinds and trigger points in
        ``[1, horizon]`` — same seed, same plan, always."""
        rng = random.Random(seed)
        pool = tuple(kinds) if kinds else FAULT_KINDS
        specs = tuple(FaultSpec(kind=rng.choice(pool),
                                at=rng.randint(1, horizon))
                      for __ in range(count))
        return cls(seed=seed, specs=specs)

    # -- serialisation ------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "specs": [{"kind": s.kind, "at": s.at, "arg": s.arg}
                          for s in self.specs]}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FaultPlan":
        specs = tuple(FaultSpec(kind=s["kind"], at=int(s["at"]),
                                arg=s.get("arg"))
                      for s in payload.get("specs", []))
        return cls(seed=int(payload.get("seed", DEFAULT_SEED)),
                   specs=specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults (seed=%d)" % self.seed
        return "%s (seed=%d)" % (
            ",".join(s.describe() for s in self.specs), self.seed)

    def __bool__(self) -> bool:
        return bool(self.specs)


def plan_from_arg(text: Optional[str],
                  seed: int = DEFAULT_SEED) -> Optional[FaultPlan]:
    """CLI helper: None/empty ``--faults`` value means no plan."""
    if not text:
        return None
    return FaultPlan.parse(text, seed=seed)
