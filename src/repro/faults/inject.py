"""The fault injector: compiles a :class:`~repro.faults.plan.FaultPlan`
into hook callbacks the CPU, the schemes and the ready queue invoke.

Each hook site keeps an occurrence counter; a spec fires when its
site's counter reaches ``spec.at``.  Every firing is recorded on
:attr:`fired` and published as a ``fault`` event on the trace bus, so
a Perfetto trace shows exactly where the fault landed relative to the
saves, traps and switches around it.

The injector only *perturbs* state — detection is entirely the job of
the existing machinery (argument/signature/return-value verification,
the invariant audit, the geometry checks, the watchdog), which is the
point: a fault the machinery cannot catch and that changes results is
a real robustness bug.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.errors import TransientError
from repro.faults.plan import FaultPlan, FaultSpec

#: marker value written into corrupted registers, shaped like the
#: kernel's signature tuples so it is obvious in dumps and never
#: accidentally equal to real application data
CORRUPT = "fault"

#: extra cycles a ``store_delay`` charges when the spec carries no arg
DEFAULT_STORE_DELAY = 200


class InjectedStoreError(TransientError):
    """A backing-store access failed by injection (transient)."""


class FaultInjector:
    """Stateful executor of one fault plan.

    The kernel wires one injector per run: ``cpu.faults``,
    ``ready.faults`` and (via the CPU) the scheme hooks all point at
    it.  Injectors are single-use — counters and the RNG advance as the
    run proceeds — so replay builds a fresh injector from the plan.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: the trace-event bus; bound by the kernel
        self.events = None
        #: every spec that fired, with its site and concrete detail
        self.fired: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self._pending: Dict[str, Dict[int, List[FaultSpec]]] = {}
        for spec in plan.specs:
            site = self._pending.setdefault(spec.site, {})
            site.setdefault(spec.at, []).append(spec)
        self._trap_action: Optional[str] = None

    def bind(self, events) -> None:
        self.events = events

    def attach(self, kernel) -> None:
        """Wire this injector into ``kernel``, hooking **only** the
        sites the plan actually targets.

        The CPU's per-site hook attributes stay ``None`` for every
        other site, so the unfaulted hot path (and the unfaulted sites
        of a faulted run) keep their single ``is None`` check and never
        pay a callable indirection or a site-counter lookup.
        """
        self.bind(kernel.events)
        # always visible for trap-action consumption and crash bundles
        kernel.cpu.faults = self
        pending = self._pending
        if "save" in pending:
            kernel.cpu._fault_save = self.on_save
        if "restore" in pending:
            kernel.cpu._fault_restore = self.on_restore
        if "store" in pending:
            kernel.cpu._fault_store = self.on_store_access
        if "enqueue" in pending:
            kernel.ready.faults = self

    # -- bookkeeping --------------------------------------------------------

    def _hits(self, site: str) -> List[FaultSpec]:
        """Advance the site counter, return the specs due right now."""
        if site not in self._pending:
            return []
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        return self._pending[site].pop(count, [])

    def _fire(self, spec: FaultSpec, site: str, **detail: Any) -> None:
        record = {"kind": spec.kind, "at": spec.at, "site": site}
        record.update(detail)
        self.fired.append(record)
        events = self.events
        if events is not None and events.active:
            events.emit("fault", tid=detail.get("tid"), fault=spec.kind,
                        at=spec.at, site=site,
                        **{k: v for k, v in detail.items() if k != "tid"})

    # -- hook: cpu.save ------------------------------------------------------

    def on_save(self, cpu, tw) -> None:
        for spec in self._hits("save"):
            kind = spec.kind
            if kind == "register":
                reg = (spec.arg if spec.arg is not None
                       else self.rng.randrange(8))
                cpu.wf.write_out(reg, (CORRUPT, "register", spec.at))
                self._fire(spec, "save", tid=tw.tid, reg=reg)
            elif kind == "wim":
                w = (spec.arg if spec.arg is not None
                     else self.rng.randrange(cpu.n_windows))
                if cpu.wf.is_invalid(w):
                    cpu.wf.mark_valid(w)
                else:
                    cpu.wf.mark_invalid(w)
                self._fire(spec, "save", tid=tw.tid, window=w)
            elif kind == "cwp":
                old = cpu.wf.cwp
                cpu.wf.cwp = cpu.wf.above(old)
                self._fire(spec, "save", tid=tw.tid, old_cwp=old,
                           new_cwp=cpu.wf.cwp)
            elif kind == "trap_drop":
                self._trap_action = "drop"
                self._fire(spec, "save", tid=tw.tid)
            elif kind == "trap_dup":
                self._trap_action = "dup"
                self._fire(spec, "save", tid=tw.tid)

    def take_trap_action(self, tw) -> Optional[str]:
        """Consume the armed drop/dup action at the next overflow trap."""
        action, self._trap_action = self._trap_action, None
        if action is not None and self.events is not None \
                and self.events.active:
            self.events.emit("fault", tid=tw.tid, fault="trap_" + action,
                             site="overflow", applied=True)
        return action

    # -- hook: cpu.restore ---------------------------------------------------

    def on_restore(self, cpu, tw) -> None:
        for spec in self._hits("restore"):
            if spec.kind == "retval":
                cpu.wf.write_in(0, (CORRUPT, "retval", spec.at))
                self._fire(spec, "restore", tid=tw.tid)

    # -- hook: backing-store access (spill or underflow restore) ------------

    def on_store_access(self, op: str, tw, frame, counters) -> None:
        for spec in self._hits("store"):
            kind = spec.kind
            if kind == "store_corrupt":
                frame.local_regs[0] = (CORRUPT, "store", spec.at)
                self._fire(spec, "store", tid=tw.tid, op=op,
                           depth=frame.depth)
            elif kind == "store_fail":
                self._fire(spec, "store", tid=tw.tid, op=op)
                raise InjectedStoreError(
                    "injected backing-store failure during %s" % op,
                    thread=tw.tid, op=op, at=spec.at)
            elif kind == "store_delay":
                delay = (spec.arg if spec.arg is not None
                         else DEFAULT_STORE_DELAY)
                counters.record_compute(delay)
                self._fire(spec, "store", tid=tw.tid, op=op,
                           cycles=delay)

    # -- hook: ready-queue enqueue -------------------------------------------

    def on_enqueue(self, queue) -> None:
        for spec in self._hits("enqueue"):
            if spec.kind == "sched":
                order = list(queue._queue)
                self.rng.shuffle(order)
                queue._queue.clear()
                queue._queue.extend(order)
                self._fire(spec, "enqueue",
                           order=[t.tid for t in order])

    # -- reporting -----------------------------------------------------------

    @property
    def armed(self) -> int:
        """How many specs have not fired yet."""
        return sum(len(specs) for site in self._pending.values()
                   for specs in site.values())

    def summary(self) -> str:
        fired = ", ".join("%s@%d/%s" % (f["kind"], f["at"], f["site"])
                          for f in self.fired) or "none"
        return "faults fired: %s (%d armed, plan %s)" % (
            fired, self.armed, self.plan.describe())
