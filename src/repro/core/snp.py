"""SNP — sharing scheme without private reserved windows (paper §4.5).

Windows are shared among threads; a single global reserved window
guards the *running* thread's growth.  Because a suspended thread's
stack-top out registers physically live in the window above its top —
which is not protected while it sleeps — the outs are saved into the
thread context on every switch-out and restored on switch-in (§4.1).

If the newly-scheduled thread has no windows, the simple policy
allocates the window above the suspended thread's windows: the old
reserved window itself is available, so at most one window must be
spilled to re-establish the reserved window above it (§4.1, Table 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.sharing import SharingScheme
from repro.metrics.counters import SwitchRecord
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.occupancy import FRAME, FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows


class SNPScheme(SharingScheme):
    """Sharing without PRW: one global reserved window."""

    kind = "SNP"

    def __init__(self, cpu, allocation=None):
        super().__init__(cpu, allocation)
        self.reserved = 0
        self.map.set_reserved(self.reserved)
        self.wf.set_wim(set(range(self.wf.n_windows)))

    # -- boundary hooks ------------------------------------------------------

    def boundary_of(self, tw: ThreadWindows) -> int:
        return self.reserved

    def _set_boundary(self, tw: ThreadWindows, w: int) -> None:
        self.map.set_reserved(w)
        self.reserved = w

    def _relocatable_boundary(self, tw: ThreadWindows):
        return self.reserved

    def simple_top(self, out_tw: Optional[ThreadWindows]) -> int:
        # "The window above the suspended thread's is allocated": the
        # old reserved window sits exactly there and is available.
        return self.reserved

    # -- context switch ---------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        wf = self.wf
        regs = wf._regs
        wmap = self.map
        kinds = wmap._kind
        tids = wmap._tid
        saves = 0
        flushed = (self._flush_out_windows(out_tw, flush_out)
                   if flush_out else 0)
        if out_tw is not None and out_tw.resident > 0:
            # The stack-top outs always travel through memory (§4.1).
            ob = wf._out_base[out_tw.cwp]
            out_tw.saved_outs = regs[ob:ob + 8]
        if in_tw.has_windows:
            restores = 0
        else:
            top = (self.reserved if self._simple_alloc else
                   self.allocation.choose_top(self, out_tw, in_tw, need=2))
            if top != self.reserved and kinds[top] is not FREE:
                saves += self._make_free(top)
            # _install_single_frame + _restore_top_frame, inlined (a
            # per-quantum path: every windowless re-entry runs it)
            base = wf._in_base[top]
            mid = base + 8
            restores = 0
            if in_tw.started:
                frames = in_tw.store.frames
                if not frames:
                    raise WindowGeometryError(
                        "started thread %d is windowless with an empty "
                        "backing store" % in_tw.tid)
                frame = frames.pop()
                fault_store = self.cpu._fault_store
                if fault_store is not None:
                    fault_store("restore", in_tw, frame, self.counters)
                expected = in_tw.depth - in_tw.resident
                if frame.depth >= 0 and frame.depth != expected:
                    raise WindowIntegrityError(
                        "thread %d restored frame of depth %d at depth %d"
                        % (in_tw.tid, frame.depth, expected),
                        thread=in_tw.tid, frame_depth=frame.depth,
                        expected=expected)
                regs[base:mid] = frame.ins
                regs[mid:mid + 8] = frame.local_regs
                if len(frame.ins) == 8 and len(frame.local_regs) == 8:
                    wf._frame_pool.append(frame)
                restores = 1
            else:
                regs[base:base + 16] = [0] * 16
                in_tw.depth = 1
            in_tw.cwp = top
            in_tw.bottom = top
            in_tw.resident = 1
            kinds[top] = FRAME
            tids[top] = in_tw.tid
        # Re-site the global reserved window above the incoming
        # thread's top, granting any free run on the way (the WIM must
        # be recomputed for the new thread regardless, §3).
        # _position_boundary, inlined and specialized: ``top`` is the
        # thread's stack-top on both paths above, so the FREE-top case
        # (the overflow path) vanishes and ``above_len`` is
        # ``resident - 1``.
        top = in_tw.cwp
        n = wf.n_windows
        above = wf._above
        resident = in_tw.resident
        relocatable = self.reserved
        limit = n - resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = above[top]
        while count < limit and (kinds[w] is FREE or w == relocatable):
            count += 1
            w = above[w]
        if not count:
            saves += self._make_free(above[top])
            count = 1
            # The eviction may have spilled ``in_tw``'s own bottom;
            # the valid span must use the post-spill resident count.
            resident = in_tw.resident
        boundary = top - count
        if boundary < 0:
            boundary += n
        if relocatable != boundary and kinds[relocatable] is RESERVED:
            kinds[relocatable] = FREE
            tids[relocatable] = None
        kinds[boundary] = RESERVED
        tids[boundary] = None
        self.reserved = boundary
        bitmap = wf._wim
        bitmap[:] = wf._all_invalid
        valid_t = wf._all_valid
        start = boundary + 1
        if start == n:
            start = 0
        end = start + count + resident - 1
        if end <= n:
            bitmap[start:end] = valid_t[start:end]
        else:
            bitmap[start:] = valid_t[start:]
            end -= n
            bitmap[:end] = valid_t[:end]
        saved = in_tw.saved_outs
        if saved is not None:
            ob = wf._out_base[in_tw.cwp]
            regs[ob:ob + 8] = saved
            in_tw.saved_outs = None
        # _run_thread + _note_dispatch, inlined
        wf.cwp = in_tw.cwp
        self.cpu.current = in_tw
        in_tw.started = True
        seq = self._dispatch_seq + 1
        self._dispatch_seq = seq
        self.last_dispatched[in_tw.tid] = seq
        key = (saves, restores, flushed)
        cache = self._switch_cost_cache
        cycles = cache.get(key)
        if cycles is None:
            cycles = (self.cost.snp_switch_cost(saves, restores)
                      + self.cost.flush_cost(flushed))
            cache[key] = cycles
        # _record_switch, inlined (one call per quantum)
        saves += flushed
        counters = self.counters
        counters.context_switches += 1
        counters.switch_transfer_hist[(saves, restores)] += 1
        counters.windows_spilled += saves
        counters.windows_restored += restores
        counters.switch_cycles += cycles
        in_tw.stat_switches += 1
        if counters.keep_trace:
            counters.switch_trace.append(SwitchRecord(
                out_tw.tid if out_tw is not None else None,
                in_tw.tid, saves, restores, cycles))
        if self._tel_switch is not None:
            self._tel_switch.append(cycles)
        if self._tracing:
            self.events.emit(
                "switch", tid=in_tw.tid,
                out_tid=out_tw.tid if out_tw is not None else None,
                saves=saves, restores=restores, cycles=cycles)

    def min_windows(self) -> int:
        return 3
