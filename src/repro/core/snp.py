"""SNP — sharing scheme without private reserved windows (paper §4.5).

Windows are shared among threads; a single global reserved window
guards the *running* thread's growth.  Because a suspended thread's
stack-top out registers physically live in the window above its top —
which is not protected while it sleeps — the outs are saved into the
thread context on every switch-out and restored on switch-in (§4.1).

If the newly-scheduled thread has no windows, the simple policy
allocates the window above the suspended thread's windows: the old
reserved window itself is available, so at most one window must be
spilled to re-establish the reserved window above it (§4.1, Table 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.sharing import SharingScheme
from repro.windows.thread_windows import ThreadWindows


class SNPScheme(SharingScheme):
    """Sharing without PRW: one global reserved window."""

    kind = "SNP"

    def __init__(self, cpu, allocation=None):
        super().__init__(cpu, allocation)
        self.reserved = 0
        self.map.set_reserved(self.reserved)
        self.wf.set_wim(set(range(self.wf.n_windows)))

    # -- boundary hooks ------------------------------------------------------

    def boundary_of(self, tw: ThreadWindows) -> int:
        return self.reserved

    def _set_boundary(self, tw: ThreadWindows, w: int) -> None:
        self.map.set_reserved(w)
        self.reserved = w

    def _relocatable_boundary(self, tw: ThreadWindows):
        return self.reserved

    def simple_top(self, out_tw: Optional[ThreadWindows]) -> int:
        # "The window above the suspended thread's is allocated": the
        # old reserved window sits exactly there and is available.
        return self.reserved

    # -- context switch ---------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        wf = self.wf
        regs = wf._regs
        saves = 0
        flushed = (self._flush_out_windows(out_tw, flush_out)
                   if flush_out else 0)
        if out_tw is not None and out_tw.resident > 0:
            # The stack-top outs always travel through memory (§4.1).
            ob = wf._out_base[out_tw.cwp]
            out_tw.saved_outs = regs[ob:ob + 8]
        if in_tw.has_windows:
            restores = 0
        else:
            top = (self.reserved if self._simple_alloc else
                   self.allocation.choose_top(self, out_tw, in_tw, need=2))
            if top != self.reserved:
                saves += self._make_free(top)
            restores = self._install_single_frame(in_tw, top)
        # Re-site the global reserved window above the incoming
        # thread's top, granting any free run on the way (the WIM must
        # be recomputed for the new thread regardless, §3).
        saves += self._position_boundary(in_tw, in_tw.cwp)
        saved = in_tw.saved_outs
        if saved is not None:
            ob = wf._out_base[in_tw.cwp]
            regs[ob:ob + 8] = saved
            in_tw.saved_outs = None
        # _run_thread + _note_dispatch, inlined
        wf.cwp = in_tw.cwp
        self.cpu.current = in_tw
        in_tw.started = True
        seq = self._dispatch_seq + 1
        self._dispatch_seq = seq
        self.last_dispatched[in_tw.tid] = seq
        key = (saves, restores, flushed)
        cache = self._switch_cost_cache
        cycles = cache.get(key)
        if cycles is None:
            cycles = (self.cost.snp_switch_cost(saves, restores)
                      + self.cost.flush_cost(flushed))
            cache[key] = cycles
        self._record_switch(out_tw, in_tw, saves + flushed, restores,
                            cycles)

    def min_windows(self) -> int:
        return 3
