"""SNP — sharing scheme without private reserved windows (paper §4.5).

Windows are shared among threads; a single global reserved window
guards the *running* thread's growth.  Because a suspended thread's
stack-top out registers physically live in the window above its top —
which is not protected while it sleeps — the outs are saved into the
thread context on every switch-out and restored on switch-in (§4.1).

If the newly-scheduled thread has no windows, the simple policy
allocates the window above the suspended thread's windows: the old
reserved window itself is available, so at most one window must be
spilled to re-establish the reserved window above it (§4.1, Table 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.sharing import SharingScheme
from repro.windows.thread_windows import ThreadWindows


class SNPScheme(SharingScheme):
    """Sharing without PRW: one global reserved window."""

    kind = "SNP"

    def __init__(self, cpu, allocation=None):
        super().__init__(cpu, allocation)
        self.reserved = 0
        self.map.set_reserved(self.reserved)
        self.wf.set_wim(set(range(self.wf.n_windows)))

    # -- boundary hooks ------------------------------------------------------

    def boundary_of(self, tw: ThreadWindows) -> int:
        return self.reserved

    def _set_boundary(self, tw: ThreadWindows, w: int) -> None:
        self.map.set_reserved(w)
        self.reserved = w

    def _relocatable_boundary(self, tw: ThreadWindows):
        return self.reserved

    def simple_top(self, out_tw: Optional[ThreadWindows]) -> int:
        # "The window above the suspended thread's is allocated": the
        # old reserved window sits exactly there and is available.
        return self.reserved

    # -- context switch ---------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        saves = 0
        flushed = self._flush_out_windows(out_tw, flush_out)
        if out_tw is not None and out_tw.has_windows:
            # The stack-top outs always travel through memory (§4.1).
            out_tw.saved_outs = list(self.wf.outs_of(out_tw.cwp))
        if in_tw.has_windows:
            restores = 0
        else:
            top = self.allocation.choose_top(self, out_tw, in_tw, need=2)
            if top != self.reserved:
                saves += self._make_free(top)
            restores = self._install_single_frame(in_tw, top)
        # Re-site the global reserved window above the incoming
        # thread's top, granting any free run on the way (the WIM must
        # be recomputed for the new thread regardless, §3).
        saves += self._position_boundary(in_tw, in_tw.cwp)
        if in_tw.saved_outs is not None:
            self.wf.outs_of(in_tw.cwp)[:] = in_tw.saved_outs
            in_tw.saved_outs = None
        self._run_thread(in_tw)
        self._note_dispatch(in_tw)
        cycles = (self.cost.snp_switch_cost(saves, restores)
                  + self.cost.flush_cost(flushed))
        self._record_switch(out_tw, in_tw, saves + flushed, restores,
                            cycles)

    def min_windows(self) -> int:
        return 3
