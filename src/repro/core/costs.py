"""Cycle cost model, calibrated to the paper's Table 2.

The paper measured context-switch costs on the Fujitsu S-20 (a SPARC)
with a bus-monitoring logic analyzer, counting *all* cycles: instruction
fetch, data transfer, pipeline stalls and flushes.  We cannot rerun
that hardware, so we reconstruct the costs from micro-operation counts
times calibrated per-operation constants:

* window transfers use double-word memory operations: a 16-register
  window is eight ``std`` (3 cycles each) or eight ``ldd`` (2 cycles
  each), as real SPARC trap handlers do;
* trap entry/exit, WIM recomputation, victim scan and scheduler
  bookkeeping get fixed costs.

The constants are chosen so that every derived Table 2 row falls inside
the paper's measured cycle range; :func:`CostModel.table2` regenerates
the table and ``benchmarks/test_table2_context_switch_cycles.py``
checks it against :data:`PAPER_TABLE2`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: scheme, windows transferred, cycle range."""

    scheme: str
    saves: int
    restores: int
    lo: int
    hi: int

    def contains(self, cycles: int) -> bool:
        return self.lo <= cycles <= self.hi

    @property
    def mid(self) -> float:
        return (self.lo + self.hi) / 2.0


#: The paper's measured Table 2 (cycles for a context switch on the S-20).
PAPER_TABLE2: List[Table2Row] = [
    Table2Row("NS", 1, 1, 145, 149),
    Table2Row("NS", 2, 1, 181, 185),
    Table2Row("NS", 3, 1, 217, 221),
    Table2Row("NS", 4, 1, 253, 257),
    Table2Row("NS", 5, 1, 289, 293),
    Table2Row("NS", 6, 1, 325, 329),
    Table2Row("SNP", 0, 0, 113, 118),
    Table2Row("SNP", 0, 1, 142, 147),
    Table2Row("SNP", 1, 0, 162, 171),
    Table2Row("SNP", 1, 1, 187, 196),
    Table2Row("SP", 0, 0, 93, 98),
    Table2Row("SP", 0, 1, 136, 141),
    Table2Row("SP", 1, 1, 180, 197),
    Table2Row("SP", 2, 1, 220, 237),
]


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-operation cycle costs (see module docstring)."""

    # window instructions (no trap)
    save_instr: int = 1
    restore_instr: int = 1

    # memory transfer of one window: 8 double-word stores / loads
    window_store: int = 24   # 8 x std (3 cycles)
    window_load: int = 16    # 8 x ldd (2 cycles)
    # out-register bank only: 4 double words
    outs_store: int = 12     # 4 x std
    outs_load: int = 8       # 4 x ldd

    # trap machinery
    trap_enter: int = 10
    trap_exit: int = 8
    wim_update: int = 12
    victim_scan: int = 10
    trap_bookkeeping: int = 5
    ins_to_outs_copy: int = 8     # 8 register-to-register moves (§3.2)
    restore_emulation: int = 12   # decode + emulate trapped restore (§4.3)

    # context-switch fixed overheads (scheduler, PC/PSR, WIM rewrite)
    ns_switch_fixed: int = 75
    sh_switch_fixed: int = 95     # SP base; SNP adds the outs transfer
    sp_alloc_overhead: int = 14   # setting up fresh windows + PRW

    # per-window marginal costs at switch time
    ns_per_save: int = 36
    ns_per_restore: int = 36
    sh_per_save: int = 51         # victim scan + std x 8 + WIM + bookkeeping
    sh_extra_save: int = 40       # second spill reuses the victim scan
    sh_per_restore: int = 29

    # window flush at switch time vs. via an overflow trap (§4.4): a
    # flushed window costs only the transfer + bookkeeping, the trap
    # route additionally pays trap entry/exit.
    flush_per_window: int = 36

    @classmethod
    def hardware_assisted(cls) -> "CostModel":
        """The multi-threaded-architecture variant of §6.2/§7: "there
        is still software overhead in the best case [but] it will be
        reduced to zero or a few cycles, if the proposed algorithm is
        implemented in multi-threaded architecture".

        Window transfers still cost real memory traffic; the scheduler,
        WIM arithmetic and trap entry/exit become near-free hardware.
        """
        return cls(
            trap_enter=1, trap_exit=1, wim_update=1, victim_scan=1,
            trap_bookkeeping=1, restore_emulation=2,
            ns_switch_fixed=8, sh_switch_fixed=3, sp_alloc_overhead=2,
            ns_per_save=26, ns_per_restore=18,
            sh_per_save=26, sh_extra_save=26, sh_per_restore=18,
            flush_per_window=26,
        )

    # -- trap costs --------------------------------------------------------

    def overflow_cost(self, spilled: bool) -> int:
        """Cycles for one window-overflow trap.

        ``spilled`` is False when the handler merely claims a free
        window above the boundary (possible only in the sharing
        schemes) and True when a victim window is stored to memory.
        """
        cost = self.trap_enter + self.wim_update + self.trap_exit
        if spilled:
            cost += self.window_store + self.victim_scan + self.trap_bookkeeping
        return cost

    def overflow_cost_multi(self, windows: int) -> int:
        """Overflow spilling ``windows`` windows at once (the Tamir &
        Sequin transfer-depth knob; 1 matches :meth:`overflow_cost`)."""
        return (self.overflow_cost(True)
                + (windows - 1) * (self.window_store
                                   + self.trap_bookkeeping))

    def underflow_conventional_multi(self, windows: int) -> int:
        """Conventional underflow restoring ``windows`` ahead."""
        return (self.underflow_conventional_cost()
                + (windows - 1) * (self.window_load
                                   + self.trap_bookkeeping))

    def underflow_conventional_cost(self) -> int:
        """Cycles for the conventional underflow handler (NS scheme):
        restore the missing window below and move the reserved window."""
        return (self.trap_enter + self.window_load + self.wim_update
                + self.trap_exit)

    def underflow_inplace_cost(self) -> int:
        """Cycles for the paper's in-place underflow handler (§3.2):
        copy ins to outs, restore the caller over the callee's window,
        and emulate the trapped ``restore`` instruction (§4.3)."""
        return (self.trap_enter + self.ins_to_outs_copy + self.window_load
                + self.restore_emulation + self.trap_exit)

    # -- context-switch costs ----------------------------------------------

    def ns_switch_cost(self, saves: int, restores: int) -> int:
        """NS: flush ``saves`` active windows, restore the new thread's
        stack-top window (``restores`` is 0 only for a fresh thread)."""
        return (self.ns_switch_fixed + saves * self.ns_per_save
                + restores * self.ns_per_restore)

    def snp_switch_cost(self, saves: int, restores: int) -> int:
        """SNP: the outs of the stack-top window are always saved and
        restored; up to one window spill and one window restore."""
        cost = (self.sh_switch_fixed + self.outs_store + self.outs_load
                + restores * self.sh_per_restore)
        if saves:
            cost += self.sh_per_save + (saves - 1) * self.sh_extra_save
        return cost

    def sp_switch_cost(self, saves: int, restores: int,
                       allocated: bool) -> int:
        """SP: nothing moves when the incoming thread's windows (and its
        PRW) are resident; a windowless thread needs two windows
        allocated, costing up to two spills plus one restore."""
        cost = self.sh_switch_fixed + restores * self.sh_per_restore
        if allocated:
            cost += self.sp_alloc_overhead
        if saves:
            cost += self.sh_per_save + (saves - 1) * self.sh_extra_save
        return cost

    def flush_cost(self, windows: int) -> int:
        """Flushing ``windows`` windows at switch time (NS, or the
        flush-type context switch of §4.4)."""
        return windows * self.flush_per_window

    # -- Table 2 regeneration ------------------------------------------------

    def switch_cost(self, scheme: str, saves: int, restores: int,
                    allocated: bool = False) -> int:
        scheme = scheme.upper()
        if scheme == "NS":
            return self.ns_switch_cost(saves, restores)
        if scheme == "SNP":
            return self.snp_switch_cost(saves, restores)
        if scheme == "SP":
            # Every SP row with a restore corresponds to a windowless
            # dispatch (that is the only situation SP transfers windows).
            return self.sp_switch_cost(saves, restores,
                                       allocated or restores > 0 or saves > 0)
        raise ValueError("unknown scheme %r" % scheme)

    def table2(self) -> Dict[Tuple[str, int, int], int]:
        """Model-derived Table 2: cycles per (scheme, saves, restores)."""
        out = {}
        for row in PAPER_TABLE2:
            out[(row.scheme, row.saves, row.restores)] = self.switch_cost(
                row.scheme, row.saves, row.restores)
        return out

    def table2_check(self) -> List[Tuple[Table2Row, int, bool]]:
        """Each paper row with the model value and an in-range flag."""
        result = []
        derived = self.table2()
        for row in PAPER_TABLE2:
            value = derived[(row.scheme, row.saves, row.restores)]
            result.append((row, value, row.contains(value)))
        return result
