"""SP — sharing scheme with private reserved windows (paper §4.5).

Every thread with resident windows keeps its own private reserved
window (PRW) immediately above its stack-top.  The PRW physically holds
the thread's stack-top out registers and is never given away while the
thread sleeps, so **switching to a thread whose windows are resident
transfers nothing at all** — the best case of Table 2 and the reason SP
wins whenever there are enough windows.

At switch-out, if the suspended thread vacated windows above its top
(by plain restores during its quantum), its PRW is moved down to sit
immediately above the current top; the reserved window carries no data,
so this costs only bookkeeping (§4.1).

A windowless thread needs *two* windows (top frame + PRW), allocated
above the suspended thread's PRW under the simple policy — hence the
scheme's worst case of two spills (Table 2's ``2 1`` row).
"""

from __future__ import annotations

from typing import Optional

from repro.core.sharing import SharingScheme
from repro.metrics.counters import SwitchRecord
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.occupancy import FRAME, FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows


class SPScheme(SharingScheme):
    """Sharing with a private reserved window per thread."""

    kind = "SP"
    _prw_boundary = True

    def __init__(self, cpu, allocation=None):
        super().__init__(cpu, allocation)
        if cpu.n_windows < self.min_windows():
            raise WindowGeometryError(
                "SP needs at least %d windows, got %d"
                % (self.min_windows(), cpu.n_windows))
        #: where to allocate when there is no suspended thread to anchor
        #: on (start of run, or the previous thread exited)
        self._anchor = 0
        self.wf.set_wim(set(range(self.wf.n_windows)))

    # -- boundary hooks -------------------------------------------------------

    def boundary_of(self, tw: ThreadWindows) -> int:
        if tw.prw is None:
            raise WindowGeometryError(
                "thread %d has no PRW while running" % tw.tid)
        return tw.prw

    def _set_boundary(self, tw: ThreadWindows, w: int) -> None:
        self.map.set_reserved(w, tw.tid)
        tw.prw = w

    def _relocatable_boundary(self, tw: ThreadWindows):
        return tw.prw

    def simple_top(self, out_tw: Optional[ThreadWindows]) -> int:
        # "The window above the reserved window of the suspended thread
        # is allocated."
        anchor = self._anchor
        if out_tw is not None and out_tw.prw is not None:
            anchor = out_tw.prw
        return self.wf.above(anchor)

    # -- context switch -----------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        wf = self.wf
        wmap = self.map
        kinds = wmap._kind
        tids = wmap._tid
        saves = 0
        restores = 0
        allocated = False
        flushed = (self._flush_out_windows(out_tw, flush_out)
                   if flush_out else 0)
        if out_tw is not None and out_tw.has_windows:
            # _snug_prw, inlined: move the PRW down to immediately
            # above the stack-top (§4.1) — bookkeeping only.
            snug = wf._above[out_tw.cwp]
            prw = out_tw.prw
            if prw != snug:
                if kinds[snug] is not FREE:
                    raise WindowGeometryError(
                        "window %d above thread %d's top is %s, expected "
                        "vacated" % (snug, out_tw.tid, wmap.kind(snug)))
                kinds[prw] = FREE
                tids[prw] = None
                kinds[snug] = RESERVED
                tids[snug] = out_tw.tid
                out_tw.prw = snug
            self._anchor = out_tw.prw
        if in_tw.has_windows:
            if in_tw.prw is None or in_tw.prw != wf._above[in_tw.cwp]:
                raise WindowGeometryError(
                    "thread %d resident without a snug PRW (%s)"
                    % (in_tw.tid, in_tw.prw))
            # Nothing is transferred: windows, outs and PRW are all in
            # place; the PRW may drift upward over a free run while the
            # WIM is recomputed (costless growth headroom).
        else:
            allocated = True
            if self._simple_alloc:
                anchor = self._anchor
                if out_tw is not None and out_tw.prw is not None:
                    anchor = out_tw.prw
                top = wf._above[anchor]
            else:
                top = self.allocation.choose_top(self, out_tw, in_tw, need=2)
            if kinds[top] is not FREE:
                saves += self._make_free(top)
            # _install_single_frame + _restore_top_frame, inlined (the
            # windowless re-entry path dominates the SP switch mix on
            # small files; every helper call here is per quantum)
            regs = wf._regs
            base = wf._in_base[top]
            mid = base + 8
            if in_tw.started:
                frames = in_tw.store.frames
                if not frames:
                    raise WindowGeometryError(
                        "started thread %d is windowless with an empty "
                        "backing store" % in_tw.tid)
                frame = frames.pop()
                fault_store = self.cpu._fault_store
                if fault_store is not None:
                    fault_store("restore", in_tw, frame, self.counters)
                expected = in_tw.depth - in_tw.resident
                if frame.depth >= 0 and frame.depth != expected:
                    raise WindowIntegrityError(
                        "thread %d restored frame of depth %d at depth %d"
                        % (in_tw.tid, frame.depth, expected),
                        thread=in_tw.tid, frame_depth=frame.depth,
                        expected=expected)
                regs[base:mid] = frame.ins
                regs[mid:mid + 8] = frame.local_regs
                if len(frame.ins) == 8 and len(frame.local_regs) == 8:
                    wf._frame_pool.append(frame)
                restores = 1
            else:
                regs[base:base + 16] = [0] * 16
                in_tw.depth = 1
            in_tw.cwp = top
            in_tw.bottom = top
            in_tw.resident = 1
            kinds[top] = FRAME
            tids[top] = in_tw.tid
        # Place the PRW above the top, granting any free run; a second
        # spill can happen here (the worst case of Table 2's SP rows).
        # _position_boundary, inlined and specialized: ``top`` is the
        # thread's stack-top on both paths above, so the FREE-top case
        # (the overflow path) vanishes and ``above_len`` is
        # ``resident - 1``.
        top = in_tw.cwp
        n = wf.n_windows
        above = wf._above
        resident = in_tw.resident
        relocatable = in_tw.prw
        limit = n - resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = above[top]
        while count < limit and (kinds[w] is FREE or w == relocatable):
            count += 1
            w = above[w]
        if not count:
            saves += self._make_free(above[top])
            count = 1
            # The eviction may have spilled ``in_tw``'s own bottom;
            # the valid span must use the post-spill resident count.
            resident = in_tw.resident
        boundary = top - count
        if boundary < 0:
            boundary += n
        if (relocatable is not None and relocatable != boundary
                and kinds[relocatable] is RESERVED):
            kinds[relocatable] = FREE
            tids[relocatable] = None
        kinds[boundary] = RESERVED
        tids[boundary] = in_tw.tid
        in_tw.prw = boundary
        bitmap = wf._wim
        bitmap[:] = wf._all_invalid
        valid_t = wf._all_valid
        start = boundary + 1
        if start == n:
            start = 0
        end = start + count + resident - 1
        if end <= n:
            bitmap[start:end] = valid_t[start:end]
        else:
            bitmap[start:] = valid_t[start:]
            end -= n
            bitmap[:end] = valid_t[:end]
        saved = in_tw.saved_outs
        if saved is not None:
            # Only set when the thread lost its PRW to a spill while
            # suspended; the outs move back into the window above top.
            ob = wf._out_base[in_tw.cwp]
            wf._regs[ob:ob + 8] = saved
            in_tw.saved_outs = None
        # _run_thread + _note_dispatch, inlined
        wf.cwp = in_tw.cwp
        self.cpu.current = in_tw
        in_tw.started = True
        seq = self._dispatch_seq + 1
        self._dispatch_seq = seq
        self.last_dispatched[in_tw.tid] = seq
        key = (saves, restores, allocated, flushed)
        cache = self._switch_cost_cache
        cycles = cache.get(key)
        if cycles is None:
            cycles = (self.cost.sp_switch_cost(saves, restores, allocated)
                      + self.cost.flush_cost(flushed))
            cache[key] = cycles
        # _record_switch, inlined (one call per quantum)
        saves += flushed
        counters = self.counters
        counters.context_switches += 1
        counters.switch_transfer_hist[(saves, restores)] += 1
        counters.windows_spilled += saves
        counters.windows_restored += restores
        counters.switch_cycles += cycles
        in_tw.stat_switches += 1
        if counters.keep_trace:
            counters.switch_trace.append(SwitchRecord(
                out_tw.tid if out_tw is not None else None,
                in_tw.tid, saves, restores, cycles))
        if self._tel_switch is not None:
            self._tel_switch.append(cycles)
        if self._tracing:
            self.events.emit(
                "switch", tid=in_tw.tid,
                out_tid=out_tw.tid if out_tw is not None else None,
                saves=saves, restores=restores, cycles=cycles)

    def _snug_prw(self, tw: ThreadWindows) -> None:
        """Move the PRW down to immediately above the stack-top (§4.1).

        The windows between are vacated frames (already free in the
        map); the reserved window has no contents to copy, but the outs
        of the stack-top live in the window immediately above the top,
        so they are copied into the new PRW position register bank —
        physically they are already there, because the outs of window
        ``w`` *are* the ins of ``above(w)``; only bookkeeping moves.
        """
        assert tw.cwp is not None and tw.prw is not None
        snug = self.wf.above(tw.cwp)
        if tw.prw == snug:
            return
        if not self.map.is_free(snug):
            raise WindowGeometryError(
                "window %d above thread %d's top is %s, expected vacated"
                % (snug, tw.tid, self.map.kind(snug)))
        self.map.set_free(tw.prw)
        self.map.set_reserved(snug, tw.tid)
        tw.prw = snug

    def retire(self, tw: ThreadWindows) -> None:
        if tw.prw is not None and self._anchor == tw.prw:
            self._anchor = 0
        super().retire(tw)

    def min_windows(self) -> int:
        return 4
