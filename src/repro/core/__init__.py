"""The paper's contribution: window-management schemes for multiple
threads in cyclic register windows.

Three evaluated schemes (paper §4.5):

* :class:`NSScheme` — non-sharing: flush all active windows on every
  context switch (the conventional approach).
* :class:`SNPScheme` — sharing without private reserved windows: one
  global reserved window; underflow traps restore the caller's frame
  *in place* (the paper's key idea, §3.2), so underflow never spills.
* :class:`SPScheme` — sharing with a private reserved window (PRW) per
  thread: switching to a thread whose windows are resident transfers
  nothing at all.

Plus the working-set ready-queue policy of §4.6 and the allocation
policy variations of §4.2.
"""

from repro.core.allocation import (
    AllocationPolicy,
    FreeSearchAllocation,
    LRUBottomAllocation,
    SimpleAllocation,
)
from repro.core.costs import CostModel, PAPER_TABLE2, Table2Row
from repro.core.ns import NSScheme
from repro.core.scheme import Scheme
from repro.core.snp import SNPScheme
from repro.core.sp import SPScheme
from repro.core.working_set import FIFOPolicy, QueuePolicy, WorkingSetPolicy

SCHEMES = {
    "NS": NSScheme,
    "SNP": SNPScheme,
    "SP": SPScheme,
}


def make_scheme(name: str, cpu, **kwargs):
    """Build a scheme by its paper name ("NS", "SNP" or "SP")."""
    try:
        cls = SCHEMES[name.upper()]
    except KeyError:
        raise ValueError(
            "unknown scheme %r (expected one of %s)"
            % (name, ", ".join(sorted(SCHEMES))))
    return cls(cpu, **kwargs)


__all__ = [
    "AllocationPolicy",
    "FreeSearchAllocation",
    "LRUBottomAllocation",
    "SimpleAllocation",
    "CostModel",
    "PAPER_TABLE2",
    "Table2Row",
    "NSScheme",
    "Scheme",
    "SNPScheme",
    "SPScheme",
    "FIFOPolicy",
    "QueuePolicy",
    "WorkingSetPolicy",
    "SCHEMES",
    "make_scheme",
]
