"""Whole-system invariant checks, used heavily by the test suite.

These verify the geometric claims DESIGN.md (and the paper's §3) rely
on: contiguous per-thread regions, exactly one reserved window per
boundary, WIM matching the running thread, and occupancy/thread-state
agreement.  Production runs never call this (it is O(n_windows *
n_threads) per call); property tests call it after every step.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.windows.errors import WindowGeometryError
from repro.windows.occupancy import FRAME, FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows


def check_invariants(cpu, scheme, threads: Iterable[ThreadWindows]) -> None:
    """Raise :class:`WindowGeometryError` on any violated invariant."""
    wf = cpu.wf
    wmap = cpu.map
    n = wf.n_windows
    threads = list(threads)

    claimed: Dict[int, str] = {}

    for tw in threads:
        tw.check_consistency(n)
        for w in tw.resident_windows(n):
            if w in claimed:
                raise WindowGeometryError(
                    "window %d claimed twice (%s and thread %d)"
                    % (w, claimed[w], tw.tid),
                    window=w, thread=tw.tid, claimed_by=claimed[w])
            claimed[w] = "thread %d frame" % tw.tid
            kind, tid = wmap.entry(w)
            if kind != FRAME or tid != tw.tid:
                raise WindowGeometryError(
                    "window %d should be thread %d's frame, map says %s/%s"
                    % (w, tw.tid, kind, tid),
                    window=w, thread=tw.tid, map_kind=kind, map_tid=tid)
        if tw.prw is not None:
            if not tw.has_windows:
                raise WindowGeometryError(
                    "thread %d keeps a PRW with no resident frames" % tw.tid,
                    thread=tw.tid, prw=tw.prw)
            if tw.prw in claimed:
                raise WindowGeometryError(
                    "window %d claimed twice (%s and thread %d PRW)"
                    % (tw.prw, claimed[tw.prw], tw.tid),
                    window=tw.prw, thread=tw.tid,
                    claimed_by=claimed[tw.prw])
            claimed[tw.prw] = "thread %d PRW" % tw.tid
            kind, tid = wmap.entry(tw.prw)
            if kind != RESERVED or tid != tw.tid:
                raise WindowGeometryError(
                    "window %d should be thread %d's PRW, map says %s/%s"
                    % (tw.prw, tw.tid, kind, tid),
                    window=tw.prw, thread=tw.tid, map_kind=kind,
                    map_tid=tid)
        # Backing-store frames must be contiguous in depth, outermost
        # first, directly below the resident frames.
        for i, frame in enumerate(tw.store.frames):
            if frame.depth >= 0 and frame.depth != i + 1:
                raise WindowGeometryError(
                    "thread %d stored frame %d has depth %d"
                    % (tw.tid, i, frame.depth),
                    thread=tw.tid, frame=i, depth=frame.depth,
                    expected_depth=i + 1)

    # Scheme-global reserved window bookkeeping.
    if hasattr(scheme, "reserved"):
        w = scheme.reserved
        if w in claimed:
            raise WindowGeometryError(
                "global reserved window %d also %s" % (w, claimed[w]),
                window=w, claimed_by=claimed[w])
        claimed[w] = "global reserved"
        if wmap.kind(w) != RESERVED or wmap.tid(w) is not None:
            raise WindowGeometryError(
                "global reserved window %d is %s in the map"
                % (w, wmap.kind(w)), window=w, map_kind=wmap.kind(w))

    # Every unclaimed window must be free in the map.
    for w in range(n):
        if w not in claimed and wmap.kind(w) != FREE:
            raise WindowGeometryError(
                "window %d is %s/%s in the map but unclaimed"
                % (w, wmap.kind(w), wmap.tid(w)),
                window=w, map_kind=wmap.kind(w), map_tid=wmap.tid(w))

    # The running thread's CWP must match the hardware, and WIM must
    # invalidate everything outside its valid region.
    running = cpu.current
    if running is not None:
        if running.cwp != wf.cwp:
            raise WindowGeometryError(
                "running thread %d cwp %s != hardware cwp %d"
                % (running.tid, running.cwp, wf.cwp),
                thread=running.tid, thread_cwp=running.cwp,
                hardware_cwp=wf.cwp)
        if scheme.shares_windows:
            for w in running.resident_windows(n):
                if wf.is_invalid(w):
                    raise WindowGeometryError(
                        "running thread %d's window %d is invalid in WIM"
                        % (running.tid, w), thread=running.tid, window=w)
            boundary = scheme.boundary_of(running)
            if not wf.is_invalid(boundary):
                raise WindowGeometryError(
                    "boundary window %d is valid in WIM" % boundary,
                    thread=running.tid, window=boundary)
        else:
            if wf.wim != {scheme.reserved}:
                raise WindowGeometryError(
                    "NS WIM %s != {reserved %d}"
                    % (sorted(wf.wim), scheme.reserved),
                    wim=sorted(wf.wim), reserved=scheme.reserved)
