"""Abstract window-management scheme and shared geometry helpers.

A scheme owns all policy: how overflow and underflow traps are handled,
what a context switch moves, and where windows are allocated.  The CPU
(:class:`repro.windows.cpu.WindowCPU`) calls back into the bound scheme
when a ``save``/``restore`` hits an invalid window.

Geometry facts the shared helpers rely on (see DESIGN.md):

* a thread's resident frames form a cyclically contiguous run
  ``[cwp .. bottom]`` (top at ``cwp``, oldest at ``bottom``);
* regions pack around the cyclic file so that, scanning *upward* from
  any region boundary, the first non-free window is some thread's
  stack-bottom window (a private reserved window is only exposed when
  its thread has no frames, and it is freed at that moment);
* overflow spills therefore always remove a stack-bottom window, never
  a stack-top one — exactly the property §3.1 demands.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.metrics.counters import SwitchRecord
from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.occupancy import FRAME, FREE
from repro.windows.thread_windows import ThreadWindows


class Scheme(ABC):
    """Base class for the NS, SNP and SP window-management schemes."""

    #: paper name of the scheme ("NS", "SNP" or "SP")
    kind: str = "?"
    #: does the scheme share windows among threads?
    shares_windows: bool = False

    def __init__(self, cpu):
        self.cpu = cpu
        self.wf = cpu.wf
        self.map = cpu.map
        self.cost = cpu.cost
        self.counters = cpu.counters
        #: the CPU's trace-event bus (shared with the kernel)
        self.events = cpu.events
        #: mirror of ``events.active`` (see EventBus.watch_activity)
        self._tracing = False
        self.events.watch_activity(self._set_tracing)
        cpu.bind_scheme(self)
        self.threads: Dict[int, ThreadWindows] = {}
        #: memo of switch-cost calls — the cost model is a frozen
        #: dataclass, so (args) -> cycles never changes per instance
        self._switch_cost_cache: Dict[tuple, int] = {}
        #: telemetry buffers (see Kernel.attach_telemetry); per-site
        #: attributes that stay None unless metrics are armed, so the
        #: uninstrumented paths pay one ``is None`` check per event.
        #: When armed they are plain lists — one C-speed append per
        #: event; RunTelemetry bulk-folds them into its histograms
        self._tel_switch = None
        self._tel_trap = None

    def _set_tracing(self, active: bool) -> None:
        self._tracing = active

    # -- trace events -------------------------------------------------------

    def _record_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows, saves: int, restores: int,
                       cycles: int) -> None:
        """Count one context switch and publish its trace event.

        Equivalent to ``counters.record_switch`` with the per-thread
        dict update batched onto ``in_tw`` (folded at run end)."""
        out_tid = out_tw.tid if out_tw is not None else None
        counters = self.counters
        counters.context_switches += 1
        counters.switch_transfer_hist[(saves, restores)] += 1
        counters.windows_spilled += saves
        counters.windows_restored += restores
        counters.switch_cycles += cycles
        in_tw.stat_switches += 1
        if counters.keep_trace:
            counters.switch_trace.append(
                SwitchRecord(out_tid, in_tw.tid, saves, restores, cycles))
        if self._tel_switch is not None:
            self._tel_switch.append(cycles)
        if self._tracing:
            self.events.emit("switch", tid=in_tw.tid, out_tid=out_tid,
                             saves=saves, restores=restores, cycles=cycles)

    # -- registration ------------------------------------------------------

    def register(self, tw: ThreadWindows) -> None:
        if tw.tid in self.threads:
            raise WindowGeometryError("thread %d already registered" % tw.tid)
        self.threads[tw.tid] = tw

    # -- abstract policy -----------------------------------------------------

    @abstractmethod
    def handle_overflow(self, tw: ThreadWindows) -> None:
        """Make the window above the CWP valid and free (trap handler)."""

    @abstractmethod
    def handle_underflow(self, tw: ThreadWindows) -> None:
        """Bring the caller's frame back from memory (trap handler)."""

    @abstractmethod
    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        """Suspend ``out_tw`` (if any), dispatch ``in_tw``.

        ``flush_out`` requests the flush-type context switch of §4.4:
        the suspended thread's windows are written out at switch time
        (cheaper than later overflow traps when the thread will sleep
        long).  The NS scheme always flushes, so it ignores the flag.
        """

    def min_windows(self) -> int:
        """Smallest window file this scheme can run on."""
        return 3

    # -- thread exit ---------------------------------------------------------

    def retire(self, tw: ThreadWindows) -> None:
        """Free every window the exiting thread holds."""
        for w in tw.resident_windows(self.wf.n_windows):
            self.map.set_free(w)
        if tw.prw is not None:
            self.map.set_free(tw.prw)
        tw.drop_windows()
        tw.depth = 0
        tw.store.frames.clear()
        if self.cpu.current is tw:
            self.cpu.current = None

    # -- shared helpers --------------------------------------------------------

    def _frame_of_bottom(self, tw: ThreadWindows) -> Frame:
        """Capture the bottom resident frame with its logical depth."""
        assert tw.bottom is not None
        depth = tw.depth - tw.resident + 1
        return self.wf.capture(tw.bottom, depth)

    def _spill_bottom(self, victim: ThreadWindows) -> int:
        """Spill the victim's stack-bottom window to its backing store.

        Frees the window in the map; if the victim loses its last frame
        its private reserved window (if any) is freed too, keeping the
        "first occupant above a boundary is a bottom" invariant alive.
        """
        wf = self.wf
        old_bottom = victim.bottom
        if victim.resident == 0 or old_bottom is None:
            raise WindowGeometryError(
                "thread %d has no bottom window to spill" % victim.tid)
        depth = victim.depth - victim.resident + 1
        # wf.capture, inlined (per-spill path)
        regs = wf._regs
        base = wf._in_base[old_bottom]
        mid = base + 8
        pool = wf._frame_pool
        if pool:
            frame = pool.pop()
            frame.ins[:] = regs[base:mid]
            frame.local_regs[:] = regs[mid:mid + 8]
            frame.depth = depth
        else:
            frame = Frame(regs[base:mid], regs[mid:mid + 8], depth)
        fault_store = self.cpu._fault_store
        if fault_store is not None:
            fault_store("spill", victim, frame, self.counters)
        frames = victim.store.frames
        if frames:
            last_depth = frames[-1].depth
            if last_depth >= 0 and depth >= 0 and depth != last_depth + 1:
                raise WindowIntegrityError(
                    "non-contiguous spill: depth %d pushed over depth %d"
                    % (depth, last_depth))
        frames.append(frame)
        kinds = self.map._kind
        tids = self.map._tid
        victim.resident -= 1
        if victim.resident == 0:
            victim.cwp = None
            victim.bottom = None
        else:
            victim.bottom = wf._above[old_bottom]
        kinds[old_bottom] = FREE
        tids[old_bottom] = None
        if victim.resident == 0 and victim.prw is not None:
            # The thread's last frame is gone, so its PRW goes too; the
            # stack-top outs physically lived in the PRW's in registers
            # and must survive in the thread context until re-dispatch.
            prw_base = wf._in_base[victim.prw]
            victim.saved_outs = wf._regs[prw_base:prw_base + 8]
            kinds[victim.prw] = FREE
            tids[victim.prw] = None
            victim.prw = None
        return old_bottom

    def _make_free(self, w: int) -> int:
        """Spill whatever occupies window ``w`` until it is free.

        Returns the number of windows spilled.  Only frame occupants are
        legal here; hitting a reserved window means the caller broke the
        packing invariant.  A frame occupant is always its owner's
        stack-bottom (checked below), so one spill frees the window and
        the loop never runs twice; the spill itself is
        :meth:`_spill_bottom` inlined — this is the once-per-switch
        eviction path of the windowless dispatch.
        """
        wmap = self.map
        kinds = wmap._kind
        wf = self.wf
        saves = 0
        while kinds[w] is not FREE:
            if kinds[w] is not FRAME:
                raise WindowGeometryError(
                    "window %d is %s; expected a stack-bottom frame"
                    % (w, wmap.kind(w)))
            victim = self.threads[wmap._tid[w]]
            if victim.bottom != w:
                raise WindowGeometryError(
                    "window %d belongs to thread %d but is not its bottom"
                    % (w, victim.tid))
            # -- _spill_bottom, inlined (old_bottom == w) --
            tids = wmap._tid
            depth = victim.depth - victim.resident + 1
            regs = wf._regs
            base = wf._in_base[w]
            mid = base + 8
            pool = wf._frame_pool
            if pool:
                frame = pool.pop()
                frame.ins[:] = regs[base:mid]
                frame.local_regs[:] = regs[mid:mid + 8]
                frame.depth = depth
            else:
                frame = Frame(regs[base:mid], regs[mid:mid + 8], depth)
            fault_store = self.cpu._fault_store
            if fault_store is not None:
                fault_store("spill", victim, frame, self.counters)
            frames = victim.store.frames
            if frames:
                last_depth = frames[-1].depth
                if last_depth >= 0 and depth >= 0 \
                        and depth != last_depth + 1:
                    raise WindowIntegrityError(
                        "non-contiguous spill: depth %d pushed over "
                        "depth %d" % (depth, last_depth))
            frames.append(frame)
            victim.resident -= 1
            if victim.resident == 0:
                victim.cwp = None
                victim.bottom = None
            else:
                victim.bottom = wf._above[w]
            kinds[w] = FREE
            tids[w] = None
            if victim.resident == 0 and victim.prw is not None:
                prw_base = wf._in_base[victim.prw]
                victim.saved_outs = regs[prw_base:prw_base + 8]
                kinds[victim.prw] = FREE
                tids[victim.prw] = None
                victim.prw = None
            saves += 1
        return saves

    def _restore_top_frame(self, tw: ThreadWindows, w: int) -> None:
        """Load the thread's innermost stored frame into window ``w``."""
        frames = tw.store.frames
        if not frames:
            raise WindowIntegrityError(
                "underflow from an empty backing store")
        frame = frames.pop()
        fault_store = self.cpu._fault_store
        if fault_store is not None:
            fault_store("restore", tw, frame, self.counters)
        expected = tw.depth - tw.resident
        if frame.depth >= 0 and frame.depth != expected:
            raise WindowIntegrityError(
                "thread %d restored frame of depth %d at depth %d"
                % (tw.tid, frame.depth, expected),
                thread=tw.tid, frame_depth=frame.depth, expected=expected)
        wf = self.wf
        regs = wf._regs
        base = wf._in_base[w]
        mid = base + 8
        regs[base:mid] = frame.ins
        regs[mid:mid + 8] = frame.local_regs
        wf.release_frame(frame)

    def _install_single_frame(self, tw: ThreadWindows, w: int) -> int:
        """Give ``tw`` exactly one resident window at ``w``; returns the
        number of window restores performed (0 for a fresh thread)."""
        restores = 0
        if tw.started:
            if not tw.store:
                raise WindowGeometryError(
                    "started thread %d is windowless with an empty "
                    "backing store" % tw.tid)
            self._restore_top_frame(tw, w)
            restores = 1
        else:
            self.wf.clear_window(w)
            tw.depth = 1
        tw.cwp = w
        tw.bottom = w
        tw.resident = 1
        wmap = self.map
        wmap._kind[w] = FRAME
        wmap._tid[w] = tw.tid
        return restores

    def _run_thread(self, tw: ThreadWindows) -> None:
        """Point the hardware at the incoming thread."""
        assert tw.cwp is not None
        self.wf.cwp = tw.cwp
        self.cpu.current = tw
        tw.started = True

    def _wim_only_thread(self, tw: ThreadWindows) -> None:
        """WIM: only the thread's resident windows are valid (§3)."""
        self.wf.set_wim_except(tw.resident_windows(self.wf.n_windows))
