"""Abstract window-management scheme and shared geometry helpers.

A scheme owns all policy: how overflow and underflow traps are handled,
what a context switch moves, and where windows are allocated.  The CPU
(:class:`repro.windows.cpu.WindowCPU`) calls back into the bound scheme
when a ``save``/``restore`` hits an invalid window.

Geometry facts the shared helpers rely on (see DESIGN.md):

* a thread's resident frames form a cyclically contiguous run
  ``[cwp .. bottom]`` (top at ``cwp``, oldest at ``bottom``);
* regions pack around the cyclic file so that, scanning *upward* from
  any region boundary, the first non-free window is some thread's
  stack-bottom window (a private reserved window is only exposed when
  its thread has no frames, and it is freed at that moment);
* overflow spills therefore always remove a stack-bottom window, never
  a stack-top one — exactly the property §3.1 demands.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.thread_windows import ThreadWindows


class Scheme(ABC):
    """Base class for the NS, SNP and SP window-management schemes."""

    #: paper name of the scheme ("NS", "SNP" or "SP")
    kind: str = "?"
    #: does the scheme share windows among threads?
    shares_windows: bool = False

    def __init__(self, cpu):
        self.cpu = cpu
        self.wf = cpu.wf
        self.map = cpu.map
        self.cost = cpu.cost
        self.counters = cpu.counters
        #: the CPU's trace-event bus (shared with the kernel)
        self.events = cpu.events
        cpu.bind_scheme(self)
        self.threads: Dict[int, ThreadWindows] = {}

    # -- trace events -------------------------------------------------------

    def _record_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows, saves: int, restores: int,
                       cycles: int) -> None:
        """Count one context switch and publish its trace event."""
        out_tid = out_tw.tid if out_tw is not None else None
        self.counters.record_switch(out_tid, in_tw.tid, saves, restores,
                                    cycles)
        if self.events.active:
            self.events.emit("switch", tid=in_tw.tid, out_tid=out_tid,
                             saves=saves, restores=restores, cycles=cycles)

    # -- registration ------------------------------------------------------

    def register(self, tw: ThreadWindows) -> None:
        if tw.tid in self.threads:
            raise WindowGeometryError("thread %d already registered" % tw.tid)
        self.threads[tw.tid] = tw

    # -- abstract policy -----------------------------------------------------

    @abstractmethod
    def handle_overflow(self, tw: ThreadWindows) -> None:
        """Make the window above the CWP valid and free (trap handler)."""

    @abstractmethod
    def handle_underflow(self, tw: ThreadWindows) -> None:
        """Bring the caller's frame back from memory (trap handler)."""

    @abstractmethod
    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        """Suspend ``out_tw`` (if any), dispatch ``in_tw``.

        ``flush_out`` requests the flush-type context switch of §4.4:
        the suspended thread's windows are written out at switch time
        (cheaper than later overflow traps when the thread will sleep
        long).  The NS scheme always flushes, so it ignores the flag.
        """

    def min_windows(self) -> int:
        """Smallest window file this scheme can run on."""
        return 3

    # -- thread exit ---------------------------------------------------------

    def retire(self, tw: ThreadWindows) -> None:
        """Free every window the exiting thread holds."""
        for w in tw.resident_windows(self.wf.n_windows):
            self.map.set_free(w)
        if tw.prw is not None:
            self.map.set_free(tw.prw)
        tw.drop_windows()
        tw.depth = 0
        tw.store.frames.clear()
        if self.cpu.current is tw:
            self.cpu.current = None

    # -- shared helpers --------------------------------------------------------

    def _frame_of_bottom(self, tw: ThreadWindows) -> Frame:
        """Capture the bottom resident frame with its logical depth."""
        assert tw.bottom is not None
        depth = tw.depth - tw.resident + 1
        return self.wf.capture(tw.bottom, depth)

    def _spill_bottom(self, victim: ThreadWindows) -> int:
        """Spill the victim's stack-bottom window to its backing store.

        Frees the window in the map; if the victim loses its last frame
        its private reserved window (if any) is freed too, keeping the
        "first occupant above a boundary is a bottom" invariant alive.
        """
        frame = self._frame_of_bottom(victim)
        faults = self.cpu.faults
        if faults is not None:
            faults.on_store_access("spill", victim, frame, self.counters)
        victim.store.push(frame)
        old_bottom = victim.shrink_bottom(self.wf.n_windows)
        self.map.set_free(old_bottom)
        if victim.resident == 0 and victim.prw is not None:
            # The thread's last frame is gone, so its PRW goes too; the
            # stack-top outs physically lived in the PRW's in registers
            # and must survive in the thread context until re-dispatch.
            victim.saved_outs = list(self.wf.ins_of(victim.prw))
            self.map.set_free(victim.prw)
            victim.prw = None
        return old_bottom

    def _make_free(self, w: int) -> int:
        """Spill whatever occupies window ``w`` until it is free.

        Returns the number of windows spilled.  Only frame occupants are
        legal here; hitting a reserved window means the caller broke the
        packing invariant.
        """
        saves = 0
        while not self.map.is_free(w):
            if not self.map.is_frame(w):
                raise WindowGeometryError(
                    "window %d is %s; expected a stack-bottom frame"
                    % (w, self.map.kind(w)))
            victim = self.threads[self.map.frame_tid(w)]
            if victim.bottom != w:
                raise WindowGeometryError(
                    "window %d belongs to thread %d but is not its bottom"
                    % (w, victim.tid))
            self._spill_bottom(victim)
            saves += 1
        return saves

    def _restore_top_frame(self, tw: ThreadWindows, w: int) -> None:
        """Load the thread's innermost stored frame into window ``w``."""
        frame = tw.store.pop()
        faults = self.cpu.faults
        if faults is not None:
            faults.on_store_access("restore", tw, frame, self.counters)
        expected = tw.depth - tw.resident
        if frame.depth >= 0 and frame.depth != expected:
            raise WindowIntegrityError(
                "thread %d restored frame of depth %d at depth %d"
                % (tw.tid, frame.depth, expected),
                thread=tw.tid, frame_depth=frame.depth, expected=expected)
        self.wf.load(w, frame)

    def _install_single_frame(self, tw: ThreadWindows, w: int) -> int:
        """Give ``tw`` exactly one resident window at ``w``; returns the
        number of window restores performed (0 for a fresh thread)."""
        restores = 0
        if tw.started:
            if not tw.store:
                raise WindowGeometryError(
                    "started thread %d is windowless with an empty "
                    "backing store" % tw.tid)
            self._restore_top_frame(tw, w)
            restores = 1
        else:
            self.wf.clear_window(w)
            tw.depth = 1
        tw.cwp = w
        tw.bottom = w
        tw.resident = 1
        self.map.set_frame(w, tw.tid)
        return restores

    def _run_thread(self, tw: ThreadWindows) -> None:
        """Point the hardware at the incoming thread."""
        assert tw.cwp is not None
        self.wf.cwp = tw.cwp
        self.cpu.current = tw
        tw.started = True

    def _wim_only_thread(self, tw: ThreadWindows) -> None:
        """WIM: only the thread's resident windows are valid (§3)."""
        n = self.wf.n_windows
        valid = set(tw.resident_windows(n))
        self.wf.set_wim(set(range(n)) - valid)
