"""Shared machinery of the two window-sharing schemes (SNP and SP).

Both schemes use the paper's key algorithm (§3.2): on a window
*underflow*, the caller's frame is restored **in place** — into the
same physical window the callee used — after the callee's in registers
(return values, frame linkage) are copied to its out registers.  The
CWP does not physically move; logically the thread is one frame
shallower.  Underflow therefore never spills a window, which is what
makes sharing windows among threads tractable (§3.1 problems 1–3).

On a window *overflow*, the boundary (the global reserved window in
SNP, the thread's private reserved window in SP) moves one window up;
if the window above the boundary holds another thread's stack-bottom
frame, that frame is spilled — always a stack-bottom, never a
stack-top, exactly as the paper requires.
"""

from __future__ import annotations

from typing import Optional

from repro.core.allocation import AllocationPolicy, SimpleAllocation
from repro.core.scheme import Scheme
from repro.metrics.counters import TrapRecord
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.occupancy import FRAME, FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows

#: free windows granted as growth headroom when a boundary is placed
#: (see ``SharingScheme.grant_headroom``); module-level so the static
#: window model (:mod:`repro.analysis.winmodel`) shares the value.
GRANT_HEADROOM = 4


class SharingScheme(Scheme):
    """Common trap handling for the SNP and SP schemes."""

    shares_windows = True
    #: True when the boundary is a per-thread PRW (SP); False when it is
    #: the single global reserved window (SNP).  Lets the shared hot
    #: paths read the boundary directly instead of a virtual call.
    _prw_boundary = False

    #: how many free windows are granted as growth headroom when the
    #: boundary is placed (typical per-quantum call-depth excursion);
    #: granting costs nothing — the WIM is recomputed anyway — but an
    #: unbounded grant would push the boundary far from the thread and
    #: crowd the next windowless allocation into its neighbour's back.
    grant_headroom = GRANT_HEADROOM

    def __init__(self, cpu, allocation: Optional[AllocationPolicy] = None):
        super().__init__(cpu)
        self.allocation = (allocation if allocation is not None
                           else SimpleAllocation())
        #: the default policy just delegates to ``simple_top``; skip
        #: the double indirection on the hot windowless-dispatch path
        self._simple_alloc = type(self.allocation) is SimpleAllocation
        self._dispatch_seq = 0
        self.last_dispatched = {}
        #: trap costs cached off the (frozen) cost model at construction
        #: instead of being recomputed on every trap
        self._overflow_spill_cost = self.cost.overflow_cost(True)
        self._overflow_free_cost = self.cost.overflow_cost(False)
        self._underflow_cost = self.cost.underflow_inplace_cost()

    # -- hooks the concrete schemes provide ---------------------------------

    def boundary_of(self, tw: ThreadWindows) -> int:
        """The reserved window guarding the running thread's growth."""
        raise NotImplementedError

    def _set_boundary(self, tw: ThreadWindows, w: int) -> None:
        """Record ``w`` as the new boundary (map + scheme bookkeeping)."""
        raise NotImplementedError

    def simple_top(self, out_tw: Optional[ThreadWindows]) -> int:
        """Where the simple allocation policy (§4.2) puts a windowless
        thread's new stack-top window."""
        raise NotImplementedError

    # -- traps ----------------------------------------------------------------

    def handle_overflow(self, tw: ThreadWindows) -> None:
        wf = self.wf
        above = wf._above
        boundary = above[wf.cwp]
        if self._prw_boundary:
            expected = tw.prw
            if expected is None:
                raise WindowGeometryError(
                    "thread %d has no PRW while running" % tw.tid)
        else:
            expected = self.reserved
        if boundary != expected:
            raise WindowGeometryError(
                "%s overflow at window %d but the boundary is %d"
                % (self.kind, boundary, expected))
        if above[boundary] == wf.cwp:
            raise WindowGeometryError(
                "window file too small: overflow wrapped onto the CWP")
        # The old boundary becomes the thread's new stack-top window;
        # the boundary is re-placed above it, granting any free run on
        # the way (recomputing the WIM costs the same either way).
        wmap = self.map
        wmap._kind[boundary] = FREE
        wmap._tid[boundary] = None
        spilled = self._position_boundary(tw, top=boundary)
        cycles = (self._overflow_spill_cost if spilled
                  else self._overflow_free_cost)
        counters = self.counters
        counters.overflow_traps += 1
        if spilled:
            counters.windows_spilled += 1
        counters.trap_cycles += cycles
        if counters.keep_trace:
            counters.trap_trace.append(
                TrapRecord("overflow", tw.tid, spilled > 0, False, cycles))
        if self._tel_trap is not None:
            self._tel_trap.append(cycles)
        if self._tracing:
            self.events.emit("overflow", tid=tw.tid, spilled=spilled,
                             cycles=cycles)

    def _position_boundary(self, tw: ThreadWindows, top: int) -> int:
        """Place the thread's boundary (global reserved window or PRW)
        above window ``top``, granting the contiguous run of free
        windows in between as valid growth room, and rebuild the WIM.

        ``top`` is the thread's stack-top window — or the window a
        trapped ``save`` is about to claim.  Returns the number of
        windows spilled (0 or 1: when not even one free window exists
        above ``top``, the stack-bottom frame sitting there is spilled
        to become the boundary).
        """
        wf = self.wf
        wmap = self.map
        n = wf.n_windows
        above = wf._above
        kinds = wmap._kind
        tids = wmap._tid
        prw_boundary = self._prw_boundary
        relocatable = tw.prw if prw_boundary else self.reserved
        resident = tw.resident
        # ``top`` is either the thread's resident stack-top (a FRAME,
        # the context-switch path) or the window just above it that the
        # trapped save is claiming (freed by the caller, the overflow
        # path); either way the resident span plus ``top`` is one
        # contiguous cyclic run ending at window cwp + resident - 1.
        if kinds[top] is FRAME:
            limit = n - resident
            above_len = resident - 1   # valid windows above ``top``
        else:
            limit = n - resident - 1
            above_len = resident
        headroom = self.grant_headroom + 1
        if limit > headroom:
            limit = headroom
        count = 0
        w = above[top]
        while count < limit and (kinds[w] is FREE or w == relocatable):
            count += 1
            w = above[w]
        saves = 0
        if not count:
            saves = self._make_free(above[top])
            if saves > 1:
                raise WindowGeometryError(
                    "boundary placement spilled %d windows" % saves)
            count = 1
            # The eviction may have spilled ``tw``'s *own* bottom (the
            # file held nothing but this thread); the valid span must
            # reflect the post-spill resident count.
            if kinds[top] is FRAME:
                above_len = tw.resident - 1
            else:
                above_len = tw.resident
        boundary = (top - count) % n
        if (relocatable is not None and relocatable != boundary
                and kinds[relocatable] is RESERVED):
            kinds[relocatable] = FREE
            tids[relocatable] = None
        kinds[boundary] = RESERVED
        if prw_boundary:
            tids[boundary] = tw.tid
            tw.prw = boundary
        else:
            tids[boundary] = None
            self.reserved = boundary
        # The whole valid set — granted run, ``top``, resident span —
        # is the single cyclic span of count + above_len windows just
        # above the boundary, so the WIM rebuild is (at most) two
        # slice copies from the all-valid template.
        bitmap = wf._wim
        bitmap[:] = wf._all_invalid
        valid_t = wf._all_valid
        start = boundary + 1
        if start == n:
            start = 0
        end = start + count + above_len
        if end <= n:
            bitmap[start:end] = valid_t[start:end]
        else:
            bitmap[start:] = valid_t[start:]
            end -= n
            bitmap[:end] = valid_t[:end]
        return saves

    def _relocatable_boundary(self, tw: ThreadWindows):
        """The thread-or-scheme boundary window that may be re-sited
        while placing a new boundary (None when there is none)."""
        raise NotImplementedError

    def handle_underflow(self, tw: ThreadWindows) -> None:
        """The paper's in-place restore (§3.2 / Figure 8)."""
        wf = self.wf
        w = wf.cwp
        if tw.resident != 1 or tw.bottom != w:
            raise WindowGeometryError(
                "underflow with resident=%d bottom=%s cwp=%d"
                % (tw.resident, tw.bottom, w))
        if not tw.store:
            raise WindowGeometryError(
                "thread %d underflowed with an empty backing store" % tw.tid)
        # Return values and frame linkage move to the caller's outs.
        regs = wf._regs
        src = wf._in_base[w]
        dst = wf._out_base[w]
        regs[dst:dst + 8] = regs[src:src + 8]
        # The caller's frame comes back *into the callee's window*.
        frame = tw.store.frames.pop()
        fault_store = self.cpu._fault_store
        if fault_store is not None:
            fault_store("restore", tw, frame, self.counters)
        expected = tw.depth - tw.resident
        if frame.depth >= 0 and frame.depth != expected:
            raise WindowIntegrityError(
                "thread %d restored frame of depth %d at depth %d"
                % (tw.tid, frame.depth, expected),
                thread=tw.tid, frame_depth=frame.depth, expected=expected)
        mid = src + 8
        regs[src:mid] = frame.ins
        regs[mid:mid + 8] = frame.local_regs
        if len(frame.ins) == 8 and len(frame.local_regs) == 8:
            wf._frame_pool.append(frame)
        tw.depth -= 1
        # CWP, bottom, resident, WIM and occupancy all stay put: the
        # thread virtually moved one window down without physical motion.
        cycles = self._underflow_cost
        counters = self.counters
        counters.underflow_traps += 1
        counters.windows_restored += 1
        counters.trap_cycles += cycles
        if counters.keep_trace:
            counters.trap_trace.append(
                TrapRecord("underflow", tw.tid, False, True, cycles))
        if self._tel_trap is not None:
            self._tel_trap.append(cycles)
        if self._tracing:
            self.events.emit("underflow", tid=tw.tid, restored=1,
                             cycles=cycles, inplace=True)

    # -- flush-type context switch (§4.4) ------------------------------------

    def _flush_out_windows(self, out_tw: Optional[ThreadWindows],
                           flush_out: bool) -> int:
        """Write out every window of the suspended thread at switch
        time.  Cheaper per window than the later overflow traps it
        avoids, because the trap entry/exit overhead is not paid."""
        if not flush_out or out_tw is None or not out_tw.has_windows:
            return 0
        assert out_tw.cwp is not None
        out_tw.saved_outs = list(self.wf.outs_of(out_tw.cwp))
        count = 0
        while out_tw.resident:
            self._spill_bottom(out_tw)
            count += 1
        return count

    # -- dispatch bookkeeping ----------------------------------------------

    def _note_dispatch(self, tw: ThreadWindows) -> None:
        self._dispatch_seq += 1
        self.last_dispatched[tw.tid] = self._dispatch_seq
