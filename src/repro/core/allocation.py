"""Window-allocation policies for windowless threads (paper §4.2).

When a scheduled thread has no resident windows, the sharing schemes
must pick where its new stack-top window (and, in SP, its private
reserved window) goes.  The paper evaluates only the *simple* policy —
allocate immediately above the suspended thread's windows — and notes
that searching for free windows or evicting a least-recently-used
stack-bottom "may be worth the extra cost".  We implement all three;
the extra policies are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.windows.thread_windows import ThreadWindows


class AllocationPolicy(ABC):
    """Chooses the physical window for a windowless thread's new top."""

    name = "?"

    @abstractmethod
    def choose_top(self, scheme, out_tw: Optional[ThreadWindows],
                   in_tw: ThreadWindows, need: int) -> int:
        """Return the window for the incoming thread's stack-top frame.

        ``need`` is the total number of windows the scheme will claim
        starting at the returned window and going upward (2 for both
        SNP — top + relocated reserved — and SP — top + PRW).
        """


class SimpleAllocation(AllocationPolicy):
    """The paper's evaluated policy: allocate directly above the
    suspended thread's windows (SNP: at the old reserved window; SP:
    above the suspended thread's PRW)."""

    name = "simple"

    def choose_top(self, scheme, out_tw, in_tw, need: int) -> int:
        return scheme.simple_top(out_tw)


class FreeSearchAllocation(AllocationPolicy):
    """Search for a free run of at least ``need`` windows before
    spilling anything; fall back to the simple policy when none exists.

    The *longest* free run is chosen and the thread is placed at its
    lower (+1) end, maximising the growth headroom above — placing it
    directly under another region's bottom would make the very next
    ``save`` evict that region.
    """

    name = "free-search"

    def choose_top(self, scheme, out_tw, in_tw, need: int) -> int:
        best_top, best_len = _longest_free_run(scheme.map)
        if best_len >= need:
            return best_top
        return scheme.simple_top(out_tw)


def _longest_free_run(wmap):
    """(lower end, length) of the longest cyclic run of free windows.

    A run's *lower end* is its +1-most window (the one whose below-
    neighbour is occupied); placing a thread there leaves the rest of
    the run above it as growth headroom.
    """
    n = wmap.n_windows
    if wmap.free_count() == n:
        return 0, n
    best_end, best_len = -1, 0
    for w in range(n):
        if not wmap.is_free(w) or wmap.is_free((w + 1) % n):
            continue  # not the lower end of a run
        length = 0
        cur = w
        while wmap.is_free(cur):
            length += 1
            cur = (cur - 1) % n
        if length > best_len:
            best_end, best_len = w, length
    return best_end, best_len


class LRUBottomAllocation(AllocationPolicy):
    """When no free run exists, evict from the stack-bottom of the
    least-recently-dispatched thread instead of whatever happens to sit
    above the suspended thread."""

    name = "lru-bottom"

    def __init__(self):
        self._free_search = FreeSearchAllocation()

    def choose_top(self, scheme, out_tw, in_tw, need: int) -> int:
        wmap = scheme.map
        for top in range(wmap.n_windows):
            run = [(top - i) % wmap.n_windows for i in range(need)]
            if all(wmap.is_free(w) for w in run):
                return top
        recency = getattr(scheme, "last_dispatched", {})
        candidates = [
            tw for tw in scheme.threads.values()
            if tw.has_windows and tw.tid != in_tw.tid
            and (out_tw is None or tw.tid != out_tw.tid)
        ]
        if not candidates:
            return scheme.simple_top(out_tw)
        lru = min(candidates, key=lambda tw: recency.get(tw.tid, -1))
        assert lru.bottom is not None
        return lru.bottom
