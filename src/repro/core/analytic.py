"""Closed-form performance model of the three schemes.

The paper reasons qualitatively: "Efficiency of the proposed scheme is
directly affected by the total window activity; if it is smaller than
the number of physical windows, the proposed scheme works well" (§5),
and Figure 12 shows sharing-scheme switch costs approaching their best
case once windows suffice.  This module turns that reasoning into
arithmetic so the simulation can be sanity-checked against it:

* given per-quantum behaviour statistics (window activity per thread,
  switch count, call counts), predict cycle totals per scheme in the
  two limiting regimes — *windows plentiful* (total window activity
  fits; sharing switches hit their best case and traps vanish) and
  *windows scarce* (every switch reloads, every deep call spills);
* the measured curve must then lie between the two bounds, and
  approach the plentiful bound as the window count grows.

This is deliberately a bounding model, not a queueing model: its value
is catching simulator regressions (a cost accounted twice, a trap
path that stopped firing), not precise interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costs import CostModel


@dataclass(frozen=True)
class WorkloadStats:
    """Scheme-independent behaviour of one workload configuration.

    All of these are observable under *any* scheme (they are fixed by
    the program and the buffer sizes, §5.2): take them from a
    :class:`repro.metrics.counters.Counters` of any run.
    """

    context_switches: int
    saves: int
    restores: int
    compute_cycles: int
    #: mean windows used per scheduling quantum (§5, tracker-measured)
    window_activity_per_thread: float
    #: threads concurrently scheduled (§5)
    concurrency: float

    @property
    def total_window_activity(self) -> float:
        """§5: the product of per-thread activity and concurrency."""
        return self.window_activity_per_thread * self.concurrency


class AnalyticModel:
    """Upper/lower cycle bounds per scheme from workload statistics."""

    def __init__(self, stats: WorkloadStats, cost: CostModel = None):
        self.stats = stats
        self.cost = cost if cost is not None else CostModel()

    # -- helpers -------------------------------------------------------------

    def windows_plentiful(self, n_windows: int) -> bool:
        """The §5 criterion for the sharing schemes to work well."""
        return n_windows >= self.stats.total_window_activity

    def _base_cycles(self) -> float:
        """Scheme-independent work: compute + the save/restore
        instructions themselves."""
        return (self.stats.compute_cycles
                + self.stats.saves * self.cost.save_instr
                + self.stats.restores * self.cost.restore_instr)

    # -- NS ----------------------------------------------------------------------

    def ns_cycles(self) -> float:
        """NS is window-count independent: every switch flushes the
        active windows (~the per-thread activity) and restores one, and
        each flushed-but-needed window returns via an underflow trap."""
        s = self.stats
        per_switch_flush = max(1.0, s.window_activity_per_thread)
        switch = s.context_switches * self.cost.ns_switch_cost(1, 1)
        switch += (s.context_switches * (per_switch_flush - 1)
                   * self.cost.ns_per_save)
        hidden_underflows = (s.context_switches
                             * max(0.0, per_switch_flush - 1))
        traps = (hidden_underflows
                 * self.cost.underflow_conventional_cost())
        return self._base_cycles() + switch + traps

    # -- sharing lower bound (windows plentiful) ------------------------------------

    def sharing_floor_cycles(self, scheme: str) -> float:
        """Every switch is the Table 2 best case; no window traps."""
        s = self.stats
        if scheme.upper() == "SP":
            per_switch = self.cost.sp_switch_cost(0, 0, False)
        else:
            per_switch = self.cost.snp_switch_cost(0, 0)
        return self._base_cycles() + s.context_switches * per_switch

    # -- sharing upper bound (windows scarce) ---------------------------------------

    def sharing_ceiling_cycles(self, scheme: str) -> float:
        """Every switch reloads the thread's working set through the
        allocation path, and every quantum re-spills it."""
        s = self.stats
        activity = max(1.0, s.window_activity_per_thread)
        if scheme.upper() == "SP":
            per_switch = self.cost.sp_switch_cost(2, 1, True)
        else:
            per_switch = self.cost.snp_switch_cost(1, 1)
        trap_cycles = (s.context_switches * activity
                       * (self.cost.overflow_cost(True)
                          + self.cost.underflow_inplace_cost()))
        return (self._base_cycles()
                + s.context_switches * per_switch + trap_cycles)

    # -- the headline prediction ------------------------------------------------------

    def sharing_beats_ns_when_plentiful(self, scheme: str) -> bool:
        return self.sharing_floor_cycles(scheme) < self.ns_cycles()


def stats_from_run(counters, tracker) -> WorkloadStats:
    """Build workload statistics from a finished instrumented run."""
    return WorkloadStats(
        context_switches=counters.context_switches,
        saves=counters.saves,
        restores=counters.restores,
        compute_cycles=counters.compute_cycles,
        window_activity_per_thread=tracker.mean_window_activity(),
        concurrency=tracker.mean_concurrency(),
    )
