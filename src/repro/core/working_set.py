"""Ready-queue policies: FIFO and the working-set concept (paper §4.6).

The working-set idea transplants virtual-memory working sets onto
register windows: give scheduling priority to threads whose windows are
still resident, so the aggregate window working set of the concurrently
scheduled threads stays inside the physical window file.  The paper's
low-overhead realisation — which we copy exactly — changes *only* what
happens when a thread is awoken: if the awoken thread still has
windows, it is enqueued at the *front* of the ready queue; otherwise at
the back.  The base scheduler stays FIFO and the context-switch path is
untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.windows.thread_windows import ThreadWindows

FRONT = "front"
BACK = "back"


class QueuePolicy(ABC):
    """Decides where an awoken thread enters the ready queue."""

    name = "?"

    @abstractmethod
    def enqueue_position(self, tw: ThreadWindows) -> str:
        """Return FRONT or BACK for a thread being awoken."""

    def yield_position(self, tw: ThreadWindows) -> str:
        """Where a thread that voluntarily yields re-enters the queue."""
        return BACK


class FIFOPolicy(QueuePolicy):
    """Plain first-in-first-out scheduling (the paper's default)."""

    name = "fifo"

    def enqueue_position(self, tw: ThreadWindows) -> str:
        return BACK


class WorkingSetPolicy(QueuePolicy):
    """§4.6: an awoken thread with resident windows jumps the queue."""

    name = "working-set"

    def enqueue_position(self, tw: ThreadWindows) -> str:
        return FRONT if tw.has_windows else BACK
