"""NS — the non-sharing scheme (paper §4.5, the conventional baseline).

Windows are never shared between threads: a context switch flushes
every active window of the suspended thread to memory and restores only
the stack-top window of the scheduled thread.  Deeper frames come back
later through ordinary underflow traps — the "hidden overhead" the
paper points out in §6.2.

Trap handling is the *basic* algorithm of §2: a single reserved window;
overflow spills the stack-bottom window (Figure 3); underflow restores
the missing window below the CWP and moves the reserved window down
(Figure 4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.scheme import Scheme
from repro.metrics.counters import SwitchRecord, TrapRecord
from repro.windows.backing_store import Frame
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.occupancy import FRAME, FREE, RESERVED
from repro.windows.thread_windows import ThreadWindows

#: Tamir & Sequin transfer-depth default ("transferring one window is
#: the best in most cases", §2); shared with the static window model
#: (:mod:`repro.analysis.winmodel`) so the two never drift apart.
DEFAULT_TRANSFER_DEPTH = 1


class NSScheme(Scheme):
    """Non-sharing: flush all active windows on every context switch.

    ``transfer_depth`` is the Tamir & Sequin knob the paper cites in
    §2: how many windows each overflow spills / each underflow restores
    ahead.  The paper follows their finding that "transferring one
    window is the best in most cases"; other depths are provided for
    the ablation benchmark that re-verifies the claim on our workload.
    """

    kind = "NS"
    shares_windows = False

    def __init__(self, cpu, transfer_depth: int = DEFAULT_TRANSFER_DEPTH):
        super().__init__(cpu)
        if transfer_depth < 1:
            raise WindowGeometryError(
                "transfer depth must be >= 1, got %d" % transfer_depth)
        self.transfer_depth = transfer_depth
        self.reserved = 0
        self.map.set_reserved(self.reserved)
        self.wf.set_wim_only(self.reserved)
        #: trap costs for 1..transfer_depth windows, cached off the
        #: (frozen) cost model at construction (index 0 unused)
        self._overflow_costs = [0] + [
            self.cost.overflow_cost_multi(k)
            for k in range(1, transfer_depth + 1)]
        self._underflow_costs = [0] + [
            self.cost.underflow_conventional_multi(k)
            for k in range(1, transfer_depth + 1)]

    # -- traps (basic algorithm, §2) ----------------------------------------

    def handle_overflow(self, tw: ThreadWindows) -> None:
        """Figure 3: spill the thread's stack-bottom window(s); the
        last freed window becomes the new reserved window."""
        boundary = self.wf.above(self.wf.cwp)
        if boundary != self.reserved:
            raise WindowGeometryError(
                "NS overflow at window %d but reserved is %d"
                % (boundary, self.reserved))
        if tw.resident < 2:
            raise WindowGeometryError(
                "NS overflow with %d resident frames" % tw.resident)
        spills = min(self.transfer_depth, tw.resident - 1)
        new_reserved = self.reserved
        for __ in range(spills):
            new_reserved = self._spill_bottom(tw)
        self.map.set_free(self.reserved)
        self.map.set_reserved(new_reserved)
        self.reserved = new_reserved
        wf = self.wf
        wim = wf._wim
        wim[:] = wf._all_valid
        wim[new_reserved] = 1
        cycles = self._overflow_costs[spills]
        counters = self.counters
        counters.overflow_traps += 1
        counters.windows_spilled += 1
        counters.trap_cycles += cycles
        if counters.keep_trace:
            counters.trap_trace.append(
                TrapRecord("overflow", tw.tid, True, False, cycles))
        if self._tel_trap is not None:
            self._tel_trap.append(cycles)
        if self._tracing:
            self.events.emit("overflow", tid=tw.tid, spilled=spills,
                             cycles=cycles)

    def handle_underflow(self, tw: ThreadWindows) -> None:
        """Figure 4: restore the missing frame(s) into the window(s)
        below the CWP and move the reserved window further down."""
        wf = self.wf
        target = wf.below(wf.cwp)
        if target != self.reserved:
            raise WindowGeometryError(
                "NS underflow at window %d but reserved is %d"
                % (target, self.reserved))
        if tw.resident != 1:
            raise WindowGeometryError(
                "NS underflow with %d resident frames" % tw.resident)
        restores = min(self.transfer_depth, len(tw.store),
                       wf.n_windows - 2)
        if restores < 1:
            raise WindowGeometryError(
                "NS underflow with an empty backing store")
        # Innermost stored frame goes to the target window, the next
        # ones (read-ahead, transfer_depth > 1) below it.
        regs = wf._regs
        in_base = wf._in_base
        below = wf._below
        kinds = self.map._kind
        tids = self.map._tid
        frames = tw.store.frames
        w = target
        for i in range(restores):
            frame = frames.pop()
            expected = tw.depth - 1 - i
            if frame.depth >= 0 and frame.depth != expected:
                raise WindowIntegrityError(
                    "thread %d restored frame of depth %d at depth %d"
                    % (tw.tid, frame.depth, expected))
            base = in_base[w]
            mid = base + 8
            regs[base:mid] = frame.ins
            regs[mid:mid + 8] = frame.local_regs
            if len(frame.ins) == 8 and len(frame.local_regs) == 8:
                wf._frame_pool.append(frame)
            kinds[w] = FRAME
            tids[w] = tw.tid
            last = w
            w = below[w]
        # The callee's window is vacated; the caller's frame now lives
        # in what was the reserved window.
        kinds[wf.cwp] = FREE
        tids[wf.cwp] = None
        wf.cwp = target
        tw.cwp = target
        tw.bottom = last
        tw.resident = restores
        tw.depth -= 1
        new_reserved = below[last]
        if kinds[new_reserved] is not FREE:
            raise WindowGeometryError(
                "NS: window %d below the restored frames is %s"
                % (new_reserved, self.map.kind(new_reserved)))
        kinds[new_reserved] = RESERVED
        tids[new_reserved] = None
        self.reserved = new_reserved
        wim = wf._wim
        wim[:] = wf._all_valid
        wim[new_reserved] = 1
        cycles = self._underflow_costs[restores]
        counters = self.counters
        counters.underflow_traps += 1
        counters.windows_restored += 1
        counters.trap_cycles += cycles
        if counters.keep_trace:
            counters.trap_trace.append(
                TrapRecord("underflow", tw.tid, False, True, cycles))
        if self._tel_trap is not None:
            self._tel_trap.append(cycles)
        if self._tracing:
            self.events.emit("underflow", tid=tw.tid, restored=restores,
                             cycles=cycles, inplace=False)

    # -- context switch --------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        # NS always flushes; the flush_out hint (§4.4) changes nothing.
        # The whole switch — flush-all, single-frame install, outs
        # restore, WIM rebuild — runs against the flat register file
        # and the raw occupancy arrays: this is the hottest loop of the
        # NS evaluation sweeps (one flush per quantum, §6.2).
        wf = self.wf
        regs = wf._regs
        wmap = self.map
        kinds = wmap._kind
        tids = wmap._tid
        fault_store = self.cpu._fault_store
        saves = 0
        if out_tw is not None and out_tw.resident > 0:
            ob = wf._out_base[out_tw.cwp]
            out_tw.saved_outs = regs[ob:ob + 8]
            # -- _flush_all_inline, inlined (one flush per quantum;
            # the loop spills every resident window, bottom first) --
            above = wf._above
            in_base = wf._in_base
            pool = wf._frame_pool
            frames = out_tw.store.frames
            bottom = out_tw.bottom
            depth = out_tw.depth - out_tw.resident + 1
            while out_tw.resident > 0:
                base = in_base[bottom]
                mid = base + 8
                if pool:
                    frame = pool.pop()
                    frame.ins[:] = regs[base:mid]
                    frame.local_regs[:] = regs[mid:mid + 8]
                    frame.depth = depth
                else:
                    frame = Frame(regs[base:mid], regs[mid:mid + 8],
                                  depth)
                if fault_store is not None:
                    fault_store("spill", out_tw, frame, self.counters)
                if frames:
                    last_depth = frames[-1].depth
                    if last_depth >= 0 and depth >= 0 \
                            and depth != last_depth + 1:
                        raise WindowIntegrityError(
                            "non-contiguous spill: depth %d pushed "
                            "over depth %d" % (depth, last_depth))
                frames.append(frame)
                kinds[bottom] = FREE
                tids[bottom] = None
                out_tw.resident -= 1
                bottom = above[bottom]
                depth += 1
                saves += 1
            out_tw.cwp = None
            out_tw.bottom = None
        top = wf._above[self.reserved]
        if kinds[top] is not FREE:
            raise WindowGeometryError(
                "NS: window %d above the reserved window is %s after a flush"
                % (top, wmap.kind(top)))
        base = wf._in_base[top]
        mid = base + 8
        restores = 0
        if in_tw.started:
            frames = in_tw.store.frames
            if not frames:
                raise WindowGeometryError(
                    "started thread %d is windowless with an empty "
                    "backing store" % in_tw.tid)
            frame = frames.pop()
            if fault_store is not None:
                fault_store("restore", in_tw, frame, self.counters)
            depth = frame.depth
            if depth >= 0 and depth != in_tw.depth:
                raise WindowIntegrityError(
                    "thread %d restored frame of depth %d at depth %d"
                    % (in_tw.tid, depth, in_tw.depth),
                    thread=in_tw.tid, frame_depth=depth,
                    expected=in_tw.depth)
            regs[base:mid] = frame.ins
            regs[mid:mid + 8] = frame.local_regs
            if len(frame.ins) == 8 and len(frame.local_regs) == 8:
                wf._frame_pool.append(frame)
            restores = 1
        else:
            regs[base:base + 16] = [0] * 16
            in_tw.depth = 1
        in_tw.cwp = top
        in_tw.bottom = top
        in_tw.resident = 1
        kinds[top] = FRAME
        tids[top] = in_tw.tid
        saved = in_tw.saved_outs
        if saved is not None:
            ob = wf._out_base[top]
            regs[ob:ob + 8] = saved
            in_tw.saved_outs = None
        wf.cwp = top
        self.cpu.current = in_tw
        in_tw.started = True
        wim = wf._wim
        wim[:] = wf._all_valid
        wim[self.reserved] = 1
        key = (saves, restores)
        cache = self._switch_cost_cache
        cycles = cache.get(key)
        if cycles is None:
            cycles = self.cost.ns_switch_cost(saves, restores)
            cache[key] = cycles
        # _record_switch, inlined (one call per quantum)
        counters = self.counters
        counters.context_switches += 1
        counters.switch_transfer_hist[(saves, restores)] += 1
        counters.windows_spilled += saves
        counters.windows_restored += restores
        counters.switch_cycles += cycles
        in_tw.stat_switches += 1
        if counters.keep_trace:
            counters.switch_trace.append(SwitchRecord(
                out_tw.tid if out_tw is not None else None,
                in_tw.tid, saves, restores, cycles))
        if self._tel_switch is not None:
            self._tel_switch.append(cycles)
        if self._tracing:
            self.events.emit(
                "switch", tid=in_tw.tid,
                out_tid=out_tw.tid if out_tw is not None else None,
                saves=saves, restores=restores, cycles=cycles)

    def _flush_all_inline(self, tw: ThreadWindows, fault_store) -> int:
        """Spill every resident window, outermost (bottom) first.

        The caller has already saved the stack-top outs; NS threads
        never hold a PRW, so the generic :meth:`Scheme._spill_bottom`
        PRW bookkeeping does not apply here.
        """
        wf = self.wf
        below_to_above = wf._above
        kinds = self.map._kind
        tids = self.map._tid
        frames = tw.store.frames
        counters = self.counters
        regs = wf._regs
        in_base = wf._in_base
        pool = wf._frame_pool
        bottom = tw.bottom
        depth = tw.depth - tw.resident + 1
        flushed = 0
        while tw.resident > 0:
            # wf.capture, inlined (one per flushed window)
            base = in_base[bottom]
            mid = base + 8
            if pool:
                frame = pool.pop()
                frame.ins[:] = regs[base:mid]
                frame.local_regs[:] = regs[mid:mid + 8]
                frame.depth = depth
            else:
                frame = Frame(regs[base:mid], regs[mid:mid + 8], depth)
            if fault_store is not None:
                fault_store("spill", tw, frame, counters)
            if frames:
                last_depth = frames[-1].depth
                if last_depth >= 0 and depth >= 0 \
                        and depth != last_depth + 1:
                    raise WindowIntegrityError(
                        "non-contiguous spill: depth %d pushed over depth %d"
                        % (depth, last_depth))
            frames.append(frame)
            kinds[bottom] = FREE
            tids[bottom] = None
            tw.resident -= 1
            bottom = below_to_above[bottom]
            depth += 1
            flushed += 1
        tw.cwp = None
        tw.bottom = None
        return flushed

    def _flush_all(self, tw: ThreadWindows) -> int:
        """Flush every active window, outermost (bottom) first, and save
        the stack-top out registers in the thread context."""
        assert tw.cwp is not None
        tw.saved_outs = list(self.wf.outs_of(tw.cwp))
        return self._flush_all_inline(tw, self.cpu._fault_store)
