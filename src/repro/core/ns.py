"""NS — the non-sharing scheme (paper §4.5, the conventional baseline).

Windows are never shared between threads: a context switch flushes
every active window of the suspended thread to memory and restores only
the stack-top window of the scheduled thread.  Deeper frames come back
later through ordinary underflow traps — the "hidden overhead" the
paper points out in §6.2.

Trap handling is the *basic* algorithm of §2: a single reserved window;
overflow spills the stack-bottom window (Figure 3); underflow restores
the missing window below the CWP and moves the reserved window down
(Figure 4).
"""

from __future__ import annotations

from typing import Optional

from repro.core.scheme import Scheme
from repro.windows.errors import WindowGeometryError, WindowIntegrityError
from repro.windows.thread_windows import ThreadWindows


class NSScheme(Scheme):
    """Non-sharing: flush all active windows on every context switch.

    ``transfer_depth`` is the Tamir & Sequin knob the paper cites in
    §2: how many windows each overflow spills / each underflow restores
    ahead.  The paper follows their finding that "transferring one
    window is the best in most cases"; other depths are provided for
    the ablation benchmark that re-verifies the claim on our workload.
    """

    kind = "NS"
    shares_windows = False

    def __init__(self, cpu, transfer_depth: int = 1):
        super().__init__(cpu)
        if transfer_depth < 1:
            raise WindowGeometryError(
                "transfer depth must be >= 1, got %d" % transfer_depth)
        self.transfer_depth = transfer_depth
        self.reserved = 0
        self.map.set_reserved(self.reserved)
        self.wf.set_wim({self.reserved})

    # -- traps (basic algorithm, §2) ----------------------------------------

    def handle_overflow(self, tw: ThreadWindows) -> None:
        """Figure 3: spill the thread's stack-bottom window(s); the
        last freed window becomes the new reserved window."""
        boundary = self.wf.above(self.wf.cwp)
        if boundary != self.reserved:
            raise WindowGeometryError(
                "NS overflow at window %d but reserved is %d"
                % (boundary, self.reserved))
        if tw.resident < 2:
            raise WindowGeometryError(
                "NS overflow with %d resident frames" % tw.resident)
        spills = min(self.transfer_depth, tw.resident - 1)
        new_reserved = self.reserved
        for __ in range(spills):
            new_reserved = self._spill_bottom(tw)
        self.map.set_free(self.reserved)
        self.map.set_reserved(new_reserved)
        self.reserved = new_reserved
        self.wf.set_wim({self.reserved})
        cycles = self.cost.overflow_cost_multi(spills)
        self.counters.record_trap("overflow", tw.tid, cycles, spilled=True)
        if self.events.active:
            self.events.emit("overflow", tid=tw.tid, spilled=spills,
                             cycles=cycles)

    def handle_underflow(self, tw: ThreadWindows) -> None:
        """Figure 4: restore the missing frame(s) into the window(s)
        below the CWP and move the reserved window further down."""
        wf = self.wf
        target = wf.below(wf.cwp)
        if target != self.reserved:
            raise WindowGeometryError(
                "NS underflow at window %d but reserved is %d"
                % (target, self.reserved))
        if tw.resident != 1:
            raise WindowGeometryError(
                "NS underflow with %d resident frames" % tw.resident)
        restores = min(self.transfer_depth, len(tw.store),
                       wf.n_windows - 2)
        if restores < 1:
            raise WindowGeometryError(
                "NS underflow with an empty backing store")
        # Innermost stored frame goes to the target window, the next
        # ones (read-ahead, transfer_depth > 1) below it.
        w = target
        for i in range(restores):
            frame = tw.store.pop()
            expected = tw.depth - 1 - i
            if frame.depth >= 0 and frame.depth != expected:
                raise WindowIntegrityError(
                    "thread %d restored frame of depth %d at depth %d"
                    % (tw.tid, frame.depth, expected))
            wf.load(w, frame)
            self.map.set_frame(w, tw.tid)
            last = w
            w = wf.below(w)
        # The callee's window is vacated; the caller's frame now lives
        # in what was the reserved window.
        self.map.set_free(wf.cwp)
        wf.cwp = target
        tw.cwp = target
        tw.bottom = last
        tw.resident = restores
        tw.depth -= 1
        new_reserved = wf.below(last)
        if not self.map.is_free(new_reserved):
            raise WindowGeometryError(
                "NS: window %d below the restored frames is %s"
                % (new_reserved, self.map.kind(new_reserved)))
        self.map.set_reserved(new_reserved)
        self.reserved = new_reserved
        self.wf.set_wim({self.reserved})
        cycles = self.cost.underflow_conventional_multi(restores)
        self.counters.record_trap("underflow", tw.tid, cycles,
                                  restored=True)
        if self.events.active:
            self.events.emit("underflow", tid=tw.tid, restored=restores,
                             cycles=cycles, inplace=False)

    # -- context switch --------------------------------------------------------

    def context_switch(self, out_tw: Optional[ThreadWindows],
                       in_tw: ThreadWindows,
                       flush_out: bool = False) -> None:
        # NS always flushes; the flush_out hint (§4.4) changes nothing.
        saves = 0
        if out_tw is not None and out_tw.has_windows:
            saves = self._flush_all(out_tw)
        top = self.wf.above(self.reserved)
        if not self.map.is_free(top):
            raise WindowGeometryError(
                "NS: window %d above the reserved window is %s after a flush"
                % (top, self.map.kind(top)))
        restores = self._install_single_frame(in_tw, top)
        if in_tw.saved_outs is not None:
            self.wf.outs_of(top)[:] = in_tw.saved_outs
            in_tw.saved_outs = None
        self._run_thread(in_tw)
        self.wf.set_wim({self.reserved})
        cycles = self.cost.ns_switch_cost(saves, restores)
        self._record_switch(out_tw, in_tw, saves, restores, cycles)

    def _flush_all(self, tw: ThreadWindows) -> int:
        """Flush every active window, outermost (bottom) first, and save
        the stack-top out registers in the thread context."""
        assert tw.cwp is not None
        tw.saved_outs = list(self.wf.outs_of(tw.cwp))
        flushed = 0
        while tw.resident > 0:
            self._spill_bottom(tw)
            flushed += 1
        return flushed
