"""Root of the repro error hierarchy.

Every structural failure the simulator can raise — a violated window
geometry, corrupted register contents, a wedged scheduler — derives
from :class:`ReproError`, which carries a structured ``context`` dict
(thread, cycle, CWP, ...) rendered uniformly in ``__str__``.  The
crash-bundle writer (:mod:`repro.faults.bundle`) serialises the same
context, so CLI messages and bundles tell one consistent story.

:class:`TransientError` marks the failures a retry may cure (an
injected backing-store hiccup, a sweep-point timeout).  The experiment
engine retries transient failures with backoff and sends every other
:class:`ReproError` straight to quarantine — a violated invariant will
not un-violate itself on a second attempt.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all structural simulator errors.

    ``context`` holds machine-readable diagnostics (``thread``,
    ``cycle``, ``cwp``, ``step``, ...) and is rendered as a bracketed
    suffix by ``__str__`` — errors raised with a bare message format
    exactly as before.
    """

    def __init__(self, message: str = "", **context: Any):
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = dict(context)

    def with_context(self, **context: Any) -> "ReproError":
        """Merge extra context (existing keys win); returns self."""
        for key, value in context.items():
            self.context.setdefault(key, value)
        return self

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join("%s=%s" % (key, self.context[key])
                           for key in sorted(self.context))
        return "%s [%s]" % (self.message, detail)


class TransientError(ReproError):
    """A failure that may succeed on retry (injected or environmental).

    The engine's per-point retry only re-attempts these; every other
    :class:`ReproError` subclass is treated as fatal and quarantined
    immediately.
    """
