"""Plain-text tables and ASCII charts for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(cells):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        return "%.3g" % value
    return str(value)


def ascii_chart(series: Dict[str, List[Tuple[float, float]]],
                width: int = 64, height: int = 18,
                title: str = "", xlabel: str = "", ylabel: str = "",
                y_min: float = 0.0) -> str:
    """Scatter chart of several named series on a shared grid.

    Good enough to eyeball the shape of the paper's figures in a
    terminal; each series is drawn with its own marker.
    """
    markers = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(y_min, min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append("%12.4g |%s" % (y_hi, ""))
    for row in grid:
        lines.append("             |" + "".join(row))
    lines.append("%12.4g +%s" % (y_lo, "-" * width))
    lines.append("             %-10.4g%s%10.4g"
                 % (x_lo, " " * (width - 18), x_hi))
    if xlabel:
        lines.append("             %s" % xlabel)
    legend = "  ".join("%s=%s" % (m, n)
                       for (n, __), m in zip(series.items(), markers))
    lines.append("  " + legend)
    if ylabel:
        lines.insert(1 if title else 0, "  y: %s" % ylabel)
    return "\n".join(lines)
