"""The deterministic cycle-domain sampling profiler.

A wall-clock profiler of a simulator answers the wrong question: it
tells you where the *host* spends time, not where the *simulated
machine* spends cycles — and its output differs on every run.  This
profiler samples on the **simulated cycle clock** instead: every
``every`` cycles of simulated time it attributes the elapsed cycle
delta to whatever is executing — the running thread's generator call
stack (for flamegraphs) and the runtime-op / ISA-opcode class (for the
"where do cycles go" table) — and records a window-occupancy sample.
Because the sample grid lives in cycle space, two runs with identical
seeds produce byte-identical profiles.

The hot-path contract is the tight part.  The kernel's step loop may
retire a step in ~350ns of host time, so the profiler must keep its
hands out of the per-step path entirely:

* disabled: ``prof`` is a hoisted local bound to ``None`` → a single
  ``is not None`` check per *quantum*, zero per-step cost;
* enabled: the kernel decrements ``_cd`` once per **quantum** (a
  thread's uninterrupted run — the natural cycle-attribution unit);
  every ``check_every`` quanta :meth:`_check` reads the exact cycle
  counter and samples if a grid boundary was crossed.  Stacks are
  therefore sampled at quantum boundaries — where threads block,
  yield or switch — and per-op cycle attribution comes *exactly* from
  the run counters (see ``RunTelemetry.finalize``), not from samples.
  The ISA machine, whose per-instruction loop is not under the
  throughput gate, keeps an in-loop countdown and real per-opcode
  attribution via :meth:`check_op`.

The countdown means sampling granularity is "first check after the
boundary", which is deterministic because quanta and cycles advance in
lockstep with the simulation, never with the host.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.windows.occupancy import FREE

# Defaults are tuned for evaluation-scale runs (millions of cycles):
# a 16k-cycle grid gives a full-scale sweep point >1000 samples while
# keeping the enabled-path overhead well inside the 3% budget.  Small
# test runs pass an explicit `every`.
DEFAULT_EVERY = 16384     # cycles between samples
DEFAULT_CHECK_STEPS = 32  # quanta (kernel) / instructions (ISA)
                          # between countdown checks


class CycleProfiler:
    """Samples thread stacks / op kinds / occupancy on the cycle grid."""

    __slots__ = ("every", "check_every", "_cd", "_next_cycle",
                 "_last_cycle", "samples", "checks", "stack_cycles",
                 "op_cycles", "occupancy", "_n_windows", "_window_kinds")

    def __init__(self, every: Optional[int] = None,
                 check_every: int = DEFAULT_CHECK_STEPS):
        self.every = int(every) if every else DEFAULT_EVERY
        if self.every <= 0:
            raise ValueError("profiler interval must be positive")
        self.check_every = check_every
        #: persistent countdown: the kernel decrements it per quantum,
        #: the ISA machine per instruction (hoisted into a local and
        #: written back, so it survives short quanta)
        self._cd = check_every
        self._next_cycle = self.every
        self._last_cycle = 0
        self.samples = 0
        #: slow-path invocations (countdown expiries); with `_cd` this
        #: reconstructs exactly how many fast-path decrements ran —
        #: the perf gate's cost model needs the count
        self.checks = 0
        #: ";"-joined generator-stack name -> attributed cycles
        self.stack_cycles: Dict[str, int] = {}
        #: runtime-op / opcode class name -> attributed cycles
        self.op_cycles: Dict[str, int] = {}
        #: (cycle, occupied windows) samples
        self.occupancy: List[Tuple[int, int]] = []
        self._n_windows = 0
        self._window_kinds = None

    def bind(self, cpu) -> None:
        """Give the profiler the CPU whose window map it samples.

        The window-kind list is captured here (it is mutated in place,
        never reassigned), so :meth:`_sample` pays one C-level
        ``list.count`` per occupancy sample instead of an attribute
        chain plus an import.
        """
        self._n_windows = cpu.wf.n_windows
        self._window_kinds = cpu.map._kind

    # -- hot-path entry points ---------------------------------------------
    #
    # The kernel decrements `_cd` once per quantum (in its dispatch
    # loop's finally); the ISA machine hoists it into a local of its
    # instruction loop and writes the residue back at quantum exit.
    # _check / check_op are the every-`check_every` slow path and
    # re-arm the countdown themselves.

    def _check(self, thread, op_label, counters) -> None:
        """Countdown expired: read the exact clock, sample if the grid
        boundary was crossed, and re-arm.  The stack is the running
        thread's generator call stack (real procedure names)."""
        self._cd = self.check_every
        self.checks += 1
        now = counters.total_cycles
        if now < self._next_cycle:
            return
        if thread is not None:
            names = [g.gi_code.co_name for g in thread.gen_stack]
            stack = ";".join([thread.name] + names)
        else:
            stack = "(idle)"
        self._sample(stack, op_label, now)

    def check_op(self, label: str, op_label: str, counters) -> None:
        """ISA-machine variant: the "stack" is the hardware thread's
        label and the op is a real opcode mnemonic."""
        self._cd = self.check_every
        self.checks += 1
        now = counters.total_cycles
        if now < self._next_cycle:
            return
        self._sample(label, op_label, now)

    def _sample(self, stack: str, op_label, now: int) -> None:
        delta = now - self._last_cycle
        self._last_cycle = now
        self.samples += 1
        self.stack_cycles[stack] = self.stack_cycles.get(stack, 0) + delta
        if op_label is not None:
            self.op_cycles[op_label] = (
                self.op_cycles.get(op_label, 0) + delta)
        kinds = self._window_kinds
        if kinds is not None:
            occupied = self._n_windows - kinds.count(FREE)
            self.occupancy.append((now, occupied))
        # advance to the next multiple-of-`every` boundary strictly
        # after `now` — a long-running op may skip several grid points,
        # which all collapse into this one sample (delta keeps the sum
        # of cycles exact)
        self._next_cycle = now - (now % self.every) + self.every

    # -- output -------------------------------------------------------------

    def profile_section(self) -> Dict[str, Any]:
        """The ``profile`` section of a metrics snapshot (all-sorted,
        cycle-domain only — byte-stable across identical runs)."""
        return {
            "every": self.every,
            "check_steps": self.check_every,
            "samples": self.samples,
            "checks": self.checks,
            "stacks": {k: self.stack_cycles[k]
                       for k in sorted(self.stack_cycles)},
            "ops": {k: self.op_cycles[k] for k in sorted(self.op_cycles)},
            "occupancy": [list(s) for s in self.occupancy],
        }

    def flamegraph(self) -> Dict[str, Any]:
        """Nested ``{name, value, children}`` tree (d3-flame-graph style)
        built from the sampled stacks."""
        return flamegraph_from_stacks(self.stack_cycles)

    def collapsed(self) -> str:
        """``stack;frames count`` lines — Brendan Gregg's collapsed
        format, pipeable into ``flamegraph.pl``."""
        return "".join("%s %d\n" % (stack, cycles)
                       for stack, cycles in sorted(self.stack_cycles.items()))


def flamegraph_from_stacks(stack_cycles: Dict[str, int]) -> Dict[str, Any]:
    """Fold ``{";"-joined stack: cycles}`` into a nested tree.

    Every node's ``value`` is the total of its subtree (self time plus
    descendants), matching what flamegraph renderers expect; children
    are sorted by name so the tree is deterministic.
    """
    root: Dict[str, Any] = {"name": "all", "value": 0, "children": {}}
    for stack in sorted(stack_cycles):
        cycles = stack_cycles[stack]
        node = root
        node["value"] += cycles
        for frame in stack.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += cycles
            node = child

    def freeze(node: Dict[str, Any]) -> Dict[str, Any]:
        children = [freeze(node["children"][k])
                    for k in sorted(node["children"])]
        out = {"name": node["name"], "value": node["value"]}
        if children:
            out["children"] = children
        return out

    return freeze(root)
