"""The aggregate telemetry layer: always-cheap metrics, separate from
the raw-event tracing path.

PR 1's :class:`~repro.metrics.events.EventBus` answers "*what happened,
in order*" — every save, trap and switch as a timestamped event.  That
is the right tool for debugging one run and the wrong tool for watching
a thousand: a full trace of a paper-scale sweep is hundreds of
megabytes.  This module is the other half of the observability story:
**aggregates** — counters, gauges and fixed-bucket histograms — cheap
enough to leave on for heavy runs, deterministic enough to diff across
PRs.

Design rules, in priority order:

* **Zero cost when off.**  Instrumented sites follow PR 4's
  ``watch_activity`` pattern: a single attribute that is ``None`` until
  telemetry is attached, so the hot path pays one ``is None`` branch
  and performs no dict lookup, no allocation, no call.
* **Deterministic when on.**  Histograms use *exact integer bucket
  bounds* (cycle counts, window counts); the cycle-domain profiler
  samples on the simulated clock, never wall-clock.  Two runs with the
  same seeds produce byte-identical snapshots.
* **Versioned at rest.**  :func:`MetricsRegistry.snapshot` emits the
  ``repro.metrics-snapshot`` v1 document; :func:`validate_snapshot`
  checks it; :func:`to_prometheus` renders the standard text exposition
  format for scraping.

The engine-side metrics (wall-times, utilization) reuse the same
registry but are *not* covered by the byte-identity contract — wall
time is inherently nondeterministic, and lives only in engine
snapshots, never in simulator ones.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

SNAPSHOT_SCHEMA = "repro.metrics-snapshot"
SNAPSHOT_VERSION = 1

#: exact power-of-two cycle buckets: deterministic and wide enough for
#: every switch/trap cost the cost model can produce
CYCLE_BUCKETS: Tuple[int, ...] = tuple(1 << i for i in range(21))

#: engine wall-time buckets (milliseconds; 1ms .. ~2min)
MS_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                                 1000, 2000, 5000, 10000, 30000, 120000)

#: sub-millisecond-resolution buckets for fast paths (cache reads)
FAST_MS_BUCKETS: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10,
                                      20, 50, 100)


def occupancy_buckets(n_windows: int) -> Tuple[int, ...]:
    """One exact bucket per possible occupied-window count."""
    return tuple(range(n_windows + 1))


def _label_key(name: str, labels: Optional[Dict[str, str]]) -> str:
    """The registry key / Prometheus series identity of an instrument."""
    if not labels:
        return name
    inner = ",".join('%s="%s"' % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, inner)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "help": self.help,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that goes up and down (utilization, queue depth, ...)."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "help": self.help,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram with *inclusive* upper bounds.

    ``bounds`` must be a sorted tuple of exact numbers fixed at
    construction (never derived from observed data), so two runs that
    observe the same values produce identical bucket counts — the
    determinism contract of the simulator snapshot.  An implicit
    overflow (``+Inf``) bucket catches everything above the last bound.
    """

    __slots__ = ("name", "help", "labels", "bounds", "bucket_counts",
                 "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable, help: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = tuple(bounds)
        if not self.bounds:
            raise ValueError("histogram %r needs at least one bound" % name)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram %r bounds must be sorted" % name)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_bulk(self, values) -> None:
        """Fold a whole observation buffer at once.

        Hot paths append raw values to plain lists (a C-speed
        ``list.append`` instead of a Python-level ``observe`` per
        event); this folds such a buffer in O(distinct values)
        Python-level work.  Equivalent to ``observe`` per element —
        byte-identical bucket counts, count, sum, min and max.
        """
        if not values:
            return
        from collections import Counter as _TallyCounter

        bounds = self.bounds
        buckets = self.bucket_counts
        for value, n in _TallyCounter(values).items():
            buckets[bisect_left(bounds, value)] += n
            self.sum += value * n
        self.count += len(values)
        lo, hi = min(values), max(values)
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float):
        """Deterministic bucket-resolution percentile: the upper bound
        of the first bucket whose cumulative count reaches rank ``q``
        (the recorded maximum for the overflow bucket)."""
        if not self.count:
            return 0
        rank = max(1, int(round(q / 100.0 * self.count)))
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument of one run/sweep.

    Instruments are identified by ``(name, labels)``; asking twice
    returns the same object, asking for the same key with a different
    instrument type raises.  :meth:`snapshot` renders everything into
    the versioned, sorted, JSON-stable snapshot document.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, cls, name: str, help: str,
             labels: Optional[Dict[str, str]], **kwargs):
        key = _label_key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    "instrument %r already registered as a %s"
                    % (key, existing.kind))
            return existing
        instrument = cls(name, help=help, labels=labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, bounds: Iterable, help: str = "",
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        key = _label_key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    "instrument %r already registered as a %s"
                    % (key, existing.kind))
            if existing.bounds != tuple(bounds):
                raise ValueError(
                    "histogram %r re-registered with different bounds"
                    % key)
            return existing
        instrument = Histogram(name, bounds, help=help, labels=labels)
        self._instruments[key] = instrument
        return instrument

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, key: str):
        return self._instruments.get(key)

    def instruments(self) -> List[Any]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    # -- the snapshot document ---------------------------------------------

    def snapshot(self, meta: Optional[Dict[str, Any]] = None,
                 profile: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        """The ``repro.metrics-snapshot`` v1 document.

        ``meta`` carries run identity (scheme, windows, workload, seed);
        for simulator runs it must contain no wall-clock values — the
        determinism tests compare these documents byte-for-byte.
        ``profile`` is the cycle-domain profiler's section, when one ran.
        """
        counters = {}
        gauges = {}
        histograms = {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            payload = instrument.to_payload()
            if isinstance(instrument, Counter):
                counters[key] = payload
            elif isinstance(instrument, Gauge):
                gauges[key] = payload
            else:
                histograms[key] = payload
        return {
            "schema": SNAPSHOT_SCHEMA,
            "version": SNAPSHOT_VERSION,
            "meta": dict(meta or {}),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "profile": profile,
        }


def snapshot_to_json(snapshot: Dict[str, Any],
                     indent: Optional[int] = 2) -> str:
    """Stable serialization (sorted keys) — byte-diffable across runs."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def validate_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Check a parsed snapshot document; returns it on success."""
    if not isinstance(snapshot, dict):
        raise ValueError("metrics snapshot must be a JSON object")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError("not a %s document: schema=%r"
                         % (SNAPSHOT_SCHEMA, snapshot.get("schema")))
    version = snapshot.get("version")
    if not isinstance(version, int) or version < 1:
        raise ValueError("bad snapshot version: %r" % (version,))
    if version > SNAPSHOT_VERSION:
        raise ValueError(
            "snapshot version %d is newer than supported version %d"
            % (version, SNAPSHOT_VERSION))
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError("snapshot missing %r section" % section)
    for key, payload in snapshot["histograms"].items():
        bounds = payload.get("bounds")
        buckets = payload.get("bucket_counts")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            raise ValueError("histogram %r missing bounds/buckets" % key)
        if len(buckets) != len(bounds) + 1:
            raise ValueError(
                "histogram %r has %d buckets for %d bounds"
                % (key, len(buckets), len(bounds)))
        if sum(buckets) != payload.get("count"):
            raise ValueError("histogram %r bucket counts do not add up"
                             % key)
    return snapshot


def snapshot_from_json(text: str) -> Dict[str, Any]:
    return validate_snapshot(json.loads(text))


def histogram_percentile(payload: Dict[str, Any], q: float):
    """:meth:`Histogram.percentile` computed from a serialized payload
    (what exporters and the dashboard have in hand)."""
    total = payload.get("count", 0)
    if not total:
        return 0
    bounds = payload["bounds"]
    rank = max(1, int(round(q / 100.0 * total)))
    seen = 0
    for i, n in enumerate(payload["bucket_counts"]):
        seen += n
        if seen >= rank:
            if i < len(bounds):
                return bounds[i]
            return payload["max"]
    return payload["max"]


def write_snapshot(snapshot: Dict[str, Any], path) -> str:
    """Atomic write (temp + rename) so a live dashboard tailing the
    file never reads a torn document; returns the path."""
    from repro.ioutil import atomic_write_text

    atomic_write_text(path, snapshot_to_json(snapshot) + "\n")
    return str(path)


# ---------------------------------------------------------------------------
# Prometheus text exposition format


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return "repro_" + text


def _prom_labels(labels: Dict[str, str],
                 extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(extra or {})
    merged.update(labels)
    if not merged:
        return ""
    inner = ",".join('%s="%s"' % (k, str(merged[k]).replace('"', '\\"'))
                     for k in sorted(merged))
    return "{%s}" % inner


def _prom_value(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: Dict[str, Any],
                  meta_labels: bool = True) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    With ``meta_labels`` every string/number entry of the snapshot's
    ``meta`` section is attached as a label to every series, so one
    scrape of a sweep distinguishes schemes/window counts naturally.
    """
    extra: Dict[str, str] = {}
    if meta_labels:
        for k, v in sorted(snapshot.get("meta", {}).items()):
            if isinstance(v, (str, int, float, bool)):
                extra[k] = str(v)
    lines: List[str] = []
    emitted_header = set()

    def header(name: str, help_text: str, kind: str) -> None:
        if name in emitted_header:
            return
        emitted_header.add(name)
        if help_text:
            lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, kind))

    for key in sorted(snapshot.get("counters", {})):
        p = snapshot["counters"][key]
        name = _prom_name(p["name"])
        header(name, p.get("help", ""), "counter")
        lines.append("%s%s %s" % (name,
                                  _prom_labels(p.get("labels", {}), extra),
                                  _prom_value(p["value"])))
    for key in sorted(snapshot.get("gauges", {})):
        p = snapshot["gauges"][key]
        name = _prom_name(p["name"])
        header(name, p.get("help", ""), "gauge")
        lines.append("%s%s %s" % (name,
                                  _prom_labels(p.get("labels", {}), extra),
                                  _prom_value(p["value"])))
    for key in sorted(snapshot.get("histograms", {})):
        p = snapshot["histograms"][key]
        name = _prom_name(p["name"])
        header(name, p.get("help", ""), "histogram")
        labels = p.get("labels", {})
        cumulative = 0
        for bound, n in zip(p["bounds"], p["bucket_counts"]):
            cumulative += n
            le = dict(labels, le=_prom_value(bound))
            lines.append("%s_bucket%s %d"
                         % (name, _prom_labels(le, extra), cumulative))
        cumulative += p["bucket_counts"][-1]
        le = dict(labels, le="+Inf")
        lines.append("%s_bucket%s %d"
                     % (name, _prom_labels(le, extra), cumulative))
        lines.append("%s_sum%s %s" % (name, _prom_labels(labels, extra),
                                      _prom_value(p["sum"])))
        lines.append("%s_count%s %d" % (name, _prom_labels(labels, extra),
                                        p["count"]))
    return "\n".join(lines) + "\n"


def arm_scheme_histograms(telemetry: "RunTelemetry", scheme,
                          n_windows: int) -> None:
    """Hand a window-management scheme its telemetry buffers.

    Shared by ``Kernel.attach_telemetry`` and ``Machine.attach_telemetry``
    — the scheme-side hooks are identical in both runtimes.

    The scheme's hot sites get plain lists (``_tel_switch``,
    ``_tel_trap``): recording one event is a single C-speed
    ``list.append``, not a Python-level ``Histogram.observe`` (which
    would cost ~1µs x tens of thousands of switches per run).  The
    real histograms are registered here and bulk-folded from the
    buffers by :meth:`RunTelemetry.finalize` / ``snapshot``.
    """
    registry = telemetry.registry
    labels = {"scheme": scheme.kind}
    switch_hist = registry.histogram(
        "sim_switch_cycles_hist", CYCLE_BUCKETS,
        help="context-switch cost distribution (cycles)", labels=labels)
    trap_hist = registry.histogram(
        "sim_trap_cycles_hist", CYCLE_BUCKETS,
        help="window trap latency distribution (cycles)", labels=labels)
    occ_hist = registry.histogram(
        "sim_window_occupancy", occupancy_buckets(n_windows),
        help="occupied windows sampled on the profiler's cycle grid",
        labels=labels)
    scheme._tel_switch = []
    scheme._tel_trap = []
    telemetry._armed.append((scheme, switch_hist, trap_hist, occ_hist))


# ---------------------------------------------------------------------------
# the per-run bundle the kernel attaches


class RunTelemetry:
    """Registry + cycle-domain profiler for one simulator run.

    Usage (also what the ``--metrics`` CLI flags do)::

        telemetry = RunTelemetry()
        kernel = Kernel(n_windows=8, scheme="SP")
        telemetry.attach(kernel)
        ...spawn and run...
        telemetry.finalize(result)
        snapshot = telemetry.snapshot({"scheme": "SP", "n_windows": 8})

    ``attach`` hands the scheme its switch/trap/occupancy histograms and
    arms the kernel's sampling profiler; everything stays ``None`` /
    detached until then, which is what keeps the uninstrumented hot
    path free.
    """

    def __init__(self, every: Optional[int] = None, profile: bool = True,
                 registry: Optional[MetricsRegistry] = None):
        from repro.metrics.profiler import CycleProfiler

        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler = (CycleProfiler(every) if profile else None)
        #: (scheme, switch_hist, trap_hist, occ_hist) armed via
        #: :func:`arm_scheme_histograms`; their buffers are drained by
        #: :meth:`_fold`
        self._armed = []
        self._occ_folded = 0

    def attach(self, kernel) -> "RunTelemetry":
        kernel.attach_telemetry(self)
        return self

    def _fold(self) -> None:
        """Drain the hot-path buffers into their histograms.

        Idempotent: buffers are swapped out as they are folded and the
        profiler's occupancy samples are consumed past a high-water
        mark, so calling ``finalize`` and then ``snapshot`` (or
        ``snapshot`` twice) never double-counts.
        """
        profiler = self.profiler
        occ_samples = ()
        if profiler is not None:
            occ_samples = profiler.occupancy[self._occ_folded:]
            self._occ_folded = len(profiler.occupancy)
        for scheme, switch_hist, trap_hist, occ_hist in self._armed:
            if scheme._tel_switch:
                switch_hist.observe_bulk(scheme._tel_switch)
                scheme._tel_switch = []
            if scheme._tel_trap:
                trap_hist.observe_bulk(scheme._tel_trap)
                scheme._tel_trap = []
            if occ_samples:
                occ_hist.observe_bulk([occ for __, occ in occ_samples])

    def instrument(self, kernel) -> None:
        """Alias matching the ``instrument=`` callback convention of
        :func:`repro.apps.spellcheck.pipeline.run_spellchecker`."""
        self.attach(kernel)

    def finalize(self, result) -> None:
        """Fold the run's exact counters into the registry (cheap: once
        per run, not per event)."""
        self._fold()
        reg = self.registry
        snap = result.counters.snapshot()
        for name in ("saves", "restores", "overflow_traps",
                     "underflow_traps", "windows_spilled",
                     "windows_restored", "context_switches"):
            counter = reg.counter("sim_" + name)
            counter.value = snap[name]
        for name in ("compute_cycles", "call_cycles", "trap_cycles",
                     "switch_cycles", "total_cycles"):
            counter = reg.counter("sim_" + name)
            counter.value = snap[name]
        reg.gauge("sim_steps").set(result.steps)
        reg.gauge("sim_threads").set(len(result.threads))
        if self.profiler is not None:
            reg.gauge("sim_profile_samples").set(self.profiler.samples)
            if not self.profiler.op_cycles:
                # Kernel runs sample stacks only; the per-class cycle
                # attribution is exact from the counters — better than
                # anything sampling could reconstruct.
                self.profiler.op_cycles = {
                    "Tick": snap["compute_cycles"],
                    "Call": snap["call_cycles"],
                    "Trap": snap["trap_cycles"],
                    "Switch": snap["switch_cycles"],
                }

    def snapshot(self, meta: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        self._fold()
        profile = (self.profiler.profile_section()
                   if self.profiler is not None else None)
        return self.registry.snapshot(meta=meta, profile=profile)
