"""Window-occupancy timelines: who owned each physical window, over
time.

The paper's Figures 5–9 are snapshots of the window file as threads
come and go; this module records such snapshots at every context
switch and renders the whole run as a timeline — one row per physical
window, one column per scheduling quantum — which makes the difference
between the schemes directly visible (NS wipes the file every column;
SP's columns barely change).

Attach with ``kernel.timeline = OccupancyTimeline()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.windows.occupancy import FRAME, FREE, RESERVED

#: cell glyphs: thread ids 0..9 then letters; free and reserved
_FREE_GLYPH = "."
_RESERVED_GLYPH = "#"
_PRW_GLYPHS = "abcdefghijklmnopqrstuvwxyz"
_FRAME_GLYPHS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass
class TimelineSample:
    """Occupancy of every window at one instant."""

    cycle: int
    running_tid: int
    cells: List[str]  # one glyph per physical window


class OccupancyTimeline:
    """Records window-map snapshots; renders them as a timeline."""

    def __init__(self, max_samples: int = 4096):
        self.max_samples = max_samples
        self.samples: List[TimelineSample] = []
        self.n_windows: Optional[int] = None
        self._dropped = 0

    # -- kernel hook -----------------------------------------------------------

    def snapshot(self, cpu, running_tid: int, cycle: int) -> None:
        if len(self.samples) >= self.max_samples:
            self._dropped += 1
            return
        wmap = cpu.map
        self.n_windows = wmap.n_windows
        cells = []
        for w in range(wmap.n_windows):
            kind, tid = wmap.entry(w)
            if kind == FREE:
                cells.append(_FREE_GLYPH)
            elif kind == RESERVED:
                if tid is None:
                    cells.append(_RESERVED_GLYPH)
                else:
                    cells.append(_PRW_GLYPHS[tid % len(_PRW_GLYPHS)])
            else:
                cells.append(
                    _FRAME_GLYPHS[tid % len(_FRAME_GLYPHS)])
        self.samples.append(TimelineSample(cycle, running_tid, cells))

    # -- analysis ----------------------------------------------------------------

    def occupancy_ratio(self) -> float:
        """Mean fraction of windows holding live frames."""
        if not self.samples or not self.n_windows:
            return 0.0
        frames = sum(
            sum(1 for c in s.cells if c in _FRAME_GLYPHS)
            for s in self.samples)
        return frames / (len(self.samples) * self.n_windows)

    def churn(self) -> float:
        """Mean fraction of windows whose occupant changed between
        consecutive samples — low churn is the visual signature of the
        sharing schemes."""
        if len(self.samples) < 2 or not self.n_windows:
            return 0.0
        changed = 0
        for prev, cur in zip(self.samples, self.samples[1:]):
            changed += sum(1 for a, b in zip(prev.cells, cur.cells)
                           if a != b)
        return changed / ((len(self.samples) - 1) * self.n_windows)

    def distinct_owners(self, window: int) -> int:
        """How many different threads' frames a window held."""
        owners = set()
        for s in self.samples:
            cell = s.cells[window]
            if cell in _FRAME_GLYPHS:
                owners.add(cell)
        return len(owners)

    # -- rendering ----------------------------------------------------------------

    def render(self, max_columns: int = 100, legend: bool = True) -> str:
        """Rows = windows (W0 on top), columns = samples."""
        if not self.samples or not self.n_windows:
            return "(no samples)"
        samples = self.samples
        if len(samples) > max_columns:
            step = len(samples) / max_columns
            samples = [samples[int(i * step)] for i in range(max_columns)]
        lines = []
        for w in range(self.n_windows):
            row = "".join(s.cells[w] for s in samples)
            lines.append("W%-2d %s" % (w, row))
        if legend:
            lines.append("")
            lines.append("    digits/letters=thread frames  "
                         "lowercase=PRW  #=reserved  .=free  "
                         "(%d samples%s)"
                         % (len(self.samples),
                            ", %d dropped" % self._dropped
                            if self._dropped else ""))
        return "\n".join(lines)
