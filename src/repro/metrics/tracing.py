"""Window-occupancy timelines: who owned each physical window, over
time.

The paper's Figures 5–9 are snapshots of the window file as threads
come and go; this module records such snapshots at every context
switch and renders the whole run as a timeline — one row per physical
window, one column per scheduling quantum — which makes the difference
between the schemes directly visible (NS wipes the file every column;
SP's columns barely change).

Attach with ``kernel.timeline = OccupancyTimeline()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.windows.occupancy import FRAME, FREE, RESERVED

#: cell glyphs: thread ids 0..9 then letters; free and reserved
_FREE_GLYPH = "."
_RESERVED_GLYPH = "#"
_PRW_GLYPHS = "abcdefghijklmnopqrstuvwxyz"
_FRAME_GLYPHS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass
class TimelineSample:
    """Occupancy of every window at one instant."""

    cycle: int
    running_tid: int
    cells: List[str]  # one glyph per physical window


class OccupancyTimeline:
    """Records window-map snapshots; renders them as a timeline.

    Long runs are decimated in place rather than truncated: when the
    sample list fills, every other sample is discarded and the stride
    doubles, so the retained samples always span the whole run (at
    progressively coarser resolution) instead of only its beginning.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.max_samples = max_samples
        self.samples: List[TimelineSample] = []
        self.n_windows: Optional[int] = None
        self._dropped = 0
        self._stride = 1
        self._since_kept = 0
        #: the CPU snapshots are taken from; set when the timeline is
        #: attached to a kernel (``kernel.timeline = ...`` subscribes it
        #: to the kernel's event bus)
        self.cpu = None

    # -- event-bus subscriber ----------------------------------------------

    def on_event(self, event) -> None:
        """Take one snapshot per ``dispatch`` event on the bus."""
        if event.kind == "dispatch" and self.cpu is not None:
            self.snapshot(self.cpu, event.tid, event.cycle)

    # -- kernel hook -----------------------------------------------------------

    def snapshot(self, cpu, running_tid: int, cycle: int) -> None:
        if self._since_kept:
            # Mid-stride arrival: drop it, like its decimated peers.
            self._since_kept = (self._since_kept + 1) % self._stride
            self._dropped += 1
            return
        self._since_kept = (self._since_kept + 1) % self._stride
        if len(self.samples) >= self.max_samples:
            # Decimate in place: keep every other sample, double the
            # stride.  Dropped samples stay counted.
            self._dropped += len(self.samples) - len(self.samples[::2])
            self.samples = self.samples[::2]
            self._stride *= 2
            self._since_kept = 1 % self._stride
        wmap = cpu.map
        self.n_windows = wmap.n_windows
        cells = []
        for w in range(wmap.n_windows):
            kind, tid = wmap.entry(w)
            if kind == FREE:
                cells.append(_FREE_GLYPH)
            elif kind == RESERVED:
                if tid is None:
                    cells.append(_RESERVED_GLYPH)
                else:
                    cells.append(_PRW_GLYPHS[tid % len(_PRW_GLYPHS)])
            else:
                cells.append(
                    _FRAME_GLYPHS[tid % len(_FRAME_GLYPHS)])
        self.samples.append(TimelineSample(cycle, running_tid, cells))

    # -- analysis ----------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Snapshots not retained (decimated or skipped mid-stride)."""
        return self._dropped

    def occupancy_ratio(self) -> float:
        """Mean fraction of windows holding live frames."""
        if not self.samples or not self.n_windows:
            return 0.0
        frames = sum(
            sum(1 for c in s.cells if c in _FRAME_GLYPHS)
            for s in self.samples)
        return frames / (len(self.samples) * self.n_windows)

    def churn(self) -> float:
        """Mean fraction of windows whose occupant changed between
        consecutive samples — low churn is the visual signature of the
        sharing schemes."""
        if len(self.samples) < 2 or not self.n_windows:
            return 0.0
        changed = 0
        for prev, cur in zip(self.samples, self.samples[1:]):
            changed += sum(1 for a, b in zip(prev.cells, cur.cells)
                           if a != b)
        return changed / ((len(self.samples) - 1) * self.n_windows)

    def distinct_owners(self, window: int) -> int:
        """How many different threads' frames a window held."""
        owners = set()
        for s in self.samples:
            cell = s.cells[window]
            if cell in _FRAME_GLYPHS:
                owners.add(cell)
        return len(owners)

    # -- rendering ----------------------------------------------------------------

    def render(self, max_columns: int = 100, legend: bool = True) -> str:
        """Rows = windows (W0 on top), columns = samples."""
        if not self.samples or not self.n_windows:
            return "(no samples)"
        samples = self.samples
        if len(samples) > max_columns:
            step = len(samples) / max_columns
            samples = [samples[int(i * step)] for i in range(max_columns)]
        lines = []
        for w in range(self.n_windows):
            row = "".join(s.cells[w] for s in samples)
            lines.append("W%-2d %s" % (w, row))
        if legend:
            lines.append("")
            lines.append("    digits/letters=thread frames  "
                         "lowercase=PRW  #=reserved  .=free  "
                         "(%d samples%s)"
                         % (len(self.samples),
                            ", %d dropped" % self._dropped
                            if self._dropped else ""))
        return "\n".join(lines)
