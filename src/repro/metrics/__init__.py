"""Instrumentation: counters, the structured event bus, behaviour
analysis, Perfetto export, run reports and plain-text reporting."""

from repro.metrics.counters import Counters, SwitchRecord, TrapRecord
from repro.metrics.events import EventBus, TraceEvent, TraceRecorder
from repro.metrics.perfetto import PerfettoExporter
from repro.metrics.report import (
    SCHEMA_VERSION as RUN_REPORT_VERSION,
    build_run_report,
)

__all__ = [
    "Counters",
    "SwitchRecord",
    "TrapRecord",
    "EventBus",
    "TraceEvent",
    "TraceRecorder",
    "PerfettoExporter",
    "RUN_REPORT_VERSION",
    "build_run_report",
]
