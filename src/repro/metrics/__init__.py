"""Instrumentation: counters, event traces, behaviour analysis, reporting."""

from repro.metrics.counters import Counters, SwitchRecord, TrapRecord

__all__ = ["Counters", "SwitchRecord", "TrapRecord"]
