"""Instrumentation: counters, the structured event bus, behaviour
analysis, aggregate telemetry, Perfetto export, run reports and
plain-text reporting."""

from repro.metrics.counters import Counters, SwitchRecord, TrapRecord
from repro.metrics.events import EventBus, TraceEvent, TraceRecorder
from repro.metrics.perfetto import PerfettoExporter
from repro.metrics.profiler import CycleProfiler
from repro.metrics.report import (
    SCHEMA_VERSION as RUN_REPORT_VERSION,
    build_run_report,
)
from repro.metrics.telemetry import (
    SNAPSHOT_VERSION as METRICS_SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    to_prometheus,
    validate_snapshot,
)

__all__ = [
    "Counters",
    "SwitchRecord",
    "TrapRecord",
    "EventBus",
    "TraceEvent",
    "TraceRecorder",
    "PerfettoExporter",
    "CycleProfiler",
    "RUN_REPORT_VERSION",
    "build_run_report",
    "METRICS_SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "to_prometheus",
    "validate_snapshot",
]
