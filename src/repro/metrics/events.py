"""The structured trace-event bus: one stream of timestamped events for
everything the kernel, CPU, schemes, ready queue and streams do.

Every observable action of a run — a ``save``/``restore`` instruction, a
window trap, a context switch, a dispatch, a block/wake, a spawn/retire —
is published as one :class:`TraceEvent` stamped with the simulated cycle
clock.  Consumers subscribe to the bus instead of being hand-wired into
the kernel; the stock ones are:

* :class:`TraceRecorder` (here) — keeps the raw event list and computes
  per-thread cycle attribution and switch-cost percentiles;
* :class:`repro.metrics.perfetto.PerfettoExporter` — Chrome trace-event
  JSON for ``chrome://tracing`` / Perfetto;
* :class:`repro.metrics.behavior.BehaviorTracker` and
  :class:`repro.metrics.tracing.OccupancyTimeline` — the paper-§5
  analyses, now bus subscribers.

The bus is **disabled by default**: publishers guard every emit with a
single ``if bus.active`` check, so an uninstrumented run pays one no-op
branch per event site and allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

#: every event kind the runtime publishes, in rough lifecycle order
EVENT_KINDS = (
    "spawn",        # thread created                 (tid, name)
    "enqueue",      # thread entered the ready queue (tid, reason, position)
    "switch",       # scheme context switch          (tid=in, out_tid, saves,
                    #                                 restores, cycles)
    "dispatch",     # thread starts a quantum        (tid, depth)
    "save",         # save instruction retired       (tid, window, depth)
    "restore",      # restore instruction retired    (tid, window, depth,
                    #                                 inplace)
    "overflow",     # window overflow trap           (tid, spilled, cycles)
    "underflow",    # window underflow trap          (tid, restored, cycles,
                    #                                 inplace)
    "block",        # thread blocked                 (tid, on, op)
    "wake",         # thread woken                   (tid, on, op)
    "yield",        # thread yielded the CPU         (tid)
    "retire",       # thread finished                (tid, name)
    "stream_close", # stream closed                  (stream, written, read)
    "fault",        # injected fault fired           (tid, kind, at, site)
    "run_end",      # simulation finished            ()
)


@dataclass
class TraceEvent:
    """One structured event, stamped with the simulated cycle clock."""

    kind: str
    cycle: int
    tid: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        out = {"kind": self.kind, "cycle": self.cycle}
        if self.tid is not None:
            out["tid"] = self.tid
        out.update(self.attrs)
        return out

    def __str__(self) -> str:
        attrs = " ".join("%s=%s" % (k, v) for k, v in self.attrs.items())
        tid = "-" if self.tid is None else str(self.tid)
        return "%10d  tid=%-3s %-12s %s" % (self.cycle, tid, self.kind,
                                            attrs)


class EventBus:
    """Publish/subscribe fan-out for :class:`TraceEvent`.

    ``active`` is maintained as a plain attribute so the hot path in the
    kernel and CPU is a single attribute check when nobody listens.
    Publishers that emit on every simulated step go one cheaper: they
    register an *activity watcher* (:meth:`watch_activity`) and mirror
    ``active`` into a ``_tracing`` boolean of their own, turning the
    per-emit-site guard into one load on ``self`` with no cross-object
    hop.  ``clock`` supplies the simulated cycle stamp (the kernel binds
    it to ``counters.total_cycles``).
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._subscribers: List[tuple] = []
        self._watchers: List[Callable[[bool], None]] = []
        self.active = False
        self.clock = clock if clock is not None else (lambda: 0)

    def watch_activity(self, watcher: Callable[[bool], None]):
        """Register ``watcher(active)``; called immediately with the
        current state and again on every subscribe/unsubscribe edge."""
        self._watchers.append(watcher)
        watcher(self.active)
        return watcher

    def _set_active(self, active: bool) -> None:
        if active == self.active:
            return
        self.active = active
        for watcher in self._watchers:
            watcher(active)

    def subscribe(self, consumer) -> Any:
        """Attach ``consumer`` (a callable, or an object with an
        ``on_event(event)`` method); returns it for later unsubscribe."""
        fn = getattr(consumer, "on_event", None)
        if fn is None:
            fn = consumer
        self._subscribers.append((consumer, fn))
        self._set_active(True)
        return consumer

    def unsubscribe(self, consumer) -> None:
        self._subscribers = [(c, f) for c, f in self._subscribers
                             if c is not consumer]
        self._set_active(bool(self._subscribers))

    def emit(self, kind: str, tid: Optional[int] = None,
             **attrs) -> TraceEvent:
        """Build an event stamped with the current clock and fan it out."""
        event = TraceEvent(kind, self.clock(), tid, attrs)
        for __, fn in self._subscribers:
            fn(event)
        return event


class RingRecorder:
    """Bus subscriber that keeps only the last ``capacity`` events.

    This is the kernel's crash-bundle flight recorder: cheap enough to
    leave on for whole runs, and what it holds at the moment of a crash
    is exactly the window of history worth dumping.
    """

    DEFAULT_CAPACITY = 256

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        from collections import deque

        self.capacity = capacity
        self._events = deque(maxlen=capacity)

    def on_event(self, event: TraceEvent) -> None:
        self._events.append(event)

    def tail(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = int(round(q / 100.0 * (len(ordered) - 1)))
    return float(ordered[rank])


class TraceRecorder:
    """Bus subscriber that keeps every event and derives run statistics."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- filtering ---------------------------------------------------------

    def filter(self, kinds: Optional[Iterable[str]] = None,
               tid: Optional[int] = None,
               start: Optional[int] = None,
               end: Optional[int] = None) -> List[TraceEvent]:
        """Events matching every given constraint."""
        kindset = set(kinds) if kinds is not None else None
        out = []
        for e in self.events:
            if kindset is not None and e.kind not in kindset:
                continue
            if tid is not None and e.tid != tid:
                continue
            if start is not None and e.cycle < start:
                continue
            if end is not None and e.cycle > end:
                continue
            out.append(e)
        return out

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    # -- derived statistics ------------------------------------------------

    def per_thread_cycles(self) -> Dict[int, int]:
        """Cycles attributed to each thread: the time between its
        ``dispatch`` and the moment it stops running (the next
        ``block``/``yield``/``retire``/``switch``-out or the run end)."""
        totals: Dict[int, int] = {}
        current: Optional[int] = None
        started = 0
        last_cycle = 0
        for e in self.events:
            last_cycle = e.cycle
            if e.kind == "dispatch":
                if current is not None:
                    totals[current] = (totals.get(current, 0)
                                       + e.cycle - started)
                current = e.tid
                started = e.cycle
            elif e.kind in ("block", "yield", "retire", "run_end"):
                if current is not None and (e.tid == current
                                            or e.kind == "run_end"):
                    totals[current] = (totals.get(current, 0)
                                       + e.cycle - started)
                    current = None
        if current is not None:
            totals[current] = totals.get(current, 0) + last_cycle - started
        return totals

    def switch_costs(self) -> List[int]:
        """Cycle cost of every recorded context switch."""
        return [e.attrs.get("cycles", 0) for e in self.events
                if e.kind == "switch"]

    def switch_cost_stats(self) -> Dict[str, float]:
        """Mean / p50 / p95 / p99 / max of the switch-cost distribution."""
        costs = self.switch_costs()
        if not costs:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": len(costs),
            "mean": sum(costs) / len(costs),
            "p50": percentile(costs, 50),
            "p95": percentile(costs, 95),
            "p99": percentile(costs, 99),
            "max": float(max(costs)),
        }

    def trap_timeline(self) -> List[TraceEvent]:
        """Every overflow/underflow trap, in cycle order."""
        return self.filter(kinds=("overflow", "underflow"))
