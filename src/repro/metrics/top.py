"""Live terminal dashboard: ``python -m repro.metrics.top``.

Tails a ``repro.metrics-snapshot`` JSON file (written atomically by the
``--metrics-out`` flags, and rewritten after every committed point by
the experiment engine) and renders it as a terminal dashboard:

    python -m repro.experiments fig11 --metrics &
    python -m repro.metrics.top engine-metrics.json

* counters and gauges in one table;
* histograms with count / p50 / p99 / max columns (bucket-resolution
  percentiles, same semantics as the live ``Histogram.percentile``);
* in watch mode, an ASCII sparkline chart of worker utilization and
  cache-hit ratio over successive snapshot generations.

``--once`` renders a single frame and exits (CI smoke tests);
otherwise the screen refreshes every ``--interval`` seconds until the
snapshot's meta carries ``complete: true`` or the user hits Ctrl-C.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.metrics.reporting import ascii_chart, format_table
from repro.metrics.telemetry import (
    histogram_percentile,
    validate_snapshot,
)

CLEAR = "\x1b[2J\x1b[H"


def _labels(payload: Dict[str, Any]) -> str:
    return ",".join("%s=%s" % (k, v)
                    for k, v in sorted(payload.get("labels", {}).items()))

# gauges charted over snapshot generations in watch mode (0..1 range)
TRACKED_RATIOS = ("engine_worker_utilization", "engine_cache_hit_ratio")


def read_snapshot(path) -> Dict[str, Any]:
    return validate_snapshot(json.loads(Path(path).read_text()))


def render(snapshot: Dict[str, Any],
           history: Dict[str, List[Tuple[float, float]]] = None) -> str:
    blocks = []
    meta = snapshot.get("meta", {})
    meta_line = "  ".join("%s=%s" % (k, v)
                          for k, v in sorted(meta.items()))
    blocks.append("repro.metrics-snapshot v%s%s" % (
        snapshot.get("version"),
        ("  [" + meta_line + "]") if meta_line else ""))

    scalars = []
    for name, payload in sorted(snapshot.get("counters", {}).items()):
        scalars.append([payload["name"], _labels(payload),
                        payload["value"], "counter"])
    for name, payload in sorted(snapshot.get("gauges", {}).items()):
        scalars.append([payload["name"], _labels(payload),
                        payload["value"], "gauge"])
    if scalars:
        blocks.append(format_table(
            ["name", "labels", "value", "kind"], scalars,
            title="counters / gauges"))

    rows = []
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        rows.append([payload["name"], _labels(payload), payload["count"],
                     histogram_percentile(payload, 50),
                     histogram_percentile(payload, 99),
                     payload["max"]])
    if rows:
        blocks.append(format_table(
            ["histogram", "labels", "n", "p50", "p99", "max"], rows,
            title="histograms (bucket-resolution percentiles)"))

    profile = snapshot.get("profile")
    if profile and profile.get("ops"):
        ops = profile["ops"]
        total = sum(ops.values()) or 1
        top = sorted(ops.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
        blocks.append("cycles by op: " + ", ".join(
            "%s %.0f%%" % (op, 100.0 * n / total) for op, n in top))

    if history and any(len(pts) > 1 for pts in history.values()):
        blocks.append(ascii_chart(
            {name.replace("engine_", ""): pts
             for name, pts in history.items() if pts},
            width=60, height=8, title="trend (per snapshot generation)",
            xlabel="snapshot generation", y_min=0.0))
    return "\n\n".join(blocks) + "\n"


def update_history(history: Dict[str, List[Tuple[float, float]]],
                   snapshot: Dict[str, Any], generation: int) -> None:
    gauges = snapshot.get("gauges", {})
    for name in TRACKED_RATIOS:
        for key, payload in gauges.items():
            if key == name or key.startswith(name + "{"):
                history.setdefault(name, []).append(
                    (float(generation), float(payload["value"])))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics.top",
        description="Terminal dashboard tailing a repro.metrics-"
                    "snapshot JSON file.")
    parser.add_argument("snapshot", help="metrics snapshot JSON to tail")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (watch mode)")
    args = parser.parse_args(argv)

    history: Dict[str, List[Tuple[float, float]]] = {}
    generation = 0
    last_text = None
    try:
        while True:
            try:
                snapshot = read_snapshot(args.snapshot)
            except FileNotFoundError:
                if args.once:
                    print("error: %s: no such file" % args.snapshot,
                          file=sys.stderr)
                    return 1
                time.sleep(args.interval)
                continue
            except ValueError as exc:
                print("error: %s" % exc, file=sys.stderr)
                return 1
            text = json.dumps(snapshot, sort_keys=True)
            if text != last_text:
                last_text = text
                generation += 1
                update_history(history, snapshot, generation)
                frame = render(snapshot, history)
                if args.once:
                    sys.stdout.write(frame)
                    return 0
                sys.stdout.write(CLEAR + frame)
                sys.stdout.flush()
            if snapshot.get("meta", {}).get("complete"):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
