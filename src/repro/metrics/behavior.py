"""Program-behaviour analysis: the five measures of paper §5.

* **Window activity per thread** — windows used between two successive
  context switches of a thread, assuming infinitely many windows.  For
  one scheduling quantum this is ``max_depth - min_depth + 1`` (the
  distinct stack slots touched).
* **Total window activity** — windows used during a period by all
  threads together (a repeatedly-used window counts once).
* **Concurrency** — distinct threads scheduled at least once in a
  period.
* **Granularity** — execution run length between switches (cycles).
* **Parallel slackness** — ready-queue length when a thread is picked
  (sampled by :class:`repro.runtime.scheduler.ReadyQueue`).

The tracker subscribes to the kernel's event bus (attaching with
``kernel.tracker = BehaviorTracker()`` subscribes it automatically) and
records one row per scheduling quantum; the analysis functions then
aggregate over configurable periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Quantum:
    """One scheduling quantum of one thread."""

    tid: int
    start_cycle: int
    end_cycle: int
    min_depth: int
    max_depth: int

    @property
    def windows_used(self) -> int:
        return self.max_depth - self.min_depth + 1

    @property
    def run_length(self) -> int:
        return self.end_cycle - self.start_cycle


class BehaviorTracker:
    """Records per-quantum depth excursions and run lengths."""

    def __init__(self):
        self.quanta: List[Quantum] = []
        self._tid: Optional[int] = None
        self._start = 0
        self._min = 0
        self._max = 0

    # -- event-bus subscriber ------------------------------------------------

    def on_event(self, event) -> None:
        """Consume bus events: quanta open on ``dispatch``, depth
        excursions come from ``save``/``restore``, and ``run_end``
        closes the final quantum."""
        kind = event.kind
        if kind == "dispatch":
            self.on_dispatch(event.tid, event.attrs["depth"], event.cycle)
        elif kind == "save" or kind == "restore":
            self.on_depth(event.attrs["depth"])
        elif kind == "run_end":
            self.finish(event.cycle)

    # -- kernel hooks -------------------------------------------------------

    def on_dispatch(self, tid: int, depth: int, cycles: int) -> None:
        self._close(cycles)
        self._tid = tid
        self._start = cycles
        self._min = depth
        self._max = depth

    def on_depth(self, depth: int) -> None:
        if depth < self._min:
            self._min = depth
        elif depth > self._max:
            self._max = depth

    def finish(self, cycles: int) -> None:
        self._close(cycles)

    def _close(self, cycles: int) -> None:
        if self._tid is not None:
            self.quanta.append(Quantum(
                self._tid, self._start, cycles, self._min, self._max))
            self._tid = None

    # -- §5 measures ------------------------------------------------------------

    def window_activity_per_thread(self) -> Dict[int, float]:
        """Mean windows used per quantum, per thread."""
        sums: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for q in self.quanta:
            sums[q.tid] = sums.get(q.tid, 0) + q.windows_used
            counts[q.tid] = counts.get(q.tid, 0) + 1
        return {tid: sums[tid] / counts[tid] for tid in sums}

    def mean_window_activity(self) -> float:
        if not self.quanta:
            return 0.0
        return sum(q.windows_used for q in self.quanta) / len(self.quanta)

    def concurrency(self, period: int = 64) -> List[int]:
        """Distinct threads scheduled in each window of ``period``
        consecutive quanta."""
        out = []
        for i in range(0, len(self.quanta), period):
            chunk = self.quanta[i:i + period]
            out.append(len({q.tid for q in chunk}))
        return out

    def total_window_activity(self, period: int = 64) -> List[int]:
        """Windows used per period by all threads together: the union
        of (thread, depth-slot) pairs touched (a repeatedly used window
        counts once) — the measure the sharing schemes' saturation
        point is proportional to (§6.3)."""
        out = []
        for i in range(0, len(self.quanta), period):
            chunk = self.quanta[i:i + period]
            slots = set()
            for q in chunk:
                for d in range(q.min_depth, q.max_depth + 1):
                    slots.add((q.tid, d))
            out.append(len(slots))
        return out

    def mean_total_window_activity(self, period: int = 64) -> float:
        values = self.total_window_activity(period)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def mean_concurrency(self, period: int = 64) -> float:
        values = self.concurrency(period)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def granularity(self) -> float:
        """Mean run length (cycles) between context switches."""
        if not self.quanta:
            return 0.0
        return (sum(q.run_length for q in self.quanta)
                / len(self.quanta))
