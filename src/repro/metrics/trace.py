"""Trace CLI: record an instrumented run and inspect its event stream.

    python -m repro.metrics.trace                      # spellcheck summary
    python -m repro.metrics.trace --list --kind switch,overflow --limit 20
    python -m repro.metrics.trace --app pingpong --scheme SNP --windows 5
    python -m repro.metrics.trace --perfetto trace.json --report report.json

Records one run of the spell-check pipeline (or a synthetic workload)
with the full observability stack attached — event recorder, behaviour
tracker, occupancy timeline, Perfetto exporter — then prints or exports
what was captured:

* ``--summary`` (default): per-thread cycle attribution, switch-cost
  percentiles (p50/p95/p99), trap counts and event totals;
* ``--list``: the raw event log, filterable by ``--kind``/``--tid``/
  ``--start``/``--end`` and capped with ``--limit``;
* ``--perfetto PATH``: Chrome trace-event JSON for chrome://tracing;
* ``--report PATH``: the versioned RunReport JSON document.
"""

from __future__ import annotations

import argparse
import sys

from repro.metrics.behavior import BehaviorTracker
from repro.metrics.events import TraceRecorder
from repro.metrics.perfetto import PerfettoExporter
from repro.metrics.report import build_run_report, write_report
from repro.metrics.reporting import format_table
from repro.metrics.tracing import OccupancyTimeline
from repro.runtime.kernel import Kernel

APPS = ("spellcheck", "pingpong", "forkjoin")


def record_run(args):
    """Build the requested workload fully instrumented and run it."""
    injector = None
    if args.faults:
        from repro.faults import FaultInjector, plan_from_arg
        injector = FaultInjector(plan_from_arg(args.faults,
                                               seed=args.seed))
    kernel = Kernel(n_windows=args.windows, scheme=args.scheme,
                    verify_registers=injector is not None,
                    faults=injector, audit=args.audit,
                    watchdog=args.watchdog, crash_dir=args.crash_dir)
    recorder = kernel.enable_tracing()
    exporter = PerfettoExporter()
    kernel.events.subscribe(exporter)
    tracker = BehaviorTracker()
    kernel.tracker = tracker
    timeline = OccupancyTimeline()
    kernel.timeline = timeline
    telemetry = None
    if args.metrics or args.metrics_out:
        from repro.metrics.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        telemetry.attach(kernel)

    if args.app == "spellcheck":
        from repro.apps.spellcheck.pipeline import (
            SpellConfig,
            build_spellchecker,
        )
        config = SpellConfig.named(args.concurrency, args.granularity,
                                   scale=args.scale, seed=args.seed)
        build_spellchecker(kernel, config)
        workload = {"app": "spellcheck", "concurrency": args.concurrency,
                    "granularity": args.granularity, "scale": args.scale,
                    "m": config.m, "n": config.n}
    elif args.app == "pingpong":
        from repro.apps.synthetic import spawn_ping_pong
        spawn_ping_pong(kernel, rounds=args.rounds)
        workload = {"app": "pingpong", "rounds": args.rounds}
    else:
        from repro.apps.synthetic import spawn_fork_join
        spawn_fork_join(kernel, n_children=3, items=args.rounds)
        workload = {"app": "forkjoin", "children": 3,
                    "items": args.rounds}

    config = dict(workload, scheme=args.scheme, n_windows=args.windows,
                  seed=args.seed)
    if args.crash_dir is not None and args.app == "spellcheck":
        kernel.crash_config = dict(config, workload="spellcheck",
                                   verify_registers=injector is not None,
                                   audit=args.audit,
                                   watchdog=args.watchdog)
    result = kernel.run()
    if injector is not None:
        print(injector.summary())
    if telemetry is not None:
        telemetry.finalize(result)
    return result, config, recorder, exporter, tracker, timeline, telemetry


def print_events(recorder: TraceRecorder, args) -> None:
    kinds = ([k.strip() for k in args.kind.split(",") if k.strip()]
             if args.kind else None)
    events = recorder.filter(kinds=kinds, tid=args.tid,
                             start=args.start, end=args.end)
    shown = events if args.limit is None else events[:args.limit]
    print("     cycle  thread  kind        attrs")
    for event in shown:
        print(event)
    if len(shown) < len(events):
        print("... %d more (raise --limit)" % (len(events) - len(shown)))


def print_summary(result, recorder: TraceRecorder, tracker,
                  timeline) -> None:
    counters = result.counters
    names = {t.tid: t.name for t in result.threads}

    print("run: %d cycles, %d steps, %d events" % (
        counters.total_cycles, result.steps, len(recorder)))
    print()

    per_cycles = recorder.per_thread_cycles()
    rows = []
    total = counters.total_cycles or 1
    for t in sorted(result.threads, key=lambda t: t.tid):
        cycles = per_cycles.get(t.tid, 0)
        rows.append([t.name, cycles, "%.1f%%" % (100.0 * cycles / total),
                     counters.per_thread_switches.get(t.tid, 0),
                     counters.per_thread_saves.get(t.tid, 0),
                     counters.per_thread_restores.get(t.tid, 0),
                     t.blocks])
    print(format_table(
        ["thread", "cycles", "share", "switches", "saves", "restores",
         "blocks"], rows, title="per-thread cycle attribution"))
    print()

    stats = recorder.switch_cost_stats()
    print(format_table(
        ["count", "mean", "p50", "p95", "p99", "max"],
        [[stats["count"], stats["mean"], stats["p50"], stats["p95"],
          stats["p99"], stats["max"]]],
        title="context-switch cost (cycles)"))
    print()

    traps = recorder.trap_timeline()
    print("traps: %d overflow, %d underflow (trap probability %.4f)" % (
        counters.overflow_traps, counters.underflow_traps,
        counters.trap_probability))
    for event in traps[:10]:
        print("  %8d  %-9s %s" % (
            event.cycle, event.kind,
            names.get(event.tid, "T%s" % event.tid)))
    if len(traps) > 10:
        print("  ... %d more (use --list --kind overflow,underflow)"
              % (len(traps) - 10))
    print()

    if tracker.quanta:
        print("behavior: %.2f windows/quantum, %.1f-cycle granularity, "
              "%.2f mean concurrency" % (
                  tracker.mean_window_activity(), tracker.granularity(),
                  tracker.mean_concurrency()))
    if timeline.samples:
        print("windows: %.0f%% mean occupancy, %.0f%% churn "
              "(%d timeline samples)" % (
                  100 * timeline.occupancy_ratio(),
                  100 * timeline.churn(), len(timeline.samples)))
    print()

    rows = [[kind, count]
            for kind, count in sorted(recorder.by_kind().items())]
    print(format_table(["event", "count"], rows, title="events by kind"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics.trace",
        description="Record an instrumented run and inspect its "
                    "structured trace events.")
    parser.add_argument("--app", choices=APPS, default="spellcheck")
    parser.add_argument("--scheme", default="SP",
                        choices=["NS", "SNP", "SP"])
    parser.add_argument("--windows", type=int, default=8)
    parser.add_argument("--concurrency", default="high",
                        choices=["high", "low"])
    parser.add_argument("--granularity", default="coarse",
                        choices=["coarse", "medium", "fine"])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="spellcheck corpus scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=1993)
    parser.add_argument("--rounds", type=int, default=100,
                        help="iterations for the synthetic workloads")
    parser.add_argument("--list", action="store_true",
                        help="print the (filtered) raw event log")
    parser.add_argument("--summary", action="store_true",
                        help="print run statistics (default action)")
    parser.add_argument("--kind", type=str, default=None,
                        help="comma-separated event kinds for --list")
    parser.add_argument("--tid", type=int, default=None,
                        help="only events of this thread for --list")
    parser.add_argument("--start", type=int, default=None,
                        help="events at or after this cycle")
    parser.add_argument("--end", type=int, default=None,
                        help="events at or before this cycle")
    parser.add_argument("--limit", type=int, default=200,
                        help="max events printed by --list")
    parser.add_argument("--perfetto", metavar="PATH", default=None,
                        help="write Chrome trace-event JSON here")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the RunReport JSON here")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="fault-injection plan, e.g. "
                             "'register@3,wim@2' or 'random:4' "
                             "(fault events land in --list output)")
    parser.add_argument("--audit", action="store_true",
                        help="run the full invariant check after every "
                             "dispatch/call/return")
    parser.add_argument("--watchdog", type=int, metavar="STEPS",
                        default=None,
                        help="raise LivelockError after this many steps "
                             "without progress")
    parser.add_argument("--crash-dir", metavar="DIR", default=None,
                        help="write a replayable crash bundle here on "
                             "any simulator error")
    parser.add_argument("--metrics", action="store_true",
                        help="collect aggregate telemetry (histograms + "
                             "cycle-domain profiler)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the repro.metrics-snapshot JSON here "
                             "(implies --metrics)")
    args = parser.parse_args(argv)

    try:
        result, config, recorder, exporter, tracker, timeline, telemetry \
            = record_run(args)
    except Exception as exc:
        from repro.errors import ReproError

        if not isinstance(exc, ReproError):
            raise
        print("simulator fault: %s: %s" % (type(exc).__name__, exc),
              file=sys.stderr)
        bundle = getattr(exc, "bundle_path", None)
        if bundle is not None:
            print("crash bundle: %s" % bundle, file=sys.stderr)
            print("replay with: python -m repro.faults replay %s"
                  % bundle, file=sys.stderr)
        return 1

    metrics_snapshot = None
    if telemetry is not None:
        metrics_snapshot = telemetry.snapshot(dict(config))
    wrote = False
    if args.perfetto:
        if telemetry is not None:
            exporter.add_telemetry(telemetry)
        exporter.write(args.perfetto)
        print("wrote Perfetto trace: %s" % args.perfetto)
        wrote = True
    if args.report:
        report = build_run_report(result, config=config, tracker=tracker,
                                  timeline=timeline, recorder=recorder,
                                  metrics=metrics_snapshot)
        write_report(report, args.report)
        print("wrote RunReport: %s" % args.report)
        wrote = True
    if args.metrics_out:
        from repro.metrics.telemetry import write_snapshot

        write_snapshot(metrics_snapshot, args.metrics_out)
        print("wrote metrics snapshot: %s" % args.metrics_out)
        wrote = True
    if args.list:
        print_events(recorder, args)
    if args.summary or not (args.list or wrote):
        print_summary(result, recorder, tracker, timeline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
