"""Chrome trace-event / Perfetto export of the structured event stream.

Subscribes to the kernel's :class:`repro.metrics.events.EventBus` and
builds a JSON object in the Chrome trace-event format, loadable in
``chrome://tracing`` or https://ui.perfetto.dev:

* **pid 1 — "threads"**: one track per simulated thread, with a
  duration ("X") slice per scheduling quantum, instant ("i") events for
  window traps, context switches, blocks and wakes, and a counter ("C")
  track for the ready-queue depth;
* **pid 2 — "windows"**: one track per physical register window, with a
  duration slice for each period a thread's frame occupied the window
  (best effort: derived from ``save``/``restore`` events, so window
  transfers performed inside trap handlers extend the owning slice).

Timestamps are simulated cycles reported as microseconds (the trace
format's native unit), so 1 µs in the viewer = 1 simulated cycle.

Usage::

    kernel = Kernel(n_windows=8, scheme="SP")
    exporter = PerfettoExporter()
    kernel.events.subscribe(exporter)
    ...spawn and run...
    exporter.write("trace.json")
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.metrics.events import TraceEvent

THREADS_PID = 1
WINDOWS_PID = 2

#: event kinds rendered as instants on the owning thread's track
_INSTANT_KINDS = ("overflow", "underflow", "switch", "block", "wake")


class PerfettoExporter:
    """Event-bus subscriber producing Chrome trace-event JSON."""

    def __init__(self, include_queue_counter: bool = True):
        self.include_queue_counter = include_queue_counter
        self._slices: List[dict] = []
        self._instants: List[dict] = []
        self._counters: List[dict] = []
        self._thread_names: Dict[int, str] = {}
        self._windows_seen: set = set()
        self._open_quantum: Optional[Tuple[int, int]] = None
        self._open_windows: Dict[int, Tuple[int, int]] = {}
        self._last_cycle = 0
        self._finished = False

    # -- bus subscriber ------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        cycle = event.cycle
        self._last_cycle = max(self._last_cycle, cycle)
        if kind == "spawn":
            self._thread_names[event.tid] = event.attrs.get(
                "name", "T%d" % event.tid)
        elif kind == "dispatch":
            self._close_quantum(cycle)
            self._open_quantum = (event.tid, cycle)
        elif kind in ("block", "yield", "retire"):
            if (self._open_quantum is not None
                    and self._open_quantum[0] == event.tid):
                self._close_quantum(cycle)
        elif kind == "save":
            window = event.attrs["window"]
            self._close_window(window, cycle)
            self._open_windows[window] = (event.tid, cycle)
        elif kind == "restore":
            freed = event.attrs.get("freed")
            if freed is not None:
                self._close_window(freed, cycle)
        elif kind == "enqueue":
            if self.include_queue_counter:
                self._counters.append({
                    "name": "ready_queue", "ph": "C", "ts": cycle,
                    "pid": THREADS_PID, "tid": 0,
                    "args": {"depth": event.attrs.get("depth", 0)},
                })
        elif kind == "run_end":
            self.finish(cycle)
        if kind in _INSTANT_KINDS and event.tid is not None:
            self._instants.append({
                "name": kind, "ph": "i", "s": "t", "ts": cycle,
                "pid": THREADS_PID, "tid": event.tid,
                "cat": "trap" if kind in ("overflow", "underflow")
                       else "sched",
                "args": dict(event.attrs),
            })

    # -- slice bookkeeping ---------------------------------------------------

    def _close_quantum(self, cycle: int) -> None:
        if self._open_quantum is None:
            return
        tid, start = self._open_quantum
        self._open_quantum = None
        self._slices.append({
            "name": "quantum", "cat": "sched", "ph": "X",
            "ts": start, "dur": max(cycle - start, 0),
            "pid": THREADS_PID, "tid": tid,
        })

    def _close_window(self, window: int, cycle: int) -> None:
        self._windows_seen.add(window)
        entry = self._open_windows.pop(window, None)
        if entry is None:
            return
        tid, start = entry
        self._slices.append({
            "name": "T%d" % tid, "cat": "window", "ph": "X",
            "ts": start, "dur": max(cycle - start, 0),
            "pid": WINDOWS_PID, "tid": window,
            "args": {"owner": tid},
        })

    # -- telemetry overlays --------------------------------------------------

    def add_counter_track(self, name: str, samples,
                          pid: int = THREADS_PID, tid: int = 0) -> int:
        """Append a counter ("C") track from ``(cycle, value)`` samples.

        Overlays telemetry series — window occupancy from the
        cycle-domain profiler, hit rates, queue depths — on the event
        trace, alongside the built-in ready-queue counter.  Returns the
        number of samples added.
        """
        count = 0
        for cycle, value in samples:
            self._counters.append({
                "name": name, "ph": "C", "ts": cycle,
                "pid": pid, "tid": tid,
                "args": {"value": value},
            })
            count += 1
        return count

    def add_telemetry(self, telemetry) -> int:
        """Add the standard counter tracks from a
        :class:`repro.metrics.telemetry.RunTelemetry` bundle (currently
        the profiler's window-occupancy series)."""
        profiler = telemetry.profiler
        if profiler is None or not profiler.occupancy:
            return 0
        return self.add_counter_track("window_occupancy",
                                      profiler.occupancy)

    def finish(self, cycle: Optional[int] = None) -> None:
        """Close every open slice (idempotent; run automatically on the
        ``run_end`` event)."""
        if self._finished:
            return
        end = cycle if cycle is not None else self._last_cycle
        self._close_quantum(end)
        for window in list(self._open_windows):
            self._close_window(window, end)
        self._finished = True

    # -- export --------------------------------------------------------------

    def _metadata(self) -> List[dict]:
        meta = [
            {"name": "process_name", "ph": "M", "pid": THREADS_PID,
             "tid": 0, "args": {"name": "threads"}},
            {"name": "process_name", "ph": "M", "pid": WINDOWS_PID,
             "tid": 0, "args": {"name": "windows"}},
        ]
        for tid in sorted(self._thread_names):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": THREADS_PID, "tid": tid,
                         "args": {"name": self._thread_names[tid]}})
        for window in sorted(self._windows_seen):
            meta.append({"name": "thread_name", "ph": "M",
                         "pid": WINDOWS_PID, "tid": window,
                         "args": {"name": "W%d" % window}})
        return meta

    def to_dict(self) -> dict:
        """The complete trace as a Chrome trace-event JSON object."""
        self.finish()
        return {
            "traceEvents": (self._metadata() + self._slices
                            + self._instants + self._counters),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.metrics.perfetto",
                          "clock": "simulated cycles (1 cycle = 1 us)"},
        }

    def dumps(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str, indent: Optional[int] = None) -> str:
        """Write the trace JSON to ``path``; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.dumps(indent=indent))
        return path

    # -- introspection (used by tests and the CLI) ---------------------------

    def duration_events(self) -> List[dict]:
        self.finish()
        return [e for e in self._slices if e["ph"] == "X"]

    def instant_events(self) -> List[dict]:
        return list(self._instants)
