"""Metrics exporters: ``python -m repro.metrics.export``.

Converts a ``repro.metrics-snapshot`` document (written by the
``--metrics-out`` flags, or embedded in a RunReport under its
``metrics`` key) into scrape- and tooling-friendly formats:

    python -m repro.metrics.export snapshot.json --prom
    python -m repro.metrics.export report.json --flamegraph flame.json
    python -m repro.metrics.export snapshot.json --collapsed | flamegraph.pl

* ``--prom`` (default): the Prometheus text exposition format, with
  the snapshot's meta entries attached as labels to every series;
* ``--flamegraph [PATH]``: a nested ``{name, value, children}`` JSON
  tree (d3-flame-graph style) built from the cycle-domain profiler's
  sampled stacks, printed to stdout when no path is given;
* ``--collapsed``: ``stack;frames cycles`` lines (Brendan Gregg's
  collapsed format), pipeable straight into ``flamegraph.pl``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict

from repro.ioutil import atomic_write_text
from repro.metrics.profiler import flamegraph_from_stacks
from repro.metrics.report import SCHEMA_NAME as REPORT_SCHEMA
from repro.metrics.telemetry import (
    SNAPSHOT_SCHEMA,
    to_prometheus,
    validate_snapshot,
)


def load_snapshot(path) -> Dict[str, Any]:
    """Read a snapshot from ``path`` — either a bare
    ``repro.metrics-snapshot`` document or a RunReport embedding one."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict):
        raise ValueError("%s: not a JSON object" % path)
    schema = doc.get("schema")
    if schema == SNAPSHOT_SCHEMA:
        return validate_snapshot(doc)
    if schema == REPORT_SCHEMA:
        metrics = doc.get("metrics")
        if metrics is None:
            raise ValueError(
                "%s: RunReport has no embedded metrics section (run "
                "with --metrics)" % path)
        return validate_snapshot(metrics)
    raise ValueError("%s: unrecognised schema %r" % (path, schema))


def _stacks_of(snapshot: Dict[str, Any]) -> Dict[str, int]:
    profile = snapshot.get("profile")
    if not profile or not profile.get("stacks"):
        raise ValueError(
            "snapshot has no profiler stacks (profiling disabled, or "
            "the run was too short to cross a sample boundary)")
    return profile["stacks"]


def collapsed_stacks(snapshot: Dict[str, Any]) -> str:
    stacks = _stacks_of(snapshot)
    return "".join("%s %d\n" % (stack, cycles)
                   for stack, cycles in sorted(stacks.items()))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics.export",
        description="Export a repro.metrics-snapshot document as "
                    "Prometheus text, a flamegraph JSON, or collapsed "
                    "stacks.")
    parser.add_argument("snapshot",
                        help="metrics snapshot JSON, or a RunReport "
                             "with an embedded metrics section")
    parser.add_argument("--prom", action="store_true",
                        help="print the Prometheus text exposition "
                             "format (default)")
    parser.add_argument("--no-meta-labels", action="store_true",
                        help="do not attach snapshot meta entries as "
                             "Prometheus labels")
    parser.add_argument("--flamegraph", metavar="PATH", nargs="?",
                        const="-", default=None,
                        help="write the flamegraph JSON tree here "
                             "('-' or no value: stdout)")
    parser.add_argument("--collapsed", action="store_true",
                        help="print collapsed stacks (flamegraph.pl "
                             "input)")
    args = parser.parse_args(argv)

    try:
        snapshot = load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1

    wrote = False
    try:
        if args.flamegraph is not None:
            tree = flamegraph_from_stacks(_stacks_of(snapshot))
            text = json.dumps(tree, indent=2, sort_keys=True)
            if args.flamegraph == "-":
                print(text)
            else:
                atomic_write_text(args.flamegraph, text + "\n")
                print("wrote flamegraph JSON: %s" % args.flamegraph)
            wrote = True
        if args.collapsed:
            sys.stdout.write(collapsed_stacks(snapshot))
            wrote = True
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    if args.prom or not wrote:
        sys.stdout.write(to_prometheus(
            snapshot, meta_labels=not args.no_meta_labels))
    return 0


if __name__ == "__main__":
    sys.exit(main())
