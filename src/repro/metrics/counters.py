"""Event counters shared by the CPU, the window-management schemes and the
runtime kernel.

Everything the paper's evaluation reports is derived from these counts:

* dynamic ``save``/``restore`` instruction counts (Table 1, Figure 13),
* overflow/underflow trap counts (Figure 13),
* per-context-switch window-transfer histograms (Table 2, Figure 12),
* cycle totals split by category (Figures 11, 12, 14, 15).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SwitchRecord:
    """One context switch: which threads, how many windows moved, cycle cost."""

    out_tid: Optional[int]
    in_tid: int
    saves: int
    restores: int
    cycles: int


@dataclass
class TrapRecord:
    """One window trap: kind, whether a window was transferred, cycle cost."""

    kind: str  # "overflow" | "underflow"
    tid: int
    spilled: bool
    restored: bool
    cycles: int


@dataclass
class Counters:
    """Mutable aggregate statistics for one simulation run."""

    saves: int = 0
    restores: int = 0
    overflow_traps: int = 0
    underflow_traps: int = 0
    windows_spilled: int = 0
    windows_restored: int = 0
    context_switches: int = 0
    switch_transfer_hist: _Counter = field(default_factory=_Counter)

    compute_cycles: int = 0
    call_cycles: int = 0
    trap_cycles: int = 0
    switch_cycles: int = 0

    per_thread_switches: Dict[int, int] = field(default_factory=dict)
    per_thread_saves: Dict[int, int] = field(default_factory=dict)
    per_thread_restores: Dict[int, int] = field(default_factory=dict)

    keep_trace: bool = False
    switch_trace: List[SwitchRecord] = field(default_factory=list)
    trap_trace: List[TrapRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Total simulated cycles across all cost categories."""
        return (self.compute_cycles + self.call_cycles
                + self.trap_cycles + self.switch_cycles)

    @property
    def window_traps(self) -> int:
        """Overflow plus underflow traps (numerator of Figure 13)."""
        return self.overflow_traps + self.underflow_traps

    @property
    def trap_probability(self) -> float:
        """Window traps divided by executed save+restore instructions.

        This is exactly the y-axis of the paper's Figure 13.
        """
        executed = self.saves + self.restores
        if executed == 0:
            return 0.0
        return self.window_traps / executed

    @property
    def avg_switch_cycles(self) -> float:
        """Average cycles per context switch (y-axis of Figure 12)."""
        if self.context_switches == 0:
            return 0.0
        return self.switch_cycles / self.context_switches

    def record_save(self, tid: int) -> None:
        self.saves += 1
        self.per_thread_saves[tid] = self.per_thread_saves.get(tid, 0) + 1

    def record_restore(self, tid: int) -> None:
        self.restores += 1
        self.per_thread_restores[tid] = (
            self.per_thread_restores.get(tid, 0) + 1)

    def record_trap(self, kind: str, tid: int, cycles: int,
                    spilled: bool = False, restored: bool = False) -> None:
        if kind == "overflow":
            self.overflow_traps += 1
        elif kind == "underflow":
            self.underflow_traps += 1
        else:
            raise ValueError("unknown trap kind: %r" % kind)
        if spilled:
            self.windows_spilled += 1
        if restored:
            self.windows_restored += 1
        self.trap_cycles += cycles
        if self.keep_trace:
            self.trap_trace.append(
                TrapRecord(kind, tid, spilled, restored, cycles))

    def record_switch(self, out_tid: Optional[int], in_tid: int,
                      saves: int, restores: int, cycles: int) -> None:
        self.context_switches += 1
        self.switch_transfer_hist[(saves, restores)] += 1
        self.windows_spilled += saves
        self.windows_restored += restores
        self.switch_cycles += cycles
        self.per_thread_switches[in_tid] = (
            self.per_thread_switches.get(in_tid, 0) + 1)
        if self.keep_trace:
            self.switch_trace.append(
                SwitchRecord(out_tid, in_tid, saves, restores, cycles))

    def fold_thread_stats(self, thread_windows) -> None:
        """Fold the batched per-thread tallies each
        :class:`~repro.windows.thread_windows.ThreadWindows` accumulated
        (plain int fields, bumped inline on the hot path) into the
        per-thread dicts, and zero them.

        The CPU and schemes keep the scalar totals (``saves``,
        ``restores``, cycle counters) up to date immediately — the event
        bus clock reads ``total_cycles`` mid-run — but only touch the
        dicts here, at run end and at crash capture.  Idempotent across
        repeated folds because the fields are reset.
        """
        for tw in thread_windows:
            if tw.stat_saves:
                self.per_thread_saves[tw.tid] = (
                    self.per_thread_saves.get(tw.tid, 0) + tw.stat_saves)
                tw.stat_saves = 0
            if tw.stat_restores:
                self.per_thread_restores[tw.tid] = (
                    self.per_thread_restores.get(tw.tid, 0)
                    + tw.stat_restores)
                tw.stat_restores = 0
            if tw.stat_switches:
                self.per_thread_switches[tw.tid] = (
                    self.per_thread_switches.get(tw.tid, 0)
                    + tw.stat_switches)
                tw.stat_switches = 0

    def record_compute(self, cycles: int) -> None:
        self.compute_cycles += cycles

    def record_call_cycles(self, cycles: int) -> None:
        self.call_cycles += cycles

    def transfer_histogram(self) -> Dict[Tuple[int, int], int]:
        """Histogram of (windows saved, windows restored) per switch."""
        return dict(self.switch_transfer_hist)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict summary, convenient for reporting and assertions."""
        return {
            "saves": self.saves,
            "restores": self.restores,
            "overflow_traps": self.overflow_traps,
            "underflow_traps": self.underflow_traps,
            "windows_spilled": self.windows_spilled,
            "windows_restored": self.windows_restored,
            "context_switches": self.context_switches,
            "compute_cycles": self.compute_cycles,
            "call_cycles": self.call_cycles,
            "trap_cycles": self.trap_cycles,
            "switch_cycles": self.switch_cycles,
            "total_cycles": self.total_cycles,
            "per_thread_saves": dict(self.per_thread_saves),
            "per_thread_restores": dict(self.per_thread_restores),
        }
