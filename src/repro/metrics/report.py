"""Versioned JSON run reports: one document per simulation run.

A *RunReport* merges everything the instrumentation layer knows about a
run — the :class:`~repro.metrics.counters.Counters` snapshot, the §5
behaviour measures from :class:`~repro.metrics.behavior.BehaviorTracker`,
occupancy-timeline statistics, and event-stream statistics from a
:class:`~repro.metrics.events.TraceRecorder` — into a single dict with a
stable, versioned schema.  The experiment harness and the benchmark
suite emit these so per-PR performance trajectories can be diffed
mechanically.

Schema (``repro.run-report`` version 1)::

    {
      "schema": "repro.run-report",
      "version": 1,
      "config":   {...caller-supplied run parameters...},
      "counters": {...Counters.snapshot(), per-thread keys as strings,
                   plus "switch_transfer_hist": {"saves,restores": n}},
      "threads":  [{"tid", "name", "state", "calls", "returns",
                    "blocks", "result_bytes"}],
      "steps":    <kernel steps>,
      "slackness": {"samples": n, "mean": x} | null,
      "behavior": {...BehaviorTracker measures...} | null,
      "timeline": {"samples", "dropped", "occupancy_ratio", "churn"}
                  | null,
      "events":   {"total", "by_kind", "switch_cost",
                   "per_thread_cycles"} | null,
      "metrics":  {...repro.metrics-snapshot v1 document...}
                  (present only when telemetry ran)
    }

All mapping keys are strings so a report survives a JSON round-trip
unchanged (``from_json(to_json(r)) == r``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

SCHEMA_NAME = "repro.run-report"
SCHEMA_VERSION = 1


def _str_keys(mapping: Dict[Any, Any]) -> Dict[str, Any]:
    return {str(k): v for k, v in mapping.items()}


def build_run_report(result, config: Optional[Dict[str, Any]] = None,
                     tracker=None, timeline=None,
                     recorder=None, metrics=None) -> Dict[str, Any]:
    """Assemble the report dict for one finished run.

    ``result`` is the :class:`repro.runtime.kernel.RunResult`; the
    optional observers contribute their sections when given.  The
    ``counters`` section reproduces ``Counters.snapshot()`` exactly
    (with per-thread keys stringified for JSON).

    ``metrics`` is an optional ``repro.metrics-snapshot`` document (see
    :mod:`repro.metrics.telemetry`); it is embedded under a ``metrics``
    key *only when given*, so reports from uninstrumented runs stay
    byte-identical to earlier schema-v1 reports (the golden files and
    the content-addressed cache depend on that).
    """
    counters = result.counters
    snap = dict(counters.snapshot())
    snap["per_thread_saves"] = _str_keys(snap["per_thread_saves"])
    snap["per_thread_restores"] = _str_keys(snap["per_thread_restores"])
    snap["per_thread_switches"] = _str_keys(counters.per_thread_switches)
    snap["switch_transfer_hist"] = {
        "%d,%d" % key: count
        for key, count in sorted(counters.transfer_histogram().items())}

    threads = [{
        "tid": t.tid,
        "name": t.name,
        "state": t.state,
        "calls": t.calls,
        "returns": t.returns,
        "blocks": t.blocks,
        "result_bytes": (len(t.result)
                         if isinstance(t.result, (bytes, str)) else None),
    } for t in result.threads]

    slackness = None
    if result.slackness_samples:
        samples = result.slackness_samples
        slackness = {"samples": len(samples),
                     "mean": sum(samples) / len(samples)}

    behavior = None
    if tracker is not None and tracker.quanta:
        behavior = {
            "quanta": len(tracker.quanta),
            "mean_window_activity": tracker.mean_window_activity(),
            "mean_total_window_activity":
                tracker.mean_total_window_activity(),
            "mean_concurrency": tracker.mean_concurrency(),
            "granularity": tracker.granularity(),
            "window_activity_per_thread":
                _str_keys(tracker.window_activity_per_thread()),
        }

    timeline_stats = None
    if timeline is not None and timeline.samples:
        timeline_stats = {
            "samples": len(timeline.samples),
            "dropped": timeline.dropped,
            "occupancy_ratio": timeline.occupancy_ratio(),
            "churn": timeline.churn(),
        }

    events = None
    if recorder is not None and len(recorder):
        events = {
            "total": len(recorder),
            "by_kind": dict(sorted(recorder.by_kind().items())),
            "switch_cost": recorder.switch_cost_stats(),
            "per_thread_cycles": _str_keys(recorder.per_thread_cycles()),
        }

    report = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": dict(config or {}),
        "counters": snap,
        "threads": threads,
        "steps": result.steps,
        "slackness": slackness,
        "behavior": behavior,
        "timeline": timeline_stats,
        "events": events,
    }
    if metrics is not None:
        report["metrics"] = metrics
    return report


def to_json(report: Dict[str, Any], indent: Optional[int] = 2) -> str:
    """Serialize a report (stable key order for diffability)."""
    return json.dumps(report, indent=indent, sort_keys=True)


def from_json(text: str) -> Dict[str, Any]:
    """Parse and validate a serialized RunReport."""
    report = json.loads(text)
    if not isinstance(report, dict):
        raise ValueError("RunReport must be a JSON object")
    if report.get("schema") != SCHEMA_NAME:
        raise ValueError("not a %s document: schema=%r"
                         % (SCHEMA_NAME, report.get("schema")))
    version = report.get("version")
    if not isinstance(version, int) or version < 1:
        raise ValueError("bad RunReport version: %r" % (version,))
    if version > SCHEMA_VERSION:
        raise ValueError(
            "RunReport version %d is newer than supported version %d"
            % (version, SCHEMA_VERSION))
    for section in ("counters", "threads"):
        if section not in report:
            raise ValueError("RunReport missing %r section" % section)
    return report


def write_report(report: Dict[str, Any], path: str) -> str:
    """Write a report to ``path`` as JSON, atomically (temp file +
    rename), so parallel or interrupted writers can never leave a
    truncated document behind; returns the path."""
    import os
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(to_json(report))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
