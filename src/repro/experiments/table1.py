"""Table 1 — program behaviour of the spell checker (§5.2).

Per-thread context-switch counts for the six (concurrency,
granularity) configurations under FIFO scheduling, plus the dynamic
count of save instructions, side by side with the paper's measured
numbers.

Absolute counts differ from the paper's (our corpus and dictionaries
are synthetic and our filters make fewer calls per byte than the
authors' lex-generated C code), but the structural properties the
paper builds on are reproduced exactly:

* save counts identical across all six configurations and all schemes;
* switch counts scaling ~1/buffer-size per thread;
* the dictionary threads pinned to ~bytes/M switches;
* high concurrency switching far more than low at equal granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.spellcheck.pipeline import THREAD_NAMES
from repro.experiments.harness import env_scale, run_point
from repro.experiments.paper_data import (
    PAPER_TABLE1_SAVES,
    PAPER_TABLE1_SWITCHES,
)
from repro.metrics.reporting import format_table

CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("high", "fine"), ("high", "medium"), ("high", "coarse"),
    ("low", "fine"), ("low", "medium"), ("low", "coarse"),
)


@dataclass
class Table1Result:
    switches: Dict[Tuple[str, str], Dict[str, int]]
    saves: Dict[str, int]
    scale: float

    def total_switches(self, config: Tuple[str, str]) -> int:
        return sum(self.switches[config].values())


def run_table1(scale: Optional[float] = None,
               scheme: str = "SP", engine=None) -> Table1Result:
    """Measure all six configurations (FIFO; counts are scheme-
    independent, which the test suite verifies separately).

    With an engine the six configuration runs fan out over its worker
    pool / cache; without one they run serially in-process.
    """
    if scale is None:
        scale = env_scale()
    switches: Dict[Tuple[str, str], Dict[str, int]] = {}
    saves: Dict[str, int] = {}
    if engine is not None:
        from repro.experiments.engine import PointSpec

        specs = [PointSpec(scheme=scheme, n_windows=12,
                           concurrency=concurrency,
                           granularity=granularity, scale=scale)
                 for concurrency, granularity in CONFIGS]
        points = engine.run_points(specs)
    else:
        points = [run_point(scheme, 12, concurrency, granularity,
                            scale=scale)
                  for concurrency, granularity in CONFIGS]
    for (concurrency, granularity), point in zip(CONFIGS, points):
        if point is None:  # quarantined by a keep_going engine
            switches[(concurrency, granularity)] = {}
            continue
        switches[(concurrency, granularity)] = point.per_thread_switches
        saves = point.per_thread_saves  # identical across configs
    return Table1Result(switches, saves, scale)


def render_table1(result: Table1Result) -> str:
    headers = (["thread"]
               + ["%s/%s" % (c[0], c[1][:4]) for c in CONFIGS]
               + ["saves"])
    rows: List[List[object]] = []
    for name in THREAD_NAMES:
        row: List[object] = [name]
        for config in CONFIGS:
            row.append(result.switches[config].get(name, 0))
        row.append(result.saves.get(name, 0))
        rows.append(row)
    totals: List[object] = ["total"]
    for config in CONFIGS:
        totals.append(result.total_switches(config))
    totals.append(sum(result.saves.values()))
    rows.append(totals)

    ours = format_table(
        headers, rows,
        title="Table 1 (measured, scale=%.2f): context switches per "
              "configuration + dynamic save counts" % result.scale)

    paper_rows: List[List[object]] = []
    for name in THREAD_NAMES:
        row = [name]
        for config in CONFIGS:
            row.append(PAPER_TABLE1_SWITCHES[config].get(name, 0))
        row.append(PAPER_TABLE1_SAVES.get(name, 0))
        paper_rows.append(row)
    paper = format_table(headers, paper_rows,
                         title="Table 1 (paper, scale=1.0)")
    return ours + "\n\n" + paper
