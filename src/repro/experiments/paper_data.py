"""Reference numbers transcribed from the paper, for side-by-side
reporting and shape checks.

Table 1 columns are (high, fine) (high, medium) (high, coarse)
(low, fine) (low, medium) (low, coarse) — the text lists the counts in
descending order per concurrency level, and the dictionary threads
T6/T7 pin the interpretation: ~50 001 switches means a one-byte buffer
over a ~50 000-byte dictionary, 49 means a 1024-byte buffer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: (concurrency, granularity) -> per-thread context-switch counts
PAPER_TABLE1_SWITCHES: Dict[Tuple[str, str], Dict[str, int]] = {
    ("high", "fine"): {
        "T1.delatex": 60566, "T2.spell1": 102447, "T3.spell2": 80578,
        "T4.input": 40501, "T5.output": 1005, "T6.dict1": 50001,
        "T7.dict2": 50001,
    },
    ("high", "medium"): {
        "T1.delatex": 12680, "T2.spell1": 23497, "T3.spell2": 21327,
        "T4.input": 11548, "T5.output": 314, "T6.dict1": 12501,
        "T7.dict2": 12501,
    },
    ("high", "coarse"): {
        "T1.delatex": 2653, "T2.spell1": 5400, "T3.spell2": 5400,
        "T4.input": 2653, "T5.output": 146, "T6.dict1": 3126,
        "T7.dict2": 3126,
    },
    ("low", "fine"): {
        "T1.delatex": 29838, "T2.spell1": 49952, "T3.spell2": 29887,
        "T4.input": 4817, "T5.output": 197, "T6.dict1": 49,
        "T7.dict2": 49,
    },
    ("low", "medium"): {
        "T1.delatex": 8925, "T2.spell1": 9983, "T3.spell2": 8791,
        "T4.input": 4612, "T5.output": 196, "T6.dict1": 49,
        "T7.dict2": 49,
    },
    ("low", "coarse"): {
        "T1.delatex": 2001, "T2.spell1": 2049, "T3.spell2": 2049,
        "T4.input": 1974, "T5.output": 135, "T6.dict1": 49,
        "T7.dict2": 49,
    },
}

PAPER_TABLE1_TOTALS: Dict[Tuple[str, str], int] = {
    ("high", "fine"): 385099,
    ("high", "medium"): 94368,
    ("high", "coarse"): 22504,
    ("low", "fine"): 114789,
    ("low", "medium"): 32605,
    ("low", "coarse"): 8306,
}

#: dynamic save-instruction counts (independent of buffers/scheduling)
PAPER_TABLE1_SAVES: Dict[str, int] = {
    "T1.delatex": 113015,
    "T2.spell1": 110740,
    "T3.spell2": 75526,
    "T4.input": 10127,
    "T5.output": 262,
    "T6.dict1": 12502,
    "T7.dict2": 12502,
}

PAPER_TABLE1_SAVES_TOTAL = 334674

#: the window counts the paper swept (Figures 11–15)
PAPER_WINDOW_SWEEP: List[int] = [4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32]
