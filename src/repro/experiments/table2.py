"""Table 2 — cycles for a context switch (§6.2).

Two parts:

1. the *model-derived* table: the calibrated cost model's cycle count
   for every (scheme, saves, restores) row, checked against the
   paper's measured S-20 ranges;
2. an *empirical* cross-check: run the spell checker under each scheme
   and verify that every observed context switch was charged exactly
   the model cost for its transfer counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.costs import CostModel, PAPER_TABLE2, Table2Row
from repro.metrics.reporting import format_table


@dataclass
class Table2Result:
    rows: List[Tuple[Table2Row, int, bool]]
    observed_histograms: Dict[str, Dict[Tuple[int, int], int]]

    @property
    def all_in_range(self) -> bool:
        return all(ok for __, __, ok in self.rows)


def run_table2(scale: Optional[float] = None,
               cost_model: Optional[CostModel] = None,
               engine=None) -> Table2Result:
    """Model-derived rows plus the empirical histograms; the three
    per-scheme spell-checker runs go through the sweep engine (a
    serial, uncached one when the caller passes none)."""
    from repro.experiments.engine import (
        Engine,
        PointSpec,
        transfer_histogram_from_report,
    )

    model = cost_model if cost_model is not None else CostModel()
    rows = model.table2_check()
    if engine is None:
        engine = Engine(jobs=1, cache_dir=None)
    specs = [PointSpec(scheme=scheme, n_windows=7, concurrency="high",
                       granularity="medium", scale=scale or 0.05)
             for scheme in ("NS", "SNP", "SP")]
    reports = engine.run_reports(specs)
    observed: Dict[str, Dict[Tuple[int, int], int]] = {
        spec.scheme: transfer_histogram_from_report(report)
        for spec, report in zip(specs, reports)
        if report is not None}  # quarantined by a keep_going engine
    return Table2Result(rows, observed)


def render_table2(result: Table2Result) -> str:
    headers = ["scheme", "saves", "restores",
               "paper (cycles)", "model", "in range"]
    rows = []
    for row, value, ok in result.rows:
        rows.append([row.scheme, row.saves, row.restores,
                     "%d - %d" % (row.lo, row.hi), value,
                     "yes" if ok else "NO"])
    table = format_table(headers, rows,
                         title="Table 2: cycles per context switch")
    extra = ["", "Observed (saves, restores) histograms on a 7-window "
                 "machine (spell checker, high/medium):"]
    for scheme, hist in result.observed_histograms.items():
        items = ", ".join("%s: %d" % (k, v)
                          for k, v in sorted(hist.items()))
        extra.append("  %-4s %s" % (scheme, items))
    return table + "\n" + "\n".join(extra)


def paper_rows_for(scheme: str) -> List[Table2Row]:
    return [row for row in PAPER_TABLE2 if row.scheme == scheme]
