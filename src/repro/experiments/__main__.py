"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets: table1 table2 fig11 fig12 fig13 fig14 fig15 all report

Every sweep target goes through the parallel cached experiment engine
(``repro.experiments.engine``): points fan out over ``--jobs`` worker
processes and completed points are memoised on disk, so re-running a
target is pure cache hits and an interrupted sweep resumes from the
points it already finished.

``report`` emits one versioned RunReport JSON document (see
``repro.metrics.report``) for a fully-instrumented spell-checker run.

Environment knobs:
  REPRO_SCALE      corpus scale factor (default 0.25; 1.0 = paper size)
  REPRO_WINDOWS    comma-separated window counts (default 4..32 subset)
  REPRO_JOBS       default worker count (else os.cpu_count())
  REPRO_CACHE_DIR  result-cache root (else ~/.cache/repro-experiments)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.engine import Engine
from repro.experiments.figures import (
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
)
from repro.experiments.harness import GRANULARITIES
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2

FIGURES = {
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
}


def _emit_figure(name: str, windows, scale, engine) -> None:
    t0 = time.time()
    result = FIGURES[name](windows=windows, scale=scale, engine=engine)
    for granularity in GRANULARITIES:
        print(result.chart(granularity))
        print()
    print("(%s computed in %.1fs)" % (name, time.time() - t0))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("target", choices=sorted(
        list(FIGURES) + ["table1", "table2", "all", "report"]))
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (1.0 = the paper's 40.5 kB)")
    parser.add_argument("--windows", type=str, default=None,
                        help="comma-separated window counts")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for sweep points "
                             "(default: REPRO_JOBS or os.cpu_count())")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result-cache root (default: REPRO_CACHE_DIR "
                             "or ~/.cache/repro-experiments)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run every point even if cached")
    parser.add_argument("--scheme", default="SP",
                        choices=["NS", "SNP", "SP"],
                        help="scheme for the report target")
    parser.add_argument("--out", type=str, default=None,
                        help="report target: write JSON here "
                             "(default: stdout)")
    parser.add_argument("--faults", metavar="PLAN", default="",
                        help="fault-injection plan applied to every "
                             "point, e.g. 'store_fail@2' (see "
                             "repro.faults)")
    parser.add_argument("--seed", type=int, default=1993,
                        help="seed for the fault plan's RNG")
    parser.add_argument("--audit", action="store_true",
                        help="continuous invariant audit on every point")
    parser.add_argument("--watchdog", type=int, metavar="STEPS",
                        default=0,
                        help="per-point livelock watchdog threshold")
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        default=None,
                        help="per-point wall-clock budget (times out as "
                             "a retryable failure)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per transient point failure")
    parser.add_argument("--backoff", type=float, default=0.0,
                        help="base seconds slept before retry k")
    parser.add_argument("--keep-going", action="store_true",
                        help="quarantine failing points into the "
                             "failure manifest instead of aborting "
                             "the sweep")
    parser.add_argument("--metrics", action="store_true",
                        help="collect engine telemetry (implied by "
                             "--metrics-out)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the live repro.metrics-snapshot "
                             "JSON here (default with --metrics: "
                             "engine-metrics.json); tail it with "
                             "python -m repro.metrics.top")
    args = parser.parse_args(argv)

    windows = ([int(x) for x in args.windows.split(",")]
               if args.windows else None)

    if args.target == "report":
        from repro.experiments.harness import run_report_point
        from repro.metrics.report import to_json, write_report

        report = run_report_point(
            args.scheme, windows[0] if windows else 8, "high", "coarse",
            scale=args.scale, faults=args.faults, fault_seed=args.seed,
            audit=args.audit, watchdog=args.watchdog)
        if args.out:
            write_report(report, args.out)
            print("wrote RunReport: %s" % args.out)
        else:
            print(to_json(report))
        return 0

    spec_defaults = {}
    if args.faults:
        spec_defaults["faults"] = args.faults
        spec_defaults["fault_seed"] = args.seed
    if args.audit:
        spec_defaults["audit"] = True
    if args.watchdog:
        spec_defaults["watchdog"] = args.watchdog
    metrics_out = args.metrics_out
    if args.metrics and metrics_out is None:
        metrics_out = "engine-metrics.json"
    engine = Engine.from_env(jobs=args.jobs, cache=not args.no_cache,
                             cache_dir=args.cache_dir,
                             retries=args.retries,
                             timeout=args.timeout,
                             backoff=args.backoff,
                             keep_going=args.keep_going,
                             spec_defaults=spec_defaults,
                             metrics_out=metrics_out)

    targets = ([args.target] if args.target != "all"
               else ["table1", "table2"] + sorted(FIGURES))
    for target in targets:
        print("=" * 72)
        if target == "table1":
            print(render_table1(run_table1(scale=args.scale,
                                           engine=engine)))
        elif target == "table2":
            print(render_table2(run_table2(engine=engine)))
        else:
            _emit_figure(target, windows, args.scale, engine)
        print(engine.last_stats.summary(engine.jobs))
        if engine.last_stats.failures and args.keep_going \
                and engine.failure_manifest_path() is not None:
            print("failure manifest: %s" % engine.failure_manifest_path())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
