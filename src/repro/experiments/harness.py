"""Shared experiment machinery: run one (scheme, windows, workload)
point, sweep window counts, and collect the measures the figures plot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.spellcheck import SpellConfig, run_spellchecker
from repro.core.working_set import FIFOPolicy, WorkingSetPolicy
from repro.metrics.behavior import BehaviorTracker
from repro.metrics.events import TraceRecorder
from repro.metrics.report import build_run_report
from repro.metrics.tracing import OccupancyTimeline

#: default sweep (a subset of the paper's 4..32 that keeps runtimes sane;
#: override per call or with the REPRO_WINDOWS environment variable)
DEFAULT_WINDOWS: Sequence[int] = (4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32)

#: default corpus scale for experiments (1.0 = the paper's 40 500 bytes);
#: override with REPRO_SCALE
DEFAULT_SCALE = 0.25

SCHEMES = ("NS", "SNP", "SP")
GRANULARITIES = ("coarse", "medium", "fine")


def env_scale(default: float = DEFAULT_SCALE) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


def env_windows(default: Sequence[int] = DEFAULT_WINDOWS) -> List[int]:
    raw = os.environ.get("REPRO_WINDOWS")
    if not raw:
        return list(default)
    return [int(x) for x in raw.split(",") if x.strip()]


@dataclass
class ExperimentPoint:
    """Summary of one simulation run."""

    scheme: str
    n_windows: int
    concurrency: str
    granularity: str
    policy: str
    total_cycles: int
    switch_cycles: int
    trap_cycles: int
    compute_cycles: int
    context_switches: int
    avg_switch_cycles: float
    saves: int
    restores: int
    overflow_traps: int
    underflow_traps: int
    trap_probability: float
    per_thread_switches: Dict[str, int] = field(default_factory=dict)
    per_thread_saves: Dict[str, int] = field(default_factory=dict)
    output_bytes: int = 0


def run_point(scheme: str, n_windows: int, concurrency: str,
              granularity: str, scale: Optional[float] = None,
              working_set: bool = False, seed: int = 1993,
              allocation=None, analyze: bool = False) -> ExperimentPoint:
    """Run the spell checker once and summarise the counters.

    ``analyze`` arms the pre-run static topology gate (see
    :func:`repro.apps.spellcheck.pipeline.run_spellchecker`)."""
    if scale is None:
        scale = env_scale()
    config = SpellConfig.named(concurrency, granularity,
                               scale=scale, seed=seed)
    policy = WorkingSetPolicy() if working_set else FIFOPolicy()
    result, output = run_spellchecker(
        n_windows, scheme, config, queue_policy=policy,
        allocation=allocation, analyze=analyze)
    c = result.counters
    names = {t.tid: t.name for t in result.threads}
    return ExperimentPoint(
        scheme=scheme,
        n_windows=n_windows,
        concurrency=concurrency,
        granularity=granularity,
        policy=policy.name,
        total_cycles=c.total_cycles,
        switch_cycles=c.switch_cycles,
        trap_cycles=c.trap_cycles,
        compute_cycles=c.compute_cycles,
        context_switches=c.context_switches,
        avg_switch_cycles=c.avg_switch_cycles,
        saves=c.saves,
        restores=c.restores,
        overflow_traps=c.overflow_traps,
        underflow_traps=c.underflow_traps,
        trap_probability=c.trap_probability,
        per_thread_switches={
            names[tid]: n for tid, n in c.per_thread_switches.items()},
        per_thread_saves={
            names[tid]: n for tid, n in c.per_thread_saves.items()},
        output_bytes=len(output),
    )


def run_report_point(scheme: str, n_windows: int, concurrency: str,
                     granularity: str, scale: Optional[float] = None,
                     working_set: bool = False, seed: int = 1993,
                     allocation=None, faults: str = "",
                     fault_seed: int = 1993, audit: bool = False,
                     watchdog: int = 0) -> Dict:
    """Run one spell-checker point with the full observability stack
    attached and return its versioned RunReport dict (the document
    ``benchmarks/`` emits for cross-PR perf trajectories).

    ``faults`` (a :meth:`FaultPlan.parse` spec), ``audit`` and
    ``watchdog`` turn on the robustness machinery; register
    verification is forced on under injection so corruptions are
    detected rather than silently wrong.  The extra config keys are
    only added when a knob is non-default, keeping vanilla reports
    byte-identical to previous versions.
    """
    if scale is None:
        scale = env_scale()
    config = SpellConfig.named(concurrency, granularity,
                               scale=scale, seed=seed)
    policy = WorkingSetPolicy() if working_set else FIFOPolicy()
    observers = {}

    def instrument(kernel):
        observers["recorder"] = kernel.enable_tracing()
        observers["tracker"] = BehaviorTracker()
        kernel.tracker = observers["tracker"]
        observers["timeline"] = OccupancyTimeline()
        kernel.timeline = observers["timeline"]

    injector = None
    if faults:
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.parse(faults, seed=fault_seed))
    result, output = run_spellchecker(
        n_windows, scheme, config, queue_policy=policy,
        allocation=allocation, instrument=instrument,
        verify_registers=bool(faults), faults=injector,
        audit=audit, watchdog=watchdog or None)
    report_config = {"scheme": scheme, "n_windows": n_windows,
                     "concurrency": concurrency,
                     "granularity": granularity,
                     "policy": policy.name, "scale": scale, "seed": seed,
                     "workload": "spellcheck",
                     "output_bytes": len(output)}
    if faults:
        report_config["faults"] = faults
        report_config["fault_seed"] = fault_seed
    if audit:
        report_config["audit"] = True
    if watchdog:
        report_config["watchdog"] = watchdog
    return build_run_report(
        result,
        config=report_config,
        tracker=observers["tracker"],
        timeline=observers["timeline"],
        recorder=observers["recorder"])


def sweep_windows(concurrency: str, granularity: str,
                  windows: Optional[Sequence[int]] = None,
                  schemes: Sequence[str] = SCHEMES,
                  scale: Optional[float] = None,
                  working_set: bool = False,
                  seed: int = 1993,
                  engine=None) -> Dict[str, List[ExperimentPoint]]:
    """Run every scheme over a window-count sweep.

    With an :class:`~repro.experiments.engine.Engine` the grid fans out
    over its worker pool and result cache; without one each point runs
    serially in-process (the reference path the differential tests
    compare the engine against).
    """
    if windows is None:
        windows = env_windows()
    if scale is None:
        scale = env_scale()
    if engine is not None:
        from repro.experiments.engine import sweep_specs

        specs = sweep_specs(concurrency, granularity, windows, schemes,
                            scale, working_set=working_set, seed=seed)
        points = engine.run_points(specs)
        out: Dict[str, List[ExperimentPoint]] = {s: [] for s in schemes}
        for spec, point in zip(specs, points):
            if point is None:
                continue  # quarantined by a keep_going engine
            out[spec.scheme].append(point)
        return out
    out = {}
    for scheme in schemes:
        pts = []
        for n in windows:
            if scheme == "SP" and n < 4:
                continue
            pts.append(run_point(scheme, n, concurrency, granularity,
                                 scale=scale, working_set=working_set,
                                 seed=seed))
        out[scheme] = pts
    return out
