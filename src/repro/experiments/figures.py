"""Figures 11–15: the window-count sweeps of §6.3–§6.5.

Each ``run_figN`` returns a :class:`FigureResult` whose ``series`` maps
a curve label to ``[(n_windows, y)]`` points, exactly the series the
paper plots:

* Fig 11 — execution time (cycles), high concurrency, 3 granularities
  × 3 schemes;
* Fig 12 — average context-switch time, high concurrency;
* Fig 13 — window-trap probability, high concurrency;
* Fig 14 — execution time, low concurrency;
* Fig 15 — execution time, high concurrency, working-set scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (
    GRANULARITIES,
    SCHEMES,
    sweep_windows,
)
from repro.metrics.reporting import ascii_chart

Series = Dict[str, List[Tuple[int, float]]]


@dataclass
class FigureResult:
    """One reproduced figure: labelled (n_windows, value) series."""

    figure: str
    ylabel: str
    series: Series
    notes: List[str] = field(default_factory=list)

    def chart(self, granularity: Optional[str] = None,
              width: int = 64, height: int = 16) -> str:
        series = self.series
        if granularity is not None:
            series = {k: v for k, v in series.items()
                      if k.endswith("/" + granularity)}
        return ascii_chart(series, width=width, height=height,
                           title="%s — %s" % (self.figure, self.ylabel),
                           xlabel="number of windows")

    def value(self, scheme: str, granularity: str,
              n_windows: int) -> float:
        for x, y in self.series["%s/%s" % (scheme, granularity)]:
            if x == n_windows:
                return y
        raise KeyError((scheme, granularity, n_windows))


def _sweep_figure(figure: str, ylabel: str, concurrency: str,
                  metric, windows: Optional[Sequence[int]],
                  scale: Optional[float], working_set: bool,
                  granularities: Sequence[str] = GRANULARITIES,
                  schemes: Sequence[str] = SCHEMES,
                  engine=None) -> FigureResult:
    """Fan the whole (granularity x scheme x windows) grid of one
    figure through the sweep engine as a single batch, so every point
    runs concurrently (and cached points are skipped), then regroup
    into the labelled series the paper plots."""
    from repro.experiments.engine import Engine, sweep_specs
    from repro.experiments.harness import env_scale, env_windows

    if windows is None:
        windows = env_windows()
    if scale is None:
        scale = env_scale()
    if engine is None:
        engine = Engine(jobs=1, cache_dir=None)
    specs = []
    for granularity in granularities:
        specs.extend(sweep_specs(concurrency, granularity, windows,
                                 schemes, scale,
                                 working_set=working_set))
    points = engine.run_points(specs)
    series: Series = {"%s/%s" % (s, g): []
                      for g in granularities for s in schemes}
    notes = []
    for spec, point in zip(specs, points):
        if point is None:  # quarantined by a keep_going engine
            notes.append("missing point: %s" % spec.label)
            continue
        series["%s/%s" % (spec.scheme, spec.granularity)].append(
            (point.n_windows, metric(point)))
    return FigureResult(figure, ylabel, series, notes=notes)


def run_fig11(windows: Optional[Sequence[int]] = None,
              scale: Optional[float] = None, engine=None) -> FigureResult:
    """Execution time at high concurrency (paper Figure 11)."""
    return _sweep_figure(
        "Figure 11 (high concurrency)", "execution time (cycles)",
        "high", lambda p: p.total_cycles, windows, scale, False,
        engine=engine)


def run_fig12(windows: Optional[Sequence[int]] = None,
              scale: Optional[float] = None, engine=None) -> FigureResult:
    """Average context-switch time at high concurrency (Figure 12)."""
    return _sweep_figure(
        "Figure 12 (high concurrency)", "avg switch time (cycles)",
        "high", lambda p: p.avg_switch_cycles, windows, scale, False,
        engine=engine)


def run_fig13(windows: Optional[Sequence[int]] = None,
              scale: Optional[float] = None, engine=None) -> FigureResult:
    """Probability of window traps at high concurrency (Figure 13)."""
    return _sweep_figure(
        "Figure 13 (high concurrency)", "trap probability",
        "high", lambda p: p.trap_probability, windows, scale, False,
        engine=engine)


def run_fig14(windows: Optional[Sequence[int]] = None,
              scale: Optional[float] = None, engine=None) -> FigureResult:
    """Execution time at low concurrency (Figure 14)."""
    return _sweep_figure(
        "Figure 14 (low concurrency)", "execution time (cycles)",
        "low", lambda p: p.total_cycles, windows, scale, False,
        engine=engine)


def run_fig15(windows: Optional[Sequence[int]] = None,
              scale: Optional[float] = None, engine=None) -> FigureResult:
    """Execution time at high concurrency with the working-set
    scheduling policy (Figure 15)."""
    return _sweep_figure(
        "Figure 15 (high concurrency, working set)",
        "execution time (cycles)",
        "high", lambda p: p.total_cycles, windows, scale, True,
        engine=engine)
