"""Parallel sweep engine with an on-disk content-addressed result cache.

Every figure and table of the paper's evaluation is a sweep over
(scheme x windows x granularity x concurrency).  The engine fans those
points out over a ``multiprocessing`` worker pool and memoises each
point's full RunReport (the ``repro.run-report`` v1 document) in a
content-addressed store, so:

* a sweep uses every core (``jobs=N``, default ``os.cpu_count()``);
* an interrupted sweep resumes from the completed points — each
  finished point is written (atomically) the moment it arrives, and a
  later run executes only the missing keys;
* a repeated sweep is pure cache hits and executes zero points;
* cached sweeps double as regression artifacts: the payload is the
  versioned RunReport JSON, diffable across PRs.

Cache key = SHA-256 over the point parameters (scheme, windows,
granularity, concurrency, scale, seed, policy) *plus* the calibrated
cost-model constants, ``repro.__version__``, the RunReport schema
version and a digest of the whole ``repro`` source tree — so editing
any code that could move a result invalidates every stale entry by
construction, with no mtime games.

Determinism contract: the same :class:`PointSpec` produces a
bit-identical RunReport regardless of worker count, execution order or
cache state (the differential test layer enforces this).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import traceback
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.core.costs import CostModel
from repro.errors import ReproError, TransientError
from repro.experiments.harness import ExperimentPoint, run_report_point
from repro.ioutil import atomic_write_text  # noqa: F401  (re-export)
from repro.metrics.report import SCHEMA_VERSION, from_json, to_json

CACHE_SCHEMA = "repro.sweep-cache"
CACHE_VERSION = 1

MANIFEST_SCHEMA = "repro.failure-manifest"
MANIFEST_VERSION = 1

#: environment knobs understood by :func:`default_jobs` / :func:`default_cache_dir`
ENV_JOBS = "REPRO_JOBS"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_jobs() -> int:
    """Worker-pool width: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    raw = os.environ.get(ENV_JOBS)
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-experiments``."""
    raw = os.environ.get(ENV_CACHE_DIR)
    if raw:
        return Path(raw)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-experiments"


# ---------------------------------------------------------------------------
# point specifications


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: everything that determines a run's results.

    The robustness fields (``faults``, ``fault_seed``, ``audit``,
    ``watchdog``) default to "off" and are deliberately kept out of
    :attr:`label`, which stays the stable human key the goldens and
    figures use.
    """

    scheme: str
    n_windows: int
    concurrency: str
    granularity: str
    scale: float
    seed: int = 1993
    working_set: bool = False
    faults: str = ""
    fault_seed: int = 1993
    audit: bool = False
    watchdog: int = 0

    @property
    def label(self) -> str:
        policy = "ws" if self.working_set else "fifo"
        return "%s/w%d/%s/%s/%s" % (self.scheme, self.n_windows,
                                    self.concurrency, self.granularity,
                                    policy)

    def to_payload(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "PointSpec":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def cost_model_fingerprint(model: Optional[CostModel] = None) -> Dict[str, int]:
    """The calibrated constants that feed every cycle count."""
    return asdict(model if model is not None else CostModel())


_SOURCE_DIGEST: Optional[str] = None


def source_digest() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    The version string alone can't be trusted for invalidation in a
    development checkout — any edit to the simulator changes results
    without touching ``__version__`` — so the digest makes *every*
    code change re-key the cache.  Computed once per process.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def cache_fingerprint() -> Dict[str, object]:
    """Everything *besides* the point parameters that can change results."""
    return {
        "schema": CACHE_SCHEMA,
        "cache_version": CACHE_VERSION,
        "repro_version": __version__,
        "report_version": SCHEMA_VERSION,
        "source_digest": source_digest(),
        "cost_model": cost_model_fingerprint(),
    }


def cache_key(spec: PointSpec,
              fingerprint: Optional[Dict[str, object]] = None) -> str:
    """Content address of one point's RunReport."""
    doc = {"fingerprint": fingerprint or cache_fingerprint(),
           "point": spec.to_payload()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sweep_specs(concurrency: str, granularity: str,
                windows: Sequence[int],
                schemes: Sequence[str],
                scale: float,
                working_set: bool = False,
                seed: int = 1993) -> List[PointSpec]:
    """The (scheme x windows) grid for one figure series, skipping the
    SP points below its 4-window minimum (same rule as the serial
    :func:`~repro.experiments.harness.sweep_windows`)."""
    specs = []
    for scheme in schemes:
        for n in windows:
            if scheme == "SP" and n < 4:
                continue
            specs.append(PointSpec(scheme=scheme, n_windows=n,
                                   concurrency=concurrency,
                                   granularity=granularity, scale=scale,
                                   seed=seed, working_set=working_set))
    return specs


# ---------------------------------------------------------------------------
# the on-disk store


class ResultCache:
    """Content-addressed RunReport store: ``objects/<k[:2]>/<k>.json``
    plus a ``manifest.json`` describing the entries for humans.

    The *objects* are the source of truth — checkpoint/resume works off
    their presence alone, so a sweep killed between manifest updates
    loses nothing.  All writes are temp-file-plus-rename atomic.
    """

    def __init__(self, root) -> None:
        self.root = Path(root).expanduser()
        self.objects = self.root / "objects"

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / (key + ".json")

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            return from_json(path.read_text())
        except (ValueError, OSError):
            return None  # corrupt entry: treat as a miss, re-execute

    def put(self, key: str, report: Dict[str, object]) -> None:
        atomic_write_text(self._path(key), to_json(report))

    def keys(self) -> List[str]:
        if not self.objects.is_dir():
            return []
        return sorted(p.stem for p in self.objects.glob("*/*.json"))

    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def read_manifest(self) -> Dict[str, object]:
        path = self.manifest_path()
        if not path.is_file():
            return {"schema": CACHE_SCHEMA, "version": CACHE_VERSION,
                    "entries": {}}
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, OSError):
            return {"schema": CACHE_SCHEMA, "version": CACHE_VERSION,
                    "entries": {}}
        if (manifest.get("schema") != CACHE_SCHEMA
                or manifest.get("version") != CACHE_VERSION):
            # layout change: the objects use a different addressing
            # scheme, so forget them (keys no longer resolve anyway)
            return {"schema": CACHE_SCHEMA, "version": CACHE_VERSION,
                    "entries": {}}
        manifest.setdefault("entries", {})
        return manifest

    def update_manifest(self, new_entries: Dict[str, Dict[str, object]],
                        fingerprint: Dict[str, object]) -> None:
        manifest = self.read_manifest()
        manifest["fingerprint"] = fingerprint
        manifest["entries"].update(new_entries)
        atomic_write_text(self.manifest_path(),
                          json.dumps(manifest, indent=2, sort_keys=True))


# ---------------------------------------------------------------------------
# execution


class PointTimeoutError(TransientError):
    """A sweep point exceeded its per-point wall-clock budget."""


def _alarm_handler(signum, frame):
    raise PointTimeoutError("point exceeded its time budget")


def _failure_payload(exc: BaseException) -> Dict[str, object]:
    """The structured error document a worker sends over the pipe.

    ``transient`` drives the retry policy: a :class:`ReproError` that
    is not a :class:`TransientError` is a *deterministic* simulator
    failure — retrying cannot cure it, so it goes straight to
    quarantine.  Unclassified exceptions (OS hiccups, pickling, ...)
    stay retryable, matching the engine's historical behaviour.
    """
    return {
        "type": type(exc).__name__,
        "transient": (not isinstance(exc, ReproError)
                      or isinstance(exc, TransientError)),
        "traceback": traceback.format_exc(),
    }


def _normalize_error(err) -> Optional[Dict[str, object]]:
    """Accept both the structured dict and the legacy traceback string
    (custom runners in tests still use the latter: retryable)."""
    if err is None:
        return None
    if isinstance(err, str):
        return {"type": "", "transient": True, "traceback": err}
    return err


def _unpack(result):
    """Validate a runner result as ``(index, report, err, wall_ms)``.

    Every runner — built-in or custom — reports its wall time as the
    fourth element.  Any other shape is rejected outright rather than
    sliced into shape, so a runner protocol change (e.g. a report
    growing a separate metrics member, or a runner still speaking the
    long-removed 3-tuple dialect) can never be silently dropped.
    """
    if len(result) == 4:
        return result
    raise TypeError(
        "runner returned a %d-tuple; expected (index, report, err, "
        "wall_ms)" % len(result))


def _execute_payload(task: Tuple[int, Dict[str, object]]):
    """Worker-side entry point: run one point, return its report.

    Module-level so it pickles under every multiprocessing start
    method.  Returns ``(index, report, None, wall_ms)`` or ``(index,
    None, error_dict, wall_ms)`` — exceptions never cross the pipe
    raw.  A ``"_timeout"`` key in the payload (seconds) arms a SIGALRM
    budget around the point where the platform supports it.
    """
    index, payload = task
    timeout = payload.get("_timeout")
    armed = False
    start = time.perf_counter()
    try:
        if timeout and hasattr(signal, "SIGALRM"):
            signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
        spec = PointSpec.from_payload(payload)
        report = run_report_point(
            spec.scheme, spec.n_windows, spec.concurrency,
            spec.granularity, scale=spec.scale,
            working_set=spec.working_set, seed=spec.seed,
            faults=spec.faults, fault_seed=spec.fault_seed,
            audit=spec.audit, watchdog=spec.watchdog)
        wall_ms = (time.perf_counter() - start) * 1000.0
        return index, report, None, wall_ms
    except Exception as exc:
        wall_ms = (time.perf_counter() - start) * 1000.0
        return index, None, _failure_payload(exc), wall_ms
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)


@dataclass
class PointFailure:
    """One point that kept failing after every retry (or was fatal)."""

    spec: PointSpec
    attempts: int
    traceback: str
    error_type: str = ""
    transient: bool = True

    def to_payload(self) -> Dict[str, object]:
        return {
            "label": self.spec.label,
            "spec": self.spec.to_payload(),
            "error_type": self.error_type,
            "transient": self.transient,
            "attempts": self.attempts,
            "traceback": self.traceback,
        }


@dataclass
class EngineStats:
    """What one :meth:`Engine.run_reports` call did.

    The telemetry fields (wall times, hit latencies, utilization) are
    *wall-clock* measurements and therefore excluded from every
    byte-determinism contract; they feed the engine's metrics snapshot
    and the extended stats line only.
    """

    total: int = 0
    hits: int = 0
    executed: int = 0
    retried: int = 0
    failures: List[PointFailure] = field(default_factory=list)
    quarantined: bool = False
    #: per executed point: worker-side wall time (ms)
    point_wall_ms: List[float] = field(default_factory=list)
    #: per cache hit: time to read + parse the cached report (ms)
    hit_latency_ms: List[float] = field(default_factory=list)
    #: fraction of the pool's wall-time capacity spent inside points
    utilization: float = 0.0
    #: where the metrics snapshot was written (None: not requested)
    metrics_path: Optional[str] = None

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def p50_ms(self) -> float:
        from repro.metrics.events import percentile

        return percentile(self.point_wall_ms, 50)

    @property
    def p99_ms(self) -> float:
        from repro.metrics.events import percentile

        return percentile(self.point_wall_ms, 99)

    def summary(self, jobs: int) -> str:
        line = ("engine: %d points — %d cached (%d%%), %d executed, "
                "%d failed [jobs=%d]"
                % (self.total, self.hits, round(100 * self.hit_ratio),
                   self.executed, len(self.failures), jobs))
        if self.point_wall_ms:
            line += (" — util %d%%, p50 %.0fms, p99 %.0fms"
                     % (round(100 * self.utilization),
                        self.p50_ms, self.p99_ms))
        if self.metrics_path:
            line += " — metrics=%s" % self.metrics_path
        if self.quarantined and self.failures:
            line += " — %d point(s) quarantined" % len(self.failures)
        return line


class EngineError(RuntimeError):
    """Raised when points still fail after per-point retries."""

    def __init__(self, failures: List[PointFailure]) -> None:
        self.failures = failures
        lines = ["%d sweep point(s) failed:" % len(failures)]
        for failure in failures:
            text = failure.traceback.strip()
            last = (text.splitlines()[-1] if text
                    else failure.error_type or "unknown error")
            lines.append("  %s (after %d attempt(s)): %s"
                         % (failure.spec.label, failure.attempts, last))
        super().__init__("\n".join(lines))


class Engine:
    """Fan sweep points over a worker pool, memoising RunReports.

    ``jobs``         pool width; 1 runs in-process (no pool, no fork).
    ``cache_dir``    result-store root; ``None`` disables caching.
    ``retries``      extra serial attempts per *transient* failure
                     before the point is declared failed.  Fatal
                     failures (a non-transient :class:`ReproError`)
                     are never retried.
    ``progress``     optional callback ``(phase, done, total, spec)``
                     with phase in {"hit", "done", "retry", "fail"}.
    ``timeout``      per-point wall-clock budget in seconds (worker-
                     side SIGALRM; times out as a transient failure).
    ``backoff``      base seconds slept before retry k (k * backoff).
    ``keep_going``   graceful degradation: failing points are
                     quarantined into the failure manifest and their
                     slots returned as ``None`` instead of raising
                     :class:`EngineError`.
    ``manifest_path``  where the failure manifest lands; defaults to
                     ``<cache_dir>/failures.json`` when caching.
    ``spec_defaults``  field overrides (``faults``, ``audit``, ...)
                     applied to every spec via ``dataclasses.replace``.
    ``metrics_out``  path for the engine's ``repro.metrics-snapshot``
                     document; rewritten (atomically) after every
                     completed point so a live dashboard
                     (``python -m repro.metrics.top``) can tail it.
    """

    def __init__(self, jobs: Optional[int] = None, cache_dir=None,
                 retries: int = 1,
                 progress: Optional[Callable] = None,
                 runner: Optional[Callable] = None,
                 timeout: Optional[float] = None,
                 backoff: float = 0.0,
                 keep_going: bool = False,
                 manifest_path=None,
                 spec_defaults: Optional[Dict[str, Any]] = None,
                 metrics_out=None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.retries = max(0, retries)
        self.progress = progress
        self._runner = runner or _execute_payload
        self.timeout = timeout
        self.backoff = max(0.0, backoff)
        self.keep_going = keep_going
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self.spec_defaults = dict(spec_defaults or {})
        self.metrics_out = Path(metrics_out) if metrics_out else None
        self.last_stats = EngineStats()

    @classmethod
    def from_env(cls, jobs: Optional[int] = None, cache: bool = True,
                 cache_dir=None, **kwargs) -> "Engine":
        """CLI-flavoured constructor: env-default jobs and cache dir."""
        if cache and cache_dir is None:
            cache_dir = default_cache_dir()
        return cls(jobs=jobs, cache_dir=cache_dir if cache else None,
                   **kwargs)

    # -- core ---------------------------------------------------------------

    def run_reports(self, specs: Sequence[PointSpec]) -> List[Optional[Dict]]:
        """Run every spec (cache, then pool) and return the RunReports
        in spec order.  Statistics land on :attr:`last_stats`.

        Without ``keep_going`` a persistent failure raises
        :class:`EngineError`; with it the failing slots hold ``None``,
        the failures are written to the failure manifest, and every
        healthy point still comes back complete.
        """
        specs = list(specs)
        if self.spec_defaults:
            specs = [replace(spec, **self.spec_defaults)
                     for spec in specs]
        stats = EngineStats(total=len(specs), quarantined=self.keep_going)
        self.last_stats = stats
        fingerprint = cache_fingerprint()
        keys = [cache_key(spec, fingerprint) for spec in specs]
        reports: List[Optional[Dict]] = [None] * len(specs)

        pending: List[int] = []
        for i, key in enumerate(keys):
            if self.cache:
                lookup_start = time.perf_counter()
                cached = self.cache.get(key)
                lookup_ms = (time.perf_counter() - lookup_start) * 1000.0
            else:
                cached = None
            if cached is not None:
                reports[i] = cached
                stats.hits += 1
                stats.hit_latency_ms.append(lookup_ms)
                self._notify("hit", stats, specs[i])
            else:
                pending.append(i)

        new_entries: Dict[str, Dict[str, object]] = {}
        queue_depth = [len(pending)]
        exec_start = time.perf_counter()

        def note_wall(wall_ms: float) -> None:
            stats.point_wall_ms.append(wall_ms)
            elapsed_ms = (time.perf_counter() - exec_start) * 1000.0
            if elapsed_ms > 0:
                stats.utilization = min(
                    1.0, sum(stats.point_wall_ms)
                    / (self.jobs * elapsed_ms))

        def commit(i: int, report: Dict) -> None:
            reports[i] = report
            stats.executed += 1
            queue_depth[0] -= 1
            if self.cache:
                # written the moment the point lands, so an interrupted
                # sweep resumes from here instead of from scratch
                self.cache.put(keys[i], report)
                new_entries[keys[i]] = specs[i].to_payload()
            self._notify("done", stats, specs[i])
            self._write_metrics(stats, queue_depth[0])

        def payload_of(i: int) -> Dict[str, object]:
            payload = specs[i].to_payload()
            if self.timeout:
                payload["_timeout"] = self.timeout
            return payload

        failed: List[Tuple[int, Dict[str, object]]] = []
        if pending:
            tasks = [(i, payload_of(i)) for i in pending]
            if self.jobs > 1 and len(tasks) > 1:
                import multiprocessing

                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else "spawn")
                with ctx.Pool(min(self.jobs, len(tasks))) as pool:
                    for result in pool.imap_unordered(self._runner, tasks):
                        i, report, err, wall_ms = _unpack(result)
                        note_wall(wall_ms)
                        if err is None:
                            commit(i, report)
                        else:
                            failed.append((i, _normalize_error(err)))
            else:
                for task in tasks:
                    i, report, err, wall_ms = _unpack(self._runner(task))
                    note_wall(wall_ms)
                    if err is None:
                        commit(i, report)
                    else:
                        failed.append((i, _normalize_error(err)))

        failures: List[PointFailure] = []
        for i, err in failed:
            attempts = 1
            report = None
            while (report is None and err.get("transient", True)
                   and attempts <= self.retries):
                stats.retried += 1
                self._notify("retry", stats, specs[i])
                if self.backoff:
                    time.sleep(self.backoff * attempts)
                attempts += 1
                __, report, raw, wall_ms = _unpack(
                    self._runner((i, payload_of(i))))
                note_wall(wall_ms)
                if raw is not None:
                    err = _normalize_error(raw)
            if report is not None:
                commit(i, report)
            else:
                queue_depth[0] -= 1
                failures.append(PointFailure(
                    specs[i], attempts, err.get("traceback", ""),
                    error_type=err.get("type", ""),
                    transient=err.get("transient", True)))
                self._notify("fail", stats, specs[i])

        if self.cache and new_entries:
            self.cache.update_manifest(new_entries, fingerprint)
        stats.failures = failures
        self._write_metrics(stats, queue_depth[0], final=True)
        if failures:
            self._write_failure_manifest(failures, fingerprint)
            if not self.keep_going:
                raise EngineError(failures)
        return reports

    def run_points(self,
                   specs: Sequence[PointSpec]
                   ) -> List[Optional[ExperimentPoint]]:
        """Like :meth:`run_reports` but summarised to the
        :class:`ExperimentPoint` the figures/tables plot.  Quarantined
        slots (``keep_going``) stay ``None``."""
        return [point_from_report(r) if r is not None else None
                for r in self.run_reports(specs)]

    # -- helpers ------------------------------------------------------------

    def _notify(self, phase: str, stats: EngineStats,
                spec: PointSpec) -> None:
        if self.progress is not None:
            self.progress(phase, stats.hits + stats.executed,
                          stats.total, spec)

    def _write_metrics(self, stats: EngineStats, queue_depth: int,
                       final: bool = False) -> None:
        """Rewrite the live metrics snapshot (no-op without
        ``metrics_out``).  Called after every committed point and once
        at the end, so a dashboard tailing the file always sees a
        complete, schema-valid document."""
        if self.metrics_out is None:
            return
        from repro.metrics.telemetry import write_snapshot

        snapshot = engine_metrics_snapshot(stats, self.jobs,
                                           queue_depth=queue_depth,
                                           final=final)
        stats.metrics_path = write_snapshot(snapshot, self.metrics_out)

    def failure_manifest_path(self) -> Optional[Path]:
        """Where quarantined failures are recorded (None: nowhere)."""
        if self.manifest_path is not None:
            return self.manifest_path
        if self.cache is not None:
            return self.cache.root / "failures.json"
        return None

    def _write_failure_manifest(self, failures: List[PointFailure],
                                fingerprint: Dict[str, object]) -> None:
        path = self.failure_manifest_path()
        if path is None:
            return
        doc = {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "fingerprint": fingerprint,
            "failures": [f.to_payload() for f in failures],
        }
        atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True))


def engine_metrics_snapshot(stats: EngineStats, jobs: int,
                            queue_depth: int = 0,
                            final: bool = False) -> Dict[str, object]:
    """The engine's ``repro.metrics-snapshot`` document.

    Rebuilt from :class:`EngineStats` on every write — the stats object
    is the single source of truth, so incremental and final snapshots
    can never disagree.  Wall-clock values are expected here (unlike
    the simulator snapshot, which is cycle-domain only).
    """
    from repro.metrics.telemetry import (
        FAST_MS_BUCKETS,
        MS_BUCKETS,
        MetricsRegistry,
    )

    registry = MetricsRegistry()
    registry.counter(
        "engine_points_total", help="points in this sweep").inc(stats.total)
    registry.counter(
        "engine_cache_hits", help="points served from cache").inc(stats.hits)
    registry.counter(
        "engine_points_executed", help="points executed").inc(stats.executed)
    registry.counter(
        "engine_retries", help="retry attempts").inc(stats.retried)
    registry.counter(
        "engine_failures",
        help="points failed after retries").inc(len(stats.failures))
    registry.counter(
        "engine_quarantined",
        help="failed points quarantined instead of raising").inc(
        len(stats.failures) if stats.quarantined else 0)
    registry.gauge(
        "engine_queue_depth",
        help="points still waiting to complete").set(queue_depth)
    registry.gauge(
        "engine_jobs", help="worker-pool width").set(jobs)
    registry.gauge(
        "engine_cache_hit_ratio",
        help="cached / total").set(round(stats.hit_ratio, 4))
    registry.gauge(
        "engine_worker_utilization",
        help="point wall time / pool wall-time capacity").set(
        round(stats.utilization, 4))
    wall = registry.histogram(
        "engine_point_wall_ms", MS_BUCKETS,
        help="worker-side wall time per executed point (ms)")
    for ms in stats.point_wall_ms:
        wall.observe(ms)
    hit = registry.histogram(
        "engine_cache_hit_ms", FAST_MS_BUCKETS,
        help="time to read and parse a cached report (ms)")
    for ms in stats.hit_latency_ms:
        hit.observe(ms)
    return registry.snapshot(meta={"kind": "engine", "jobs": jobs,
                                   "complete": final})


def point_from_report(report: Dict) -> ExperimentPoint:
    """Project a RunReport back onto the harness's ExperimentPoint.

    Field-for-field identical to what :func:`~repro.experiments.
    harness.run_point` computes from the live counters — the
    differential tests assert the equality for the whole grid.
    """
    config = report["config"]
    c = report["counters"]
    names = {str(t["tid"]): t["name"] for t in report["threads"]}
    executed = c["saves"] + c["restores"]
    traps = c["overflow_traps"] + c["underflow_traps"]
    switches = c["context_switches"]
    return ExperimentPoint(
        scheme=config["scheme"],
        n_windows=config["n_windows"],
        concurrency=config["concurrency"],
        granularity=config["granularity"],
        policy=config["policy"],
        total_cycles=c["total_cycles"],
        switch_cycles=c["switch_cycles"],
        trap_cycles=c["trap_cycles"],
        compute_cycles=c["compute_cycles"],
        context_switches=switches,
        avg_switch_cycles=(c["switch_cycles"] / switches
                           if switches else 0.0),
        saves=c["saves"],
        restores=c["restores"],
        overflow_traps=c["overflow_traps"],
        underflow_traps=c["underflow_traps"],
        trap_probability=traps / executed if executed else 0.0,
        per_thread_switches={
            names[tid]: n
            for tid, n in c["per_thread_switches"].items()},
        per_thread_saves={
            names[tid]: n for tid, n in c["per_thread_saves"].items()},
        output_bytes=config["output_bytes"],
    )


def transfer_histogram_from_report(report: Dict) -> Dict[Tuple[int, int], int]:
    """Parse ``counters.switch_transfer_hist`` back to tuple keys."""
    out: Dict[Tuple[int, int], int] = {}
    for key, count in report["counters"]["switch_transfer_hist"].items():
        saves, restores = key.split(",")
        out[(int(saves), int(restores))] = count
    return out
