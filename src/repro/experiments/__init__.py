"""Experiment harness: regenerates every table and figure of the
paper's evaluation (§6).

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments table2
    python -m repro.experiments fig11 [--scale 0.25] [--windows 4,8,16,32]
    python -m repro.experiments fig12 | fig13 | fig14 | fig15
    python -m repro.experiments all

or call the functions directly (each returns structured data and a
rendered text report).

Sweeps fan out over the parallel cached engine — see
``python -m repro.experiments fig11 --jobs 8`` and
:mod:`repro.experiments.engine`.
"""

from repro.experiments.engine import (
    Engine,
    EngineError,
    EngineStats,
    PointSpec,
    ResultCache,
    cache_key,
    point_from_report,
    sweep_specs,
)
from repro.experiments.harness import (
    ExperimentPoint,
    run_point,
    run_report_point,
    sweep_windows,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.figures import (
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
)

__all__ = [
    "Engine",
    "EngineError",
    "EngineStats",
    "ExperimentPoint",
    "PointSpec",
    "ResultCache",
    "cache_key",
    "point_from_report",
    "run_point",
    "run_report_point",
    "sweep_specs",
    "sweep_windows",
    "run_table1",
    "run_table2",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
]
